//! Set-associative cache simulator with LRU replacement.
//!
//! Used by the cache-targeted micro-viruses (which need real
//! index/way-conflict behaviour to pin their working sets into one level)
//! and by the performance-counter estimation that feeds the Vmin predictor.

use crate::topology::CacheLevel;
use serde::{Deserialize, Serialize};

/// Hit/miss statistics of one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]`; 0 when there were no accesses.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// A set-associative, write-allocate cache with true-LRU replacement.
///
/// # Examples
///
/// ```
/// use xgene_sim::cache::Cache;
/// use xgene_sim::topology::CacheLevel;
///
/// let mut l1 = Cache::for_level(CacheLevel::L1D);
/// assert!(!l1.access(0x1000)); // cold miss
/// assert!(l1.access(0x1000));  // now resident
/// assert_eq!(l1.stats().misses, 1);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cache {
    sets: usize,
    ways: usize,
    line_bytes: usize,
    /// `tags[set][way]`; `None` = invalid.
    tags: Vec<Vec<Option<u64>>>,
    /// Monotone per-access counter values for LRU (`lru[set][way]`).
    lru: Vec<Vec<u64>>,
    tick: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates a cache.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero, or `capacity` is not divisible by
    /// `ways * line_bytes`, or the set count is not a power of two.
    pub fn new(capacity: usize, ways: usize, line_bytes: usize) -> Self {
        assert!(
            capacity > 0 && ways > 0 && line_bytes > 0,
            "parameters must be non-zero"
        );
        assert!(
            capacity.is_multiple_of(ways * line_bytes),
            "capacity must be a whole number of sets"
        );
        let sets = capacity / (ways * line_bytes);
        assert!(
            sets.is_power_of_two(),
            "set count must be a power of two, got {sets}"
        );
        Cache {
            sets,
            ways,
            line_bytes,
            tags: vec![vec![None; ways]; sets],
            lru: vec![vec![0; ways]; sets],
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// A cache with the X-Gene2 geometry of `level`.
    pub fn for_level(level: CacheLevel) -> Self {
        Cache::new(level.capacity(), level.ways(), level.line_bytes())
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> usize {
        self.line_bytes
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets statistics (not contents).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Accesses a byte address; returns `true` on hit. Misses allocate.
    pub fn access(&mut self, addr: u64) -> bool {
        self.tick += 1;
        let line = addr / self.line_bytes as u64;
        let set = (line % self.sets as u64) as usize;
        let tag = line / self.sets as u64;

        if let Some(way) = self.tags[set].iter().position(|t| *t == Some(tag)) {
            self.lru[set][way] = self.tick;
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        // Prefer an invalid way, else evict the least recently used.
        let victim = match self.tags[set].iter().position(Option::is_none) {
            Some(w) => w,
            None => {
                let (w, _) = self.lru[set]
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &t)| t)
                    .expect("ways are non-empty");
                w
            }
        };
        self.tags[set][victim] = Some(tag);
        self.lru[set][victim] = self.tick;
        false
    }

    /// Number of currently valid lines.
    pub fn resident_lines(&self) -> usize {
        self.tags.iter().flatten().filter(|t| t.is_some()).count()
    }

    /// Invalidates everything.
    pub fn flush(&mut self) {
        for set in &mut self.tags {
            for way in set {
                *way = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn xgene2_geometries() {
        let l1 = Cache::for_level(CacheLevel::L1D);
        assert_eq!(l1.sets(), 64); // 32 KiB / (8 ways · 64 B)
        let l2 = Cache::for_level(CacheLevel::L2);
        assert_eq!(l2.sets(), 128);
        let l3 = Cache::for_level(CacheLevel::L3);
        assert_eq!(l3.sets(), 4096);
    }

    #[test]
    fn working_set_within_capacity_hits_after_warmup() {
        let mut c = Cache::for_level(CacheLevel::L1D);
        let lines = 64 * 8; // exactly capacity
        for pass in 0..3 {
            for i in 0..lines {
                let hit = c.access(i as u64 * 64);
                if pass > 0 {
                    assert!(hit, "pass {pass}, line {i}");
                }
            }
        }
    }

    #[test]
    fn working_set_beyond_capacity_thrashes() {
        let mut c = Cache::new(1024, 2, 64); // 16 lines
                                             // 3 lines mapping to the same set with 2 ways, accessed round-robin
                                             // under LRU: every access misses.
        let set_stride = 8 * 64; // sets = 8
        c.reset_stats();
        for _ in 0..10 {
            for k in 0..3 {
                c.access(k * set_stride);
            }
        }
        assert_eq!(
            c.stats().hits,
            0,
            "LRU round-robin over ways+1 lines never hits"
        );
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = Cache::new(2 * 64, 2, 64); // 1 set, 2 ways
        c.access(0); // A
        c.access(64); // B
        c.access(0); // touch A
        c.access(128); // C evicts B
        assert!(c.access(0), "A stays");
        assert!(!c.access(64), "B was evicted");
    }

    #[test]
    fn flush_invalidates() {
        let mut c = Cache::for_level(CacheLevel::L1I);
        c.access(0);
        assert_eq!(c.resident_lines(), 1);
        c.flush();
        assert_eq!(c.resident_lines(), 0);
        assert!(!c.access(0));
    }

    #[test]
    fn miss_ratio_math() {
        let s = CacheStats { hits: 3, misses: 1 };
        assert!((s.miss_ratio() - 0.25).abs() < 1e-12);
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_sets() {
        let _ = Cache::new(3 * 64, 1, 64);
    }

    proptest! {
        #[test]
        fn prop_resident_lines_never_exceed_capacity(addrs in prop::collection::vec(0u64..1_000_000, 1..500)) {
            let mut c = Cache::new(4096, 4, 64);
            for a in addrs {
                c.access(a);
            }
            prop_assert!(c.resident_lines() <= 4096 / 64);
        }

        #[test]
        fn prop_repeat_access_hits(addr: u64) {
            let mut c = Cache::for_level(CacheLevel::L1D);
            c.access(addr);
            prop_assert!(c.access(addr));
        }

        #[test]
        fn prop_stats_account_every_access(addrs in prop::collection::vec(0u64..100_000, 0..300)) {
            let mut c = Cache::new(2048, 2, 64);
            for a in &addrs {
                c.access(*a);
            }
            prop_assert_eq!(c.stats().accesses(), addrs.len() as u64);
        }
    }
}
