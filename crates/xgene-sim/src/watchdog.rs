//! The deadline watchdog: converting hangs into observable timeouts.
//!
//! The paper's framework babysits boards with an *external* watchdog: if a
//! run does not report completion within its deadline, the watchdog
//! power-cycles the board and the run is logged as a hang. That external
//! view is exactly what a production system operating below the guardband
//! has, too — it can never see a [`RunOutcome::Crash`] label, only the
//! absence of a completion before the deadline. This module models that
//! conversion: [`DeadlineWatchdog::guard`] turns the simulator's
//! oracle-level outcome into what the deadline timer actually observes,
//! and keeps the firing statistics a health monitor consumes.

use crate::fault::RunOutcome;
use serde::{Deserialize, Serialize};
use telemetry::Level;

/// Watchdog tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WatchdogConfig {
    /// Runtime budget per run, in milliseconds. A run that has not
    /// completed by then is declared hung.
    pub deadline_ms: f64,
    /// Nominal runtime of a completing run, in milliseconds (what the
    /// timer reads back for completed runs).
    pub expected_runtime_ms: f64,
}

impl WatchdogConfig {
    /// The framework's defaults: runs budgeted at 4× their nominal 30 s
    /// runtime before the watchdog fires.
    pub fn dsn18() -> Self {
        WatchdogConfig {
            deadline_ms: 120_000.0,
            expected_runtime_ms: 30_000.0,
        }
    }
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig::dsn18()
    }
}

/// Firing statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WatchdogStats {
    /// Runs guarded.
    pub runs_guarded: u64,
    /// Deadline expirations (hangs converted to observable timeouts).
    pub timeouts: u64,
}

/// What the deadline timer observed for one run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum WatchdogVerdict {
    /// The run reported completion within its budget.
    Completed {
        /// Measured runtime, in milliseconds.
        runtime_ms: f64,
    },
    /// The deadline expired with no completion: the watchdog fired and the
    /// board was (or must be) power-cycled.
    TimedOut {
        /// The expired budget, in milliseconds.
        deadline_ms: f64,
    },
}

impl WatchdogVerdict {
    /// Whether the watchdog had to fire.
    pub fn timed_out(self) -> bool {
        matches!(self, WatchdogVerdict::TimedOut { .. })
    }
}

/// The per-board deadline watchdog.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeadlineWatchdog {
    config: WatchdogConfig,
    stats: WatchdogStats,
}

impl DeadlineWatchdog {
    /// Arms a watchdog.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < expected_runtime_ms <= deadline_ms`.
    pub fn new(config: WatchdogConfig) -> Self {
        assert!(
            config.expected_runtime_ms > 0.0,
            "expected runtime must be positive"
        );
        assert!(
            config.deadline_ms >= config.expected_runtime_ms,
            "the deadline must cover at least one nominal runtime"
        );
        DeadlineWatchdog {
            config,
            stats: WatchdogStats::default(),
        }
    }

    /// The configured budget.
    pub fn config(&self) -> WatchdogConfig {
        self.config
    }

    /// Firing statistics so far.
    pub fn stats(&self) -> WatchdogStats {
        self.stats
    }

    /// Converts one run's (oracle) outcome into the deadline timer's view:
    /// crashes and hangs never report completion, so the deadline expires;
    /// every completing outcome — including a silent corruption — reads
    /// back as an ordinary in-time completion. This is the observability
    /// boundary the safety net lives behind.
    pub fn guard(&mut self, outcome: RunOutcome) -> WatchdogVerdict {
        self.stats.runs_guarded += 1;
        if outcome.needs_reset() {
            self.stats.timeouts += 1;
            telemetry::event!(
                Level::Warn,
                "watchdog_deadline",
                deadline_ms = self.config.deadline_ms,
                timeouts = self.stats.timeouts,
            );
            telemetry::counter!("watchdog_deadline_timeouts_total");
            return WatchdogVerdict::TimedOut {
                deadline_ms: self.config.deadline_ms,
            };
        }
        WatchdogVerdict::Completed {
            runtime_ms: self.config.expected_runtime_ms,
        }
    }
}

impl Default for DeadlineWatchdog {
    fn default() -> Self {
        DeadlineWatchdog::new(WatchdogConfig::dsn18())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_becomes_timeout() {
        let mut wd = DeadlineWatchdog::default();
        let v = wd.guard(RunOutcome::Crash);
        assert!(v.timed_out());
        assert_eq!(wd.stats().timeouts, 1);
        assert_eq!(wd.stats().runs_guarded, 1);
    }

    #[test]
    fn sdc_reads_back_as_clean_completion() {
        // The whole reason sentinels exist: the watchdog alone cannot see
        // a silent corruption.
        let mut wd = DeadlineWatchdog::default();
        let v = wd.guard(RunOutcome::SilentDataCorruption);
        assert!(!v.timed_out());
        assert_eq!(
            v,
            WatchdogVerdict::Completed {
                runtime_ms: WatchdogConfig::dsn18().expected_runtime_ms
            }
        );
        assert_eq!(wd.stats().timeouts, 0);
    }

    #[test]
    fn completions_and_error_reports_do_not_fire() {
        let mut wd = DeadlineWatchdog::default();
        for o in [
            RunOutcome::Correct,
            RunOutcome::CorrectableError,
            RunOutcome::UncorrectableError,
        ] {
            assert!(!wd.guard(o).timed_out());
        }
        assert_eq!(wd.stats().runs_guarded, 3);
        assert_eq!(wd.stats().timeouts, 0);
    }

    #[test]
    #[should_panic(expected = "deadline must cover")]
    fn rejects_deadline_below_runtime() {
        DeadlineWatchdog::new(WatchdogConfig {
            deadline_ms: 10.0,
            expected_runtime_ms: 20.0,
        });
    }

    #[test]
    fn serde_roundtrip() {
        let mut wd = DeadlineWatchdog::default();
        wd.guard(RunOutcome::Crash);
        let text = serde::json::to_string(&wd);
        let back: DeadlineWatchdog = serde::json::from_str(&text).unwrap();
        assert_eq!(wd, back);
    }
}
