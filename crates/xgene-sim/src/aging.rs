//! Silicon aging: NBTI/HCI-style Vmin drift over deployment time.
//!
//! The guardbands the paper measures exist to cover process, voltage,
//! temperature **and aging**; exploiting them (running at the measured
//! safe point) removes the slack that would otherwise absorb wear-out.
//! This module supplies the time axis: a per-chip [`AgingModel`] that
//! turns a deployment [`StressProfile`] and an age in simulated months
//! into a per-core upward Vmin shift.
//!
//! The shift follows the standard reaction–diffusion shape of BTI
//! degradation, `ΔVmin ∝ t^n` with `n ≈ 0.3` (power-law saturation:
//! most of the lifetime shift lands in the first year), accelerated by
//! voltage overdrive (NBTI is field-driven) and temperature
//! (Arrhenius-like, linearized over the server's 40–70 °C window), plus
//! an activity-proportional HCI term for cores that switch hard. Each
//! core carries its own sampled susceptibility — two cores of one chip
//! do not age identically, just as they do not start identical.
//!
//! Everything is a pure function of `(model, stress, months)`; the
//! model itself is a pure function of its seed. No wall clock anywhere,
//! so fleet-lifetime simulations stay byte-reproducible.

use crate::topology::{CoreId, CORE_COUNT};
use power_model::units::{Celsius, Millivolts};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The operating conditions a deployed board ages under.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StressProfile {
    /// Deployed PMD-rail voltage (higher overdrive ⇒ faster BTI aging).
    pub voltage: Millivolts,
    /// Average silicon temperature during operation.
    pub temperature: Celsius,
    /// Average utilization in `[0, 1]` (drives the HCI term).
    pub activity: f64,
}

impl StressProfile {
    /// A typical datacenter duty cycle: the paper's exploited 930 mV
    /// point, 55 °C silicon, ~60 % utilization.
    pub fn datacenter() -> Self {
        StressProfile {
            voltage: Millivolts::new(930),
            temperature: Celsius::new(55.0),
            activity: 0.6,
        }
    }
}

/// Per-chip aging personality: the calibrated drift law plus one
/// susceptibility factor per core.
///
/// # Examples
///
/// ```
/// use xgene_sim::aging::{AgingModel, StressProfile};
/// use xgene_sim::topology::CoreId;
///
/// let model = AgingModel::sampled(42);
/// let stress = StressProfile::datacenter();
/// let year1 = model.vmin_shift_mv(CoreId::new(0), &stress, 12);
/// let year3 = model.vmin_shift_mv(CoreId::new(0), &stress, 36);
/// assert!(year1 > 0.0 && year3 > year1); // drift only ever grows
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AgingModel {
    /// Per-core susceptibility multipliers (sampled around 1).
    susceptibility: [f64; CORE_COUNT],
    /// BTI prefactor: mV of shift at one month under reference stress.
    nbti_mv_per_month_pow: f64,
    /// HCI prefactor: mV/month^n of shift at activity 1.
    hci_mv_per_month_pow: f64,
    /// Power-law time exponent (`t^n`).
    time_exponent: f64,
}

/// Reference voltage of the BTI acceleration term: overdrive is measured
/// from here, so a board parked at a deep undervolt ages slower than one
/// at nominal — the guardband-exploitation silver lining.
const REFERENCE_MV: f64 = 900.0;
/// Reference temperature of the thermal acceleration term.
const REFERENCE_CELSIUS: f64 = 45.0;

impl AgingModel {
    /// Samples one chip's aging personality, deterministic in `seed`.
    ///
    /// Calibration (see DESIGN.md §13): under the datacenter stress
    /// profile a median chip's worst core drifts ≈ 10 mV in the first
    /// year and ≈ 15–20 mV by year three — inside the 25 mV deployment
    /// margin of [`SafePointPolicy::dsn18`], but close enough that the
    /// most susceptible chips cross it within the simulated horizon,
    /// which is exactly the hazard the lifetime subsystem exists to
    /// manage.
    ///
    /// [`SafePointPolicy::dsn18`]: ../../guardband_core/safepoint/struct.SafePointPolicy.html
    pub fn sampled(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x00A6_1ED5_1C0F_F5E7_u64);
        let mut susceptibility = [1.0; CORE_COUNT];
        for s in &mut susceptibility {
            // Bounded bell-shaped draw in [0.7, 1.6]: mean of four
            // uniforms, the same shape `ChipProfile::sampled` uses.
            let unit: f64 = (0..4).map(|_| rng.gen::<f64>()).sum::<f64>() / 2.0 - 1.0;
            *s = 1.15 + 0.45 * unit;
        }
        AgingModel {
            susceptibility,
            nbti_mv_per_month_pow: 3.2 * (1.0 + 0.15 * (rng.gen::<f64>() - 0.5)),
            hci_mv_per_month_pow: 1.1 * (1.0 + 0.15 * (rng.gen::<f64>() - 0.5)),
            time_exponent: 0.30,
        }
    }

    /// A core's susceptibility multiplier.
    pub fn susceptibility(&self, core: CoreId) -> f64 {
        self.susceptibility[core.index()]
    }

    /// The core that will drift fastest.
    pub fn most_susceptible_core(&self) -> CoreId {
        let (idx, _) = self
            .susceptibility
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .expect("susceptibilities are non-empty");
        CoreId::new(idx as u8)
    }

    /// Voltage-overdrive acceleration: `exp(k · (V − V_ref))`, clamped
    /// below so a deep undervolt can slow but never reverse aging.
    fn voltage_acceleration(&self, voltage: Millivolts) -> f64 {
        let overdrive_mv = f64::from(voltage.as_u32()) - REFERENCE_MV;
        (0.008 * overdrive_mv).exp().max(0.25)
    }

    /// Arrhenius-like thermal acceleration, linearized as one doubling
    /// per 25 K over the server window.
    fn thermal_acceleration(&self, temperature: Celsius) -> f64 {
        let dt = temperature.as_f64() - REFERENCE_CELSIUS;
        (dt / 25.0).exp2().max(0.25)
    }

    /// Upward Vmin shift of `core` after `months` under `stress`, in mV.
    ///
    /// Monotone (non-strictly) in months, voltage, temperature and
    /// activity — property-tested in `tests/lifetime.rs`.
    pub fn vmin_shift_mv(&self, core: CoreId, stress: &StressProfile, months: u32) -> f64 {
        if months == 0 {
            return 0.0;
        }
        let v_acc = self.voltage_acceleration(stress.voltage);
        let t_acc = self.thermal_acceleration(stress.temperature);
        let bti = self.nbti_mv_per_month_pow * v_acc * t_acc;
        let hci = self.hci_mv_per_month_pow * stress.activity.clamp(0.0, 1.0) * t_acc;
        self.susceptibility[core.index()] * (bti + hci) * f64::from(months).powf(self.time_exponent)
    }

    /// The full per-core shift vector at `months` — the argument
    /// [`ChipProfile::with_aging`](crate::sigma::ChipProfile::with_aging)
    /// takes.
    pub fn shifts_mv(&self, stress: &StressProfile, months: u32) -> [f64; CORE_COUNT] {
        let mut shifts = [0.0; CORE_COUNT];
        for (i, shift) in shifts.iter_mut().enumerate() {
            *shift = self.vmin_shift_mv(CoreId::new(i as u8), stress, months);
        }
        shifts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sigma::{ChipProfile, SigmaBin};
    use crate::workload::WorkloadProfile;
    use power_model::units::Megahertz;

    #[test]
    fn sampling_is_deterministic_and_seed_sensitive() {
        assert_eq!(AgingModel::sampled(7), AgingModel::sampled(7));
        assert_ne!(AgingModel::sampled(7), AgingModel::sampled(8));
    }

    #[test]
    fn drift_is_monotone_in_time_and_saturating() {
        let model = AgingModel::sampled(1);
        let stress = StressProfile::datacenter();
        let core = CoreId::new(3);
        let mut prev = 0.0;
        let mut prev_delta = f64::INFINITY;
        for months in 1..=48 {
            let shift = model.vmin_shift_mv(core, &stress, months);
            assert!(shift > prev, "month {months}: {shift} vs {prev}");
            let delta = shift - prev;
            assert!(
                delta <= prev_delta + 1e-9,
                "power-law drift must decelerate (month {months})"
            );
            prev = shift;
            prev_delta = delta;
        }
    }

    #[test]
    fn hotter_higher_and_busier_age_faster() {
        let model = AgingModel::sampled(2);
        let base = StressProfile::datacenter();
        let shift = |s: &StressProfile| model.vmin_shift_mv(CoreId::new(0), s, 24);
        let hot = StressProfile {
            temperature: Celsius::new(70.0),
            ..base
        };
        let high_v = StressProfile {
            voltage: Millivolts::new(980),
            ..base
        };
        let busy = StressProfile {
            activity: 1.0,
            ..base
        };
        assert!(shift(&hot) > shift(&base));
        assert!(shift(&high_v) > shift(&base));
        assert!(shift(&busy) > shift(&base));
    }

    #[test]
    fn first_year_drift_is_plausibly_sized() {
        // Median chips should drift single-digit-to-low-double-digit mV
        // in year one under datacenter stress — big enough to matter
        // against a 25 mV margin over a multi-year horizon, small enough
        // that month one never eats the whole margin.
        let stress = StressProfile::datacenter();
        for seed in 0..16 {
            let model = AgingModel::sampled(seed);
            let worst = model.vmin_shift_mv(model.most_susceptible_core(), &stress, 12);
            assert!((5.0..25.0).contains(&worst), "seed {seed}: {worst} mV");
        }
    }

    #[test]
    fn aged_chip_raises_vmin_by_the_shift() {
        let chip = ChipProfile::corner(SigmaBin::Ttt);
        let model = AgingModel::sampled(5);
        let shifts = model.shifts_mv(&StressProfile::datacenter(), 36);
        let aged = chip.with_aging(&shifts);
        let w = WorkloadProfile::builder("w").activity(0.6).build();
        for core in CoreId::all() {
            let fresh = chip.vmin(core, &w, Megahertz::XGENE2_NOMINAL);
            let old = aged.vmin(core, &w, Megahertz::XGENE2_NOMINAL);
            let delta = i64::from(old.as_u32()) - i64::from(fresh.as_u32());
            let expected = shifts[core.index()];
            assert!(
                (delta as f64 - expected).abs() <= 1.0,
                "core {core:?}: moved {delta} mV, shift {expected:.1} mV"
            );
        }
    }

    #[test]
    fn undervolted_boards_age_slower_than_nominal_ones() {
        // The silver lining quantified: exploiting the guardband reduces
        // the stress that erodes it.
        let model = AgingModel::sampled(9);
        let at = |mv: u32| {
            model.vmin_shift_mv(
                CoreId::new(0),
                &StressProfile {
                    voltage: Millivolts::new(mv),
                    ..StressProfile::datacenter()
                },
                36,
            )
        };
        assert!(at(930) < at(980));
    }
}
