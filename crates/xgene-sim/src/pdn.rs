//! Power delivery network (PDN) model.
//!
//! The board/package/die power-delivery path behaves as a second-order RLC
//! system with a pronounced first-order resonance in the tens of MHz. A
//! load whose current swings at that frequency builds up the worst-case
//! voltage droop — the mechanism dI/dt viruses exploit (Kim et al. MICRO'12,
//! Whatmough ISSCC'15). This module provides the impedance profile and the
//! droop response to periodic current waveforms synthesized from
//! instruction loops.

use serde::{Deserialize, Serialize};

/// Second-order PDN with impedance `Z(f) = R + j2πfL ∥ 1/(j2πfC)` of the
/// classic series R–L feeding an on-die decap C (parallel damping folded
/// into `q`).
///
/// # Examples
///
/// ```
/// use xgene_sim::pdn::PdnModel;
///
/// let pdn = PdnModel::xgene2();
/// let f0 = pdn.resonant_frequency_hz();
/// assert!(f0 > 20e6 && f0 < 120e6);
/// // Impedance peaks at the resonance:
/// assert!(pdn.impedance_ohms(f0) > pdn.impedance_ohms(f0 / 4.0));
/// assert!(pdn.impedance_ohms(f0) > pdn.impedance_ohms(f0 * 4.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PdnModel {
    /// Series (DC) resistance in ohms.
    r_ohms: f64,
    /// Loop inductance in henries.
    l_henries: f64,
    /// On-die + package decoupling capacitance in farads.
    c_farads: f64,
    /// Quality factor of the resonance.
    q: f64,
}

impl PdnModel {
    /// Creates a PDN from electrical parameters.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is not strictly positive.
    pub fn new(r_ohms: f64, l_henries: f64, c_farads: f64, q: f64) -> Self {
        assert!(r_ohms > 0.0, "resistance must be positive");
        assert!(l_henries > 0.0, "inductance must be positive");
        assert!(c_farads > 0.0, "capacitance must be positive");
        assert!(q > 0.0, "quality factor must be positive");
        PdnModel {
            r_ohms,
            l_henries,
            c_farads,
            q,
        }
    }

    /// The calibrated X-Gene2 PDN: ~50 MHz first-order resonance, 0.6 mΩ DC
    /// resistance, Q ≈ 3 (28 nm server package).
    pub fn xgene2() -> Self {
        // f0 = 1/(2π√(LC)); with L = 10 pH and C = 1.0 µF, f0 ≈ 50.3 MHz.
        PdnModel::new(0.0006, 10e-12, 1.013e-6, 3.0)
    }

    /// First-order resonant frequency in Hz.
    pub fn resonant_frequency_hz(&self) -> f64 {
        1.0 / (2.0 * std::f64::consts::PI * (self.l_henries * self.c_farads).sqrt())
    }

    /// Impedance magnitude |Z(f)| in ohms, as a damped resonance peak:
    /// `|Z| = R·(1 + (Q−1)/(1 + ((f−f0)/(f0/Q))²))` — the standard
    /// lorentzian approximation of the band-limited peak.
    pub fn impedance_ohms(&self, f_hz: f64) -> f64 {
        if f_hz <= 0.0 {
            return self.r_ohms;
        }
        let f0 = self.resonant_frequency_hz();
        let bw = f0 / self.q;
        let x = (f_hz - f0) / bw;
        self.r_ohms * (1.0 + (self.q - 1.0) * self.q / (1.0 + x * x))
    }

    /// Peak impedance (at resonance).
    pub fn peak_impedance_ohms(&self) -> f64 {
        self.impedance_ohms(self.resonant_frequency_hz())
    }

    /// Worst-case droop in volts for a periodic current waveform described
    /// by its spectrum: `(frequency Hz, amplitude A)` pairs plus a DC draw.
    ///
    /// The droop is the IR drop of the DC component plus the sum of the
    /// harmonic amplitudes weighted by the impedance at each harmonic (a
    /// conservative in-phase summation, appropriate for a worst-case
    /// analysis).
    pub fn droop_volts(&self, dc_amps: f64, harmonics: &[(f64, f64)]) -> f64 {
        let dc = dc_amps.max(0.0) * self.r_ohms;
        let ac: f64 = harmonics
            .iter()
            .map(|(f, a)| a.abs() * self.impedance_ohms(*f))
            .sum();
        dc + ac
    }

    /// Droop in millivolts for a sampled periodic current trace.
    ///
    /// `samples` holds instantaneous current in amps over exactly one loop
    /// period; `period_s` is the loop duration in seconds. The trace is
    /// decomposed into its first eight Fourier harmonics.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or `period_s` is not positive.
    pub fn droop_mv_from_trace(&self, samples: &[f64], period_s: f64) -> f64 {
        let spec = spectrum(samples, period_s, 8);
        let dc = mean(samples);
        self.droop_volts(dc, &spec) * 1000.0
    }
}

impl Default for PdnModel {
    fn default() -> Self {
        PdnModel::xgene2()
    }
}

/// Mean of a sample vector.
pub fn mean(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().sum::<f64>() / samples.len() as f64
}

/// First `n` Fourier harmonic `(frequency, amplitude)` pairs of a periodic
/// trace sampled uniformly over one period.
///
/// # Panics
///
/// Panics if `samples` is empty or `period_s` is not positive.
pub fn spectrum(samples: &[f64], period_s: f64, n: usize) -> Vec<(f64, f64)> {
    assert!(!samples.is_empty(), "trace must not be empty");
    assert!(
        period_s > 0.0 && period_s.is_finite(),
        "period must be positive"
    );
    let len = samples.len() as f64;
    let f1 = 1.0 / period_s;
    (1..=n)
        .map(|k| {
            let kf = k as f64;
            let (mut re, mut im) = (0.0, 0.0);
            for (i, s) in samples.iter().enumerate() {
                let phase = 2.0 * std::f64::consts::PI * kf * i as f64 / len;
                re += s * phase.cos();
                im -= s * phase.sin();
            }
            let amplitude = 2.0 * (re * re + im * im).sqrt() / len;
            (kf * f1, amplitude)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resonance_is_near_50mhz() {
        let f0 = PdnModel::xgene2().resonant_frequency_hz();
        assert!((f0 - 50e6).abs() < 2e6, "f0 = {f0}");
    }

    #[test]
    fn impedance_peaks_at_resonance() {
        let pdn = PdnModel::xgene2();
        let f0 = pdn.resonant_frequency_hz();
        let peak = pdn.impedance_ohms(f0);
        for f in [f0 / 10.0, f0 / 2.0, f0 * 2.0, f0 * 10.0] {
            assert!(peak > pdn.impedance_ohms(f), "f = {f}");
        }
        assert!(peak / pdn.r_ohms > 2.0, "peak gain {}", peak / pdn.r_ohms);
    }

    #[test]
    fn spectrum_of_square_wave_concentrates_on_fundamental() {
        // 50% duty square wave: fundamental amplitude 4A/π·(1/2)… dominated
        // by the first harmonic; even harmonics vanish.
        let samples: Vec<f64> = (0..256).map(|i| if i < 128 { 1.0 } else { -1.0 }).collect();
        let spec = spectrum(&samples, 1.0 / 50e6, 4);
        assert!(spec[0].1 > 1.2, "fundamental {}", spec[0].1); // 4/π ≈ 1.27
        assert!(spec[1].1 < 0.05, "2nd harmonic {}", spec[1].1);
        assert!((spec[0].0 - 50e6).abs() < 1.0);
    }

    #[test]
    fn resonant_square_wave_droops_more_than_dc_equivalent() {
        let pdn = PdnModel::xgene2();
        let f0 = pdn.resonant_frequency_hz();
        // Square wave between 5 A and 25 A at the resonant frequency.
        let square: Vec<f64> = (0..256).map(|i| if i < 128 { 25.0 } else { 5.0 }).collect();
        let flat = vec![15.0; 256];
        let at_res = pdn.droop_mv_from_trace(&square, 1.0 / f0);
        let steady = pdn.droop_mv_from_trace(&flat, 1.0 / f0);
        let off_res = pdn.droop_mv_from_trace(&square, 1.0 / (f0 * 7.3));
        assert!(
            at_res > 3.0 * steady,
            "resonant {at_res} vs steady {steady}"
        );
        assert!(
            at_res > 1.5 * off_res,
            "resonant {at_res} vs off-resonance {off_res}"
        );
    }

    #[test]
    fn droop_scales_with_swing() {
        let pdn = PdnModel::xgene2();
        let f0 = pdn.resonant_frequency_hz();
        let small: Vec<f64> = (0..128).map(|i| if i < 64 { 16.0 } else { 14.0 }).collect();
        let large: Vec<f64> = (0..128).map(|i| if i < 64 { 28.0 } else { 2.0 }).collect();
        assert!(
            pdn.droop_mv_from_trace(&large, 1.0 / f0) > pdn.droop_mv_from_trace(&small, 1.0 / f0)
        );
    }

    #[test]
    #[should_panic(expected = "trace must not be empty")]
    fn spectrum_rejects_empty() {
        let _ = spectrum(&[], 1.0, 4);
    }
}
