//! A single-issue in-order core model executing micro-op streams against
//! the cache hierarchy.
//!
//! This closes the loop between the stress generators and the electrical
//! models: a virus loop (or any synthetic program) can be *executed* to
//! obtain its IPC, per-cycle current waveform and counter-derived workload
//! profile, instead of hand-annotating those properties.

use crate::hierarchy::CacheHierarchy;
use crate::topology::CoreId;
use crate::workload::WorkloadProfile;
use serde::{Deserialize, Serialize};

/// Execution unit a micro-op occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExecUnit {
    /// No unit (bubble / nop).
    None,
    /// Integer ALU.
    IntAlu,
    /// FP / SIMD pipe.
    FpSimd,
    /// Load/store unit.
    LoadStore,
    /// Branch unit.
    Branch,
}

/// One micro-op of a synthetic program.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MicroOp {
    /// The unit it occupies.
    pub unit: ExecUnit,
    /// Execution latency in cycles (excluding memory).
    pub latency: u32,
    /// Current drawn while executing, in amps.
    pub current_amps: f64,
    /// Data address touched, if it is a memory op.
    pub address: Option<u64>,
}

impl MicroOp {
    /// A non-memory op.
    pub fn compute(unit: ExecUnit, latency: u32, current_amps: f64) -> Self {
        MicroOp {
            unit,
            latency,
            current_amps,
            address: None,
        }
    }

    /// A load from `address`.
    pub fn load(address: u64, current_amps: f64) -> Self {
        MicroOp {
            unit: ExecUnit::LoadStore,
            latency: 1,
            current_amps,
            address: Some(address),
        }
    }
}

/// Result of executing a stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionReport {
    /// Total cycles consumed.
    pub cycles: u64,
    /// Micro-ops retired.
    pub instructions: u64,
    /// Per-cycle current samples of one loop iteration (for PDN analysis).
    pub current_trace: Vec<f64>,
    /// DRAM accesses per instruction.
    pub dram_ratio: f64,
    /// Mean current in amps.
    pub mean_current: f64,
}

impl ExecutionReport {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Derives a [`WorkloadProfile`] from the measured execution: activity
    /// from the mean current, swing from the waveform extremes, resonance
    /// alignment left at 0 (use the PDN spectrum for that — see
    /// `stress-gen`), memory intensity from the DRAM ratio.
    pub fn profile(&self, name: &str, idle_amps: f64, max_amps: f64) -> WorkloadProfile {
        let span = (max_amps - idle_amps).max(1e-9);
        let activity = ((self.mean_current - idle_amps) / span).clamp(0.0, 1.0);
        let max = self.current_trace.iter().cloned().fold(f64::MIN, f64::max);
        let min = self.current_trace.iter().cloned().fold(f64::MAX, f64::min);
        let swing = if self.current_trace.is_empty() {
            0.0
        } else {
            ((max - min) / span).clamp(0.0, 1.0)
        };
        WorkloadProfile::builder(name)
            .activity(activity)
            .swing(swing)
            .resonance_alignment(0.0)
            .memory_intensity(self.dram_ratio.clamp(0.0, 1.0))
            .ipc(self.ipc())
            .build()
    }
}

/// The in-order core.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InOrderCore {
    core: CoreId,
    /// Idle (clock-tree + leakage proxy) current in amps.
    idle_amps: f64,
}

impl InOrderCore {
    /// Creates a core model.
    pub fn new(core: CoreId) -> Self {
        InOrderCore {
            core,
            idle_amps: 0.6,
        }
    }

    /// Executes `iterations` repetitions of a loop body against the
    /// hierarchy, sampling the current waveform of the final iteration.
    ///
    /// # Panics
    ///
    /// Panics if the loop body is empty or `iterations` is zero.
    pub fn execute(
        &self,
        hierarchy: &mut CacheHierarchy,
        body: &[MicroOp],
        iterations: u32,
    ) -> ExecutionReport {
        assert!(!body.is_empty(), "loop body must not be empty");
        assert!(iterations > 0, "at least one iteration");
        let mut cycles: u64 = 0;
        let mut instructions: u64 = 0;
        let mut current_sum = 0.0;
        let mut trace = Vec::new();
        let mut dram_accesses: u64 = 0;

        for iter in 0..iterations {
            let last = iter + 1 == iterations;
            if last {
                trace.clear();
            }
            for op in body {
                let mut op_cycles = u64::from(op.latency.max(1));
                let mut op_current = op.current_amps;
                if let Some(addr) = op.address {
                    let (served, lat) = hierarchy.access_data(self.core, addr);
                    op_cycles = u64::from(lat);
                    if served == crate::hierarchy::ServedBy::Dram {
                        dram_accesses += 1;
                        // A core stalled on DRAM draws near-idle current.
                        op_current = self.idle_amps * 1.2;
                    }
                }
                cycles += op_cycles;
                instructions += 1;
                current_sum += op_current * op_cycles as f64;
                if last {
                    for _ in 0..op_cycles {
                        trace.push(op_current);
                    }
                }
            }
        }

        ExecutionReport {
            cycles,
            instructions,
            current_trace: trace,
            dram_ratio: if instructions == 0 {
                0.0
            } else {
                dram_accesses as f64 / instructions as f64
            },
            mean_current: if cycles == 0 {
                0.0
            } else {
                current_sum / cycles as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alu(latency: u32, amps: f64) -> MicroOp {
        MicroOp::compute(ExecUnit::IntAlu, latency, amps)
    }

    #[test]
    fn ipc_of_single_cycle_ops_is_one() {
        let mut h = CacheHierarchy::xgene2();
        let core = InOrderCore::new(CoreId::new(0));
        let report = core.execute(&mut h, &[alu(1, 1.5); 16], 10);
        assert!((report.ipc() - 1.0).abs() < 1e-12);
        assert_eq!(report.instructions, 160);
    }

    #[test]
    fn memory_latency_lowers_ipc() {
        let mut h = CacheHierarchy::xgene2();
        let core = InOrderCore::new(CoreId::new(0));
        // Strided loads over 4 MiB: mostly L3/DRAM.
        let body: Vec<MicroOp> = (0..64).map(|i| MicroOp::load(i * 64 * 1024, 1.7)).collect();
        let report = core.execute(&mut h, &body, 4);
        assert!(report.ipc() < 0.1, "ipc {}", report.ipc());
        assert!(report.dram_ratio > 0.1, "dram ratio {}", report.dram_ratio);
    }

    #[test]
    fn cache_resident_loads_run_fast() {
        let mut h = CacheHierarchy::xgene2();
        let core = InOrderCore::new(CoreId::new(0));
        // 8 KiB working set: L1-resident after the cold first pass.
        let body: Vec<MicroOp> = (0..128).map(|i| MicroOp::load(i * 64, 1.7)).collect();
        let report = core.execute(&mut h, &body, 100);
        assert!(report.ipc() > 0.15, "ipc {}", report.ipc());
        assert!(report.dram_ratio < 0.02, "dram ratio {}", report.dram_ratio);
    }

    #[test]
    fn trace_covers_one_iteration() {
        let mut h = CacheHierarchy::xgene2();
        let core = InOrderCore::new(CoreId::new(0));
        let body = [alu(2, 2.0), alu(1, 1.0)];
        let report = core.execute(&mut h, &body, 3);
        assert_eq!(report.current_trace.len(), 3); // 2 + 1 cycles
        assert_eq!(report.current_trace, vec![2.0, 2.0, 1.0]);
    }

    #[test]
    fn derived_profile_tracks_execution() {
        let mut h = CacheHierarchy::xgene2();
        let core = InOrderCore::new(CoreId::new(0));
        let hot = core.execute(&mut h, &[alu(1, 3.2); 32], 5);
        let hot_profile = hot.profile("hot", 0.6, 3.4);
        h.reset();
        let cold = core.execute(&mut h, &[alu(1, 0.8); 32], 5);
        let cold_profile = cold.profile("cold", 0.6, 3.4);
        assert!(hot_profile.activity() > cold_profile.activity());
        assert!(hot_profile.droop_score() > cold_profile.droop_score());
    }

    #[test]
    #[should_panic(expected = "loop body")]
    fn rejects_empty_body() {
        let mut h = CacheHierarchy::xgene2();
        InOrderCore::new(CoreId::new(0)).execute(&mut h, &[], 1);
    }
}
