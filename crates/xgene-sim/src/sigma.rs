//! Process-corner chip profiles (sigma chips).
//!
//! The paper characterizes three X-Gene2 parts on socketed validation
//! boards: a typical TTT chip plus two corner ("sigma") parts selected from
//! both ends of the leakage distribution — TFF (fast, high leakage) and TSS
//! (slow, low leakage). The corners differ in intrinsic Vmin, sensitivity
//! to workload activity and to resonant voltage droop, giving each chip a
//! distinct guardband (Figs. 4, 6, 7).

use crate::topology::{CacheLevel, CoreId, CORE_COUNT};
use crate::workload::{StressTarget, WorkloadProfile};
use power_model::scaling::CornerLeakage;
use power_model::units::{Megahertz, Millivolts};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Process corner of a characterized chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SigmaBin {
    /// Typical part.
    Ttt,
    /// Fast corner — high leakage, can clock higher, large droop
    /// sensitivity.
    Tff,
    /// Slow corner — low leakage, weakest at nominal frequency.
    Tss,
}

impl SigmaBin {
    /// All three characterized corners.
    pub const ALL: [SigmaBin; 3] = [SigmaBin::Ttt, SigmaBin::Tff, SigmaBin::Tss];
}

impl fmt::Display for SigmaBin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SigmaBin::Ttt => "TTT",
            SigmaBin::Tff => "TFF",
            SigmaBin::Tss => "TSS",
        };
        f.write_str(s)
    }
}

/// Electrical personality of one physical chip.
///
/// The Vmin of a (core, workload, frequency) combination decomposes as
///
/// ```text
/// Vmin = intrinsic
///      + activity_coeff · droop_score(workload)
///      + droop_coeff    · resonant_energy(workload)
///      + core_offset[core]
///      + multicore_penalty · (active_cores − 1)
///      − freq_slope · (f_nom − f)
/// ```
///
/// calibrated per corner so the published Fig. 4 SPEC ranges and the
/// Fig. 6/7 virus margins emerge.
///
/// # Examples
///
/// ```
/// use xgene_sim::sigma::{ChipProfile, SigmaBin};
/// use xgene_sim::workload::WorkloadProfile;
/// use power_model::units::{Megahertz, Millivolts};
///
/// let ttt = ChipProfile::corner(SigmaBin::Ttt);
/// let idle = ttt.vmin(ttt.most_robust_core(), &WorkloadProfile::idle(),
///                     Megahertz::XGENE2_NOMINAL);
/// assert!(idle < Millivolts::new(880)); // idle Vmin is low
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChipProfile {
    bin: SigmaBin,
    /// Idle Vmin of the most robust core at nominal frequency.
    intrinsic: Millivolts,
    /// mV of Vmin per unit of workload droop score.
    activity_coeff_mv: f64,
    /// mV of Vmin per unit of resonant energy (dI/dt virus component).
    droop_coeff_mv: f64,
    /// Per-core Vmin offsets in mV (0 = most robust core).
    core_offsets_mv: [f64; CORE_COUNT],
    /// Extra rail requirement per additional simultaneously active core.
    multicore_penalty_mv: f64,
    /// Vmin reduction per MHz below nominal frequency.
    freq_slope_mv_per_mhz: f64,
    /// Leakage corner for the power model.
    leakage: CornerLeakage,
    /// SRAM arrays stop operating below this supply (cache-targeted
    /// viruses expose level-dependent margins above it).
    sram_vmin: Millivolts,
}

impl ChipProfile {
    /// The calibrated profile of one of the three characterized parts.
    pub fn corner(bin: SigmaBin) -> Self {
        // Calibration (see DESIGN.md): with SPEC droop scores spanning
        // [0.2, 0.7] the most robust core's Fig. 4 range and the Fig. 6/7
        // virus Vmins (measured like Fig. 4 on the most robust core) are:
        //   TTT:  SPEC 860..885 mV, virus Vmin 920 mV (60 mV margin)
        //   TFF:  SPEC 870..885 mV, virus Vmin 960 mV (20 mV margin)
        //   TSS:  SPEC 870..900 mV, virus Vmin 970 mV (~0 margin)
        // The droop coefficients anchor on the GA-evolved dI/dt virus: a
        // full-swing square wave at the PDN resonance (activity 0.5,
        // swing 1, alignment 1 => droop score 0.625, resonant energy 1).
        match bin {
            SigmaBin::Ttt => ChipProfile {
                bin,
                intrinsic: Millivolts::new(850),
                activity_coeff_mv: 50.0,
                droop_coeff_mv: 39.0,
                core_offsets_mv: [15.0, 14.0, 8.0, 7.0, 4.0, 3.0, 0.0, 1.0],
                multicore_penalty_mv: 2.1,
                freq_slope_mv_per_mhz: 0.055,
                leakage: CornerLeakage::TYPICAL,
                sram_vmin: Millivolts::new(790),
            },
            SigmaBin::Tff => ChipProfile {
                bin,
                intrinsic: Millivolts::new(864),
                activity_coeff_mv: 30.0,
                droop_coeff_mv: 77.0,
                core_offsets_mv: [8.0, 7.0, 5.0, 6.0, 3.0, 2.0, 0.0, 1.0],
                multicore_penalty_mv: 1.6,
                freq_slope_mv_per_mhz: 0.045,
                leakage: CornerLeakage::FAST,
                sram_vmin: Millivolts::new(800),
            },
            SigmaBin::Tss => ChipProfile {
                bin,
                intrinsic: Millivolts::new(858),
                activity_coeff_mv: 60.0,
                droop_coeff_mv: 74.5,
                core_offsets_mv: [12.0, 11.0, 8.0, 7.0, 5.0, 4.0, 0.0, 2.0],
                multicore_penalty_mv: 2.4,
                freq_slope_mv_per_mhz: 0.060,
                leakage: CornerLeakage::SLOW,
                sram_vmin: Millivolts::new(815),
            },
        }
    }

    /// One per-unit chip personality sampled around a corner's calibrated
    /// centroid.
    ///
    /// The paper characterizes exactly three parts; exploiting guardbands
    /// across a datacenter requires per-unit variation — two TTT chips do
    /// not share a Vmin. Every term of the Vmin decomposition is jittered
    /// with a bounded, bell-shaped draw (mean of four uniforms), so a
    /// sampled chip stays recognizably inside its bin: intrinsic Vmin
    /// within ±8 mV, coefficient spreads of a few percent, per-core
    /// offsets within ±2 mV of the measured pattern. Deterministic in the
    /// RNG state; [`ChipProfile::corner`] is untouched as the population
    /// centroid.
    pub fn sampled(bin: SigmaBin, rng: &mut StdRng) -> Self {
        let mut chip = ChipProfile::corner(bin);
        // Bounded symmetric jitter in [-1, 1] with most mass near 0.
        let mut unit = || {
            let sum: f64 = (0..4).map(|_| rng.gen::<f64>()).sum();
            sum / 2.0 - 1.0
        };
        let intrinsic = f64::from(chip.intrinsic.as_u32()) + 8.0 * unit();
        chip.intrinsic = Millivolts::new(intrinsic.round() as u32);
        chip.activity_coeff_mv *= 1.0 + 0.06 * unit();
        chip.droop_coeff_mv *= 1.0 + 0.06 * unit();
        for offset in &mut chip.core_offsets_mv {
            *offset = (*offset + 2.0 * unit()).max(0.0);
        }
        chip.multicore_penalty_mv = (chip.multicore_penalty_mv * (1.0 + 0.10 * unit())).max(0.0);
        chip.freq_slope_mv_per_mhz *= 1.0 + 0.08 * unit();
        let sram = f64::from(chip.sram_vmin.as_u32()) + 6.0 * unit();
        chip.sram_vmin = Millivolts::new(sram.round() as u32);
        chip
    }

    /// The corner this chip was binned into.
    pub fn bin(&self) -> SigmaBin {
        self.bin
    }

    /// This chip after wear-out: each core's Vmin raised by the given
    /// shift (mV), everything else untouched. Shifts come from an
    /// [`AgingModel`](crate::aging::AgingModel); negative entries are
    /// clamped to zero — silicon does not un-age.
    pub fn with_aging(&self, shifts_mv: &[f64; CORE_COUNT]) -> ChipProfile {
        let mut aged = self.clone();
        for (offset, shift) in aged.core_offsets_mv.iter_mut().zip(shifts_mv) {
            *offset += shift.max(0.0);
        }
        aged
    }

    /// Leakage corner for power modelling.
    pub fn leakage(&self) -> CornerLeakage {
        self.leakage
    }

    /// Idle Vmin of the most robust core at nominal frequency.
    pub fn intrinsic_vmin(&self) -> Millivolts {
        self.intrinsic
    }

    /// The core with the lowest Vmin (plotted in Fig. 4).
    pub fn most_robust_core(&self) -> CoreId {
        let (idx, _) = self
            .core_offsets_mv
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .expect("core offsets are non-empty");
        CoreId::new(idx as u8)
    }

    /// The core with the highest Vmin (sets the shared rail's requirement).
    pub fn weakest_core(&self) -> CoreId {
        let (idx, _) = self
            .core_offsets_mv
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .expect("core offsets are non-empty");
        CoreId::new(idx as u8)
    }

    /// Vmin offset of a core relative to the most robust core, in mV.
    pub fn core_offset_mv(&self, core: CoreId) -> f64 {
        self.core_offsets_mv[core.index()]
    }

    /// Extra rail requirement per additional active core, in mV.
    pub fn multicore_penalty_mv(&self) -> f64 {
        self.multicore_penalty_mv
    }

    /// Minimum safe operating voltage for `workload` running alone on
    /// `core` at `frequency` — the quantity single-benchmark undervolting
    /// campaigns (Fig. 4) search for.
    pub fn vmin(
        &self,
        core: CoreId,
        workload: &WorkloadProfile,
        frequency: Megahertz,
    ) -> Millivolts {
        self.vmin_with_active_cores(core, workload, frequency, 1)
    }

    /// Vmin for `workload` on `core` while `active_cores` cores are busy in
    /// total (shared-rail noise grows with simultaneously switching cores).
    ///
    /// # Panics
    ///
    /// Panics if `active_cores` is 0 or exceeds 8.
    pub fn vmin_with_active_cores(
        &self,
        core: CoreId,
        workload: &WorkloadProfile,
        frequency: Megahertz,
        active_cores: usize,
    ) -> Millivolts {
        assert!(
            (1..=CORE_COUNT).contains(&active_cores),
            "1..=8 active cores"
        );
        let logic = self.logic_vmin_mv(core, workload, frequency)
            + self.multicore_penalty_mv * (active_cores as f64 - 1.0);
        // The shared rail also feeds the cache SRAM arrays; whichever gives
        // out first determines the failure. Cache-targeted viruses push the
        // SRAM limit up towards the logic limit.
        let sram = self.sram_vmin_mv(workload.target());
        Millivolts::new(logic.max(sram).round().max(0.0) as u32)
    }

    /// The rail voltage required to run a set of `(core, workload,
    /// frequency)` assignments simultaneously: the maximum per-assignment
    /// Vmin with the full multicore penalty applied.
    pub fn rail_vmin(
        &self,
        assignments: &[(CoreId, &WorkloadProfile, Megahertz)],
    ) -> Option<Millivolts> {
        let n = assignments.len();
        assignments
            .iter()
            .map(|(core, w, f)| self.vmin_with_active_cores(*core, w, *f, n.clamp(1, CORE_COUNT)))
            .max()
    }

    fn logic_vmin_mv(&self, core: CoreId, workload: &WorkloadProfile, frequency: Megahertz) -> f64 {
        let base = f64::from(self.intrinsic.as_u32())
            + self.activity_coeff_mv * workload.droop_score()
            + self.droop_coeff_mv * workload.resonant_energy()
            + self.core_offsets_mv[core.index()];
        let f_nom = f64::from(Megahertz::XGENE2_NOMINAL.as_u32());
        let f = f64::from(frequency.as_u32());
        if f <= f_nom {
            base - self.freq_slope_mv_per_mhz * (f_nom - f)
        } else {
            // Overclocking: critical paths hit timing walls, so the
            // voltage cost per MHz is ~8x steeper than the undervolting
            // slope (the exact inverse of `fmax`).
            base + (f - f_nom) * self.overclock_slope_mv_per_mhz()
        }
    }

    /// Voltage cost per MHz above nominal frequency.
    fn overclock_slope_mv_per_mhz(&self) -> f64 {
        self.freq_slope_mv_per_mhz * 8.0 / self.corner_boost()
    }

    /// Relative frequency capability of the silicon corner.
    fn corner_boost(&self) -> f64 {
        match self.bin {
            SigmaBin::Tff => 1.06,
            SigmaBin::Ttt => 1.0,
            SigmaBin::Tss => 0.95,
        }
    }

    /// Vmin imposed by the SRAM arrays for a given stress target.
    fn sram_vmin_mv(&self, target: StressTarget) -> f64 {
        let base = f64::from(self.sram_vmin.as_u32());
        match target {
            // Cache viruses keep the arrays continuously active, exposing
            // the weakest bitcells; deeper levels use larger, sturdier cells.
            StressTarget::Cache(CacheLevel::L1I) | StressTarget::Cache(CacheLevel::L1D) => {
                base + 45.0
            }
            StressTarget::Cache(CacheLevel::L2) => base + 30.0,
            StressTarget::Cache(CacheLevel::L3) => base + 18.0,
            _ => base,
        }
    }

    /// Rail droop (in mV) that co-located tenants induce on a victim
    /// core through the shared power-delivery network.
    ///
    /// Only the *resonant* component of a neighbour's current swing
    /// couples across the rail: steady draw is absorbed by the local
    /// decap, but a swing at the PDN's first-order resonance recirculates
    /// through the shared loop inductance and arrives at the victim's
    /// supply pins attenuated by the rail's transfer factor (0.55 for a
    /// same-rail neighbour on this package). This is the coupling path a
    /// multi-tenant dI/dt attacker exploits: its own Vmin penalty is paid
    /// on its own core, while this droop silently erodes the *victim's*
    /// margin.
    pub fn cross_tenant_droop_mv(&self, aggressors: &[&WorkloadProfile]) -> f64 {
        /// Fraction of a neighbour's resonant droop that survives the
        /// trip across the shared rail.
        const RAIL_COUPLING: f64 = 0.55;
        let resonant: f64 = aggressors.iter().map(|w| w.resonant_energy()).sum();
        RAIL_COUPLING * self.droop_coeff_mv * resonant
    }

    /// The guardband (in mV) that nominal 980 mV leaves above `workload`'s
    /// Vmin on `core`.
    pub fn guardband_mv(
        &self,
        core: CoreId,
        workload: &WorkloadProfile,
        frequency: Megahertz,
    ) -> i64 {
        i64::from(Millivolts::XGENE2_NOMINAL.as_u32())
            - i64::from(self.vmin(core, workload, frequency).as_u32())
    }

    /// The maximum safe frequency for `workload` on `core` at `voltage` —
    /// the DVFS dual of [`Self::vmin`], obtained by inverting the
    /// frequency term of the Vmin decomposition. Fast (TFF) parts
    /// overclock the furthest at nominal voltage, matching the corner
    /// selection rationale of §III.A ("high leakage corner parts can
    /// operate in higher frequencies").
    pub fn fmax(&self, core: CoreId, workload: &WorkloadProfile, voltage: Millivolts) -> Megahertz {
        // logic_vmin(f) = vmin(f_nom) − slope · (f_nom − f) ≤ V
        //   ⇔ f ≤ f_nom + (V − vmin(f_nom)) / slope
        let vmin_at_nominal = self.logic_vmin_mv(core, workload, Megahertz::XGENE2_NOMINAL);
        let headroom_mv = f64::from(voltage.as_u32()) - vmin_at_nominal;
        let f = if headroom_mv >= 0.0 {
            // Above nominal frequency the voltage/frequency slope steepens
            // sharply (critical paths hit timing walls): the overclock
            // slope is ~8x the undervolting slope, scaled by the corner.
            f64::from(Megahertz::XGENE2_NOMINAL.as_u32())
                + headroom_mv / self.overclock_slope_mv_per_mhz()
        } else {
            f64::from(Megahertz::XGENE2_NOMINAL.as_u32()) + headroom_mv / self.freq_slope_mv_per_mhz
        };
        Megahertz::new(f.clamp(200.0, 3200.0) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_tenant_droop_follows_resonant_energy() {
        let virus = WorkloadProfile::builder("virus")
            .activity(0.6)
            .swing(1.0)
            .resonance_alignment(1.0)
            .build();
        let half = WorkloadProfile::builder("half")
            .activity(0.6)
            .swing(0.5)
            .resonance_alignment(1.0)
            .build();
        let benign = WorkloadProfile::builder("benign")
            .activity(0.9)
            .swing(0.9)
            .resonance_alignment(0.0)
            .build();
        for bin in [SigmaBin::Ttt, SigmaBin::Tff, SigmaBin::Tss] {
            let chip = ChipProfile::corner(bin);
            let full = chip.cross_tenant_droop_mv(&[&virus]);
            // Attenuated (0.55×) resonant coupling: strictly less than the
            // aggressor's own droop coefficient, but a sizeable bite.
            assert!(full > 10.0 && full < 50.0, "{bin:?}: {full}");
            // Monotone in resonant energy, additive across aggressors.
            assert!(chip.cross_tenant_droop_mv(&[&half]) < full);
            let both = chip.cross_tenant_droop_mv(&[&virus, &half]);
            assert!((both - full - chip.cross_tenant_droop_mv(&[&half])).abs() < 1e-9);
            // Steady draw without resonance couples nothing.
            assert_eq!(chip.cross_tenant_droop_mv(&[&benign]), 0.0);
            assert_eq!(chip.cross_tenant_droop_mv(&[]), 0.0);
        }
        // A stronger droop coefficient (TFF) couples a stronger attack.
        let ttt = ChipProfile::corner(SigmaBin::Ttt).cross_tenant_droop_mv(&[&virus]);
        let tff = ChipProfile::corner(SigmaBin::Tff).cross_tenant_droop_mv(&[&virus]);
        assert!(tff > ttt);
    }

    /// A SPEC-like profile whose droop score equals `score` exactly
    /// (swing 0.5, alignment 0 ⇒ swing term = 0.04).
    fn spec_like(score: f64) -> WorkloadProfile {
        WorkloadProfile::builder("spec")
            .activity(((score - 0.04) / 0.75).clamp(0.0, 1.0))
            .swing(0.5)
            .resonance_alignment(0.0)
            .build()
    }

    /// The GA-evolved virus shape: a full-swing resonant square wave.
    fn virus_like() -> WorkloadProfile {
        WorkloadProfile::builder("virus")
            .activity(0.5)
            .swing(1.0)
            .resonance_alignment(1.0)
            .build()
    }

    #[test]
    fn ttt_spec_range_matches_fig4() {
        let ttt = ChipProfile::corner(SigmaBin::Ttt);
        let core = ttt.most_robust_core();
        let low = ttt.vmin(core, &spec_like(0.2), Megahertz::XGENE2_NOMINAL);
        let high = ttt.vmin(core, &spec_like(0.7), Megahertz::XGENE2_NOMINAL);
        assert!((855..=865).contains(&low.as_u32()), "low {low}");
        assert!((880..=890).contains(&high.as_u32()), "high {high}");
    }

    #[test]
    fn all_corner_spec_ranges_match_fig4() {
        let expect = [
            (SigmaBin::Ttt, 860, 885),
            (SigmaBin::Tff, 870, 885),
            (SigmaBin::Tss, 870, 900),
        ];
        for (bin, lo, hi) in expect {
            let chip = ChipProfile::corner(bin);
            let core = chip.most_robust_core();
            let low = chip.vmin(core, &spec_like(0.2), Megahertz::XGENE2_NOMINAL);
            let high = chip.vmin(core, &spec_like(0.7), Megahertz::XGENE2_NOMINAL);
            assert!(
                (i64::from(low.as_u32()) - lo).abs() <= 3,
                "{bin} low {low} vs {lo}"
            );
            assert!(
                (i64::from(high.as_u32()) - hi).abs() <= 3,
                "{bin} high {high} vs {hi}"
            );
        }
    }

    #[test]
    fn virus_vmin_matches_fig7_margins() {
        // TTT 60 mV margin, TFF 20 mV, TSS ~0 (crashes 10 mV below nominal).
        let virus = virus_like();
        let expect = [
            (SigmaBin::Ttt, 60),
            (SigmaBin::Tff, 20),
            (SigmaBin::Tss, 10),
        ];
        for (bin, margin) in expect {
            let chip = ChipProfile::corner(bin);
            let v = chip.vmin(chip.most_robust_core(), &virus, Megahertz::XGENE2_NOMINAL);
            let got = 980 - i64::from(v.as_u32());
            assert!(
                (got - margin).abs() <= 8,
                "{bin}: virus Vmin {v}, margin {got} vs paper {margin}"
            );
        }
    }

    #[test]
    fn virus_exceeds_spec_on_every_corner() {
        for bin in SigmaBin::ALL {
            let chip = ChipProfile::corner(bin);
            let core = chip.most_robust_core();
            let virus = chip.vmin(core, &virus_like(), Megahertz::XGENE2_NOMINAL);
            let spec = chip.vmin(core, &spec_like(0.7), Megahertz::XGENE2_NOMINAL);
            assert!(virus > spec, "{bin}: virus {virus} vs spec {spec}");
        }
    }

    #[test]
    fn eight_core_mix_needs_915mv_on_ttt() {
        // Fig. 5's first undervolted point: the 8-benchmark mix is safe at
        // 915 mV with every PMD at nominal frequency.
        let ttt = ChipProfile::corner(SigmaBin::Ttt);
        let worst_bench = spec_like(0.7);
        let rail = ttt.vmin_with_active_cores(
            ttt.weakest_core(),
            &worst_bench,
            Megahertz::XGENE2_NOMINAL,
            8,
        );
        assert!(
            (910..=920).contains(&rail.as_u32()),
            "rail Vmin for 8-core mix: {rail}"
        );
    }

    #[test]
    fn rail_vmin_takes_worst_assignment() {
        let ttt = ChipProfile::corner(SigmaBin::Ttt);
        let light = spec_like(0.2);
        let heavy = spec_like(0.7);
        let f = Megahertz::XGENE2_NOMINAL;
        let assignments = [(CoreId::new(0), &heavy, f), (CoreId::new(6), &light, f)];
        let rail = ttt.rail_vmin(&assignments).unwrap();
        let solo_heavy = ttt.vmin_with_active_cores(CoreId::new(0), &heavy, f, 2);
        assert_eq!(rail, solo_heavy);
        assert!(ttt.rail_vmin(&[]).is_none());
    }

    #[test]
    fn halved_frequency_lowers_vmin_substantially() {
        let ttt = ChipProfile::corner(SigmaBin::Ttt);
        let w = spec_like(0.6);
        let core = ttt.weakest_core();
        let full = ttt.vmin(core, &w, Megahertz::XGENE2_NOMINAL);
        let half = ttt.vmin(core, &w, Megahertz::XGENE2_HALF);
        let drop = full.as_u32() - half.as_u32();
        assert!((50..=90).contains(&drop), "Vmin drop at 1.2 GHz: {drop} mV");
    }

    #[test]
    fn weakest_cores_sit_in_pmd0() {
        let ttt = ChipProfile::corner(SigmaBin::Ttt);
        // Fig. 5 halves PMDs 0 and 1 first — they host the weakest cores.
        assert_eq!(ttt.weakest_core().pmd().index(), 0);
        assert!(ttt.core_offset_mv(CoreId::new(0)) > ttt.core_offset_mv(CoreId::new(6)));
    }

    #[test]
    fn cache_virus_raises_vmin_above_idle() {
        let ttt = ChipProfile::corner(SigmaBin::Ttt);
        let core = ttt.most_robust_core();
        let l1 = WorkloadProfile::builder("l1-virus")
            .activity(0.35)
            .swing(0.3)
            .target(StressTarget::Cache(CacheLevel::L1D))
            .build();
        let idle = ttt.vmin(core, &WorkloadProfile::idle(), Megahertz::XGENE2_NOMINAL);
        let l1_vmin = ttt.vmin(core, &l1, Megahertz::XGENE2_NOMINAL);
        assert!(l1_vmin >= idle, "L1 virus {l1_vmin} vs idle {idle}");
    }

    #[test]
    fn fmax_ordering_follows_the_corners() {
        // TFF (fast silicon) overclocks the furthest at nominal voltage;
        // TSS the least — the corner-selection rationale of §III.A.
        let w = spec_like(0.7);
        let fmax = |bin| {
            let chip = ChipProfile::corner(bin);
            chip.fmax(chip.most_robust_core(), &w, Millivolts::XGENE2_NOMINAL)
        };
        let tff = fmax(SigmaBin::Tff);
        let ttt = fmax(SigmaBin::Ttt);
        let tss = fmax(SigmaBin::Tss);
        assert!(tff > ttt, "TFF {tff} vs TTT {ttt}");
        assert!(ttt > tss, "TTT {ttt} vs TSS {tss}");
        assert!(tff.as_u32() > 2400 && tff.as_u32() < 3000, "TFF {tff}");
    }

    #[test]
    fn fmax_at_vmin_is_nominal_frequency() {
        let ttt = ChipProfile::corner(SigmaBin::Ttt);
        let core = ttt.most_robust_core();
        let w = spec_like(0.5);
        let vmin = ttt.vmin(core, &w, Megahertz::XGENE2_NOMINAL);
        let fmax = ttt.fmax(core, &w, vmin);
        assert!(
            (i64::from(fmax.as_u32()) - 2400).abs() <= 10,
            "fmax at Vmin: {fmax}"
        );
    }

    #[test]
    fn fmax_monotone_in_voltage() {
        let ttt = ChipProfile::corner(SigmaBin::Ttt);
        let core = ttt.most_robust_core();
        let w = spec_like(0.5);
        let lo = ttt.fmax(core, &w, Millivolts::new(900));
        let hi = ttt.fmax(core, &w, Millivolts::new(980));
        assert!(hi > lo);
    }

    #[test]
    fn sampled_chips_are_deterministic_in_the_rng() {
        use rand::SeedableRng;
        let mut a = StdRng::seed_from_u64(1234);
        let mut b = StdRng::seed_from_u64(1234);
        assert_eq!(
            ChipProfile::sampled(SigmaBin::Tff, &mut a),
            ChipProfile::sampled(SigmaBin::Tff, &mut b)
        );
    }

    #[test]
    fn sampled_chips_vary_but_stay_near_their_corner() {
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(7);
        let centroid = ChipProfile::corner(SigmaBin::Ttt);
        let mut distinct = 0;
        for _ in 0..32 {
            let chip = ChipProfile::sampled(SigmaBin::Ttt, &mut rng);
            assert_eq!(chip.bin(), SigmaBin::Ttt);
            let d = i64::from(chip.intrinsic_vmin().as_u32())
                - i64::from(centroid.intrinsic_vmin().as_u32());
            assert!(d.abs() <= 9, "intrinsic drifted {d} mV");
            let w = chip.vmin(
                chip.weakest_core(),
                &spec_like(0.7),
                Megahertz::XGENE2_NOMINAL,
            );
            assert!(
                (860..=930).contains(&w.as_u32()),
                "sampled worst-core Vmin {w}"
            );
            if chip != centroid {
                distinct += 1;
            }
        }
        assert!(distinct >= 31, "sampling must actually perturb the chip");
    }

    #[test]
    fn guardband_is_positive_for_real_workloads() {
        for bin in SigmaBin::ALL {
            let chip = ChipProfile::corner(bin);
            let gb = chip.guardband_mv(
                chip.weakest_core(),
                &spec_like(0.7),
                Megahertz::XGENE2_NOMINAL,
            );
            assert!(gb > 0, "{bin} guardband {gb}");
        }
    }
}
