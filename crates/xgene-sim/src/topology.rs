//! X-Gene2 Server-on-Chip topology (paper Fig. 1).
//!
//! Four processor modules (PMDs), each with two 64-bit ARMv8 cores at
//! 2.4 GHz; per-core 32 KiB L1I and L1D; a 256 KiB L2 shared by the two
//! cores of a PMD; an 8 MiB L3 shared across the chip through the
//! cache-coherent Central Switch (CSW); two memory-controller bridges
//! (MCBs), each fanning out to two DDR3 MCUs.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of PMDs (processor modules).
pub const PMD_COUNT: usize = 4;
/// Cores per PMD.
pub const CORES_PER_PMD: usize = 2;
/// Total application cores.
pub const CORE_COUNT: usize = PMD_COUNT * CORES_PER_PMD;
/// Memory-controller bridges.
pub const MCB_COUNT: usize = 2;
/// DDR3 memory-control units (channels).
pub const MCU_COUNT: usize = 4;

/// One of the eight ARMv8 cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CoreId(u8);

impl CoreId {
    /// Creates a core id.
    ///
    /// # Panics
    ///
    /// Panics if `core >= 8`.
    pub fn new(core: u8) -> Self {
        assert!((core as usize) < CORE_COUNT, "core must be < {CORE_COUNT}");
        CoreId(core)
    }

    /// Flat index `0..8`.
    pub fn index(self) -> usize {
        usize::from(self.0)
    }

    /// The PMD hosting this core.
    pub fn pmd(self) -> PmdId {
        PmdId(self.0 / CORES_PER_PMD as u8)
    }

    /// All cores in index order.
    pub fn all() -> impl Iterator<Item = CoreId> {
        (0..CORE_COUNT as u8).map(CoreId)
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// One of the four processor modules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PmdId(u8);

impl PmdId {
    /// Creates a PMD id.
    ///
    /// # Panics
    ///
    /// Panics if `pmd >= 4`.
    pub fn new(pmd: u8) -> Self {
        assert!((pmd as usize) < PMD_COUNT, "pmd must be < {PMD_COUNT}");
        PmdId(pmd)
    }

    /// Flat index `0..4`.
    pub fn index(self) -> usize {
        usize::from(self.0)
    }

    /// The two cores of this PMD.
    pub fn cores(self) -> [CoreId; CORES_PER_PMD] {
        let base = self.0 * CORES_PER_PMD as u8;
        [CoreId(base), CoreId(base + 1)]
    }

    /// All PMDs in index order.
    pub fn all() -> impl Iterator<Item = PmdId> {
        (0..PMD_COUNT as u8).map(PmdId)
    }
}

impl fmt::Display for PmdId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PMD{}", self.0)
    }
}

/// A level of the cache hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CacheLevel {
    /// Per-core 32 KiB instruction cache.
    L1I,
    /// Per-core 32 KiB data cache.
    L1D,
    /// Per-PMD 256 KiB unified cache.
    L2,
    /// Chip-wide 8 MiB cache behind the central switch.
    L3,
}

impl CacheLevel {
    /// All levels, innermost first.
    pub const ALL: [CacheLevel; 4] = [
        CacheLevel::L1I,
        CacheLevel::L1D,
        CacheLevel::L2,
        CacheLevel::L3,
    ];

    /// Capacity in bytes.
    pub fn capacity(self) -> usize {
        match self {
            CacheLevel::L1I | CacheLevel::L1D => 32 * 1024,
            CacheLevel::L2 => 256 * 1024,
            CacheLevel::L3 => 8 * 1024 * 1024,
        }
    }

    /// Associativity (ways).
    pub fn ways(self) -> usize {
        match self {
            CacheLevel::L1I | CacheLevel::L1D => 8,
            CacheLevel::L2 => 32,
            CacheLevel::L3 => 32,
        }
    }

    /// Line size in bytes (64 B across the hierarchy).
    pub fn line_bytes(self) -> usize {
        64
    }

    /// Access latency in core cycles at nominal frequency.
    pub fn latency_cycles(self) -> u32 {
        match self {
            CacheLevel::L1I | CacheLevel::L1D => 3,
            CacheLevel::L2 => 12,
            CacheLevel::L3 => 35,
        }
    }
}

impl fmt::Display for CacheLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CacheLevel::L1I => "L1I",
            CacheLevel::L1D => "L1D",
            CacheLevel::L2 => "L2",
            CacheLevel::L3 => "L3",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_to_pmd_mapping() {
        assert_eq!(CoreId::new(0).pmd(), PmdId::new(0));
        assert_eq!(CoreId::new(1).pmd(), PmdId::new(0));
        assert_eq!(CoreId::new(7).pmd(), PmdId::new(3));
        assert_eq!(CoreId::all().count(), 8);
    }

    #[test]
    fn pmd_cores_roundtrip() {
        for pmd in PmdId::all() {
            for core in pmd.cores() {
                assert_eq!(core.pmd(), pmd);
            }
        }
    }

    #[test]
    fn cache_capacities_match_paper() {
        assert_eq!(CacheLevel::L1D.capacity(), 32 * 1024);
        assert_eq!(CacheLevel::L2.capacity(), 256 * 1024);
        assert_eq!(CacheLevel::L3.capacity(), 8 * 1024 * 1024);
    }

    #[test]
    fn latency_grows_outward() {
        assert!(CacheLevel::L1D.latency_cycles() < CacheLevel::L2.latency_cycles());
        assert!(CacheLevel::L2.latency_cycles() < CacheLevel::L3.latency_cycles());
    }

    #[test]
    #[should_panic(expected = "core must be <")]
    fn rejects_core_8() {
        let _ = CoreId::new(8);
    }
}
