//! Seeded chaos engineering for the fleet orchestration layer.
//!
//! The DSN'18 campaigns run for days per board; at the fleet scale this
//! repository targets, coordinator crashes, worker deaths and torn
//! checkpoint writes are routine, not exceptional. This crate *proves*
//! the durable orchestration layer (`fleet::journal`,
//! `fleet::run_fleet_durable`) survives them:
//!
//! * [`plan`] — [`ChaosPlan`], the orchestration-layer analogue of
//!   `xgene_sim::FaultPlan`: a seeded, replayable schedule of
//!   coordinator kills, mid-job worker deaths, torn/bit-flipped/deleted
//!   checkpoints, torn journal tails and duplicated queue deliveries,
//!   grouped into per-incarnation rounds;
//! * [`harness`] — [`run_chaos`] executes a plan round by round,
//!   damaging the journal store between incarnations and restarting the
//!   coordinator after every interrupt, until a (guaranteed) clean
//!   completion; every injection lands in the `chaos_*` metrics family
//!   and the disruption history becomes observatory postmortems;
//! * [`invariant`] — the verdict: zero lost boards, zero double-counted
//!   merges, and a merged characterization **byte-identical** to the
//!   uninterrupted baseline.
//!
//! # Examples
//!
//! ```
//! use chaos::{run_chaos, ChaosConfig, ChaosPlan};
//!
//! let plan = ChaosPlan::sampled(7, 3);
//! let report = run_chaos(&plan, &ChaosConfig { boards: 3, ..ChaosConfig::default() });
//! assert!(report.survived());
//! println!("{}", report.render());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod harness;
pub mod invariant;
pub mod plan;

pub use harness::{run_chaos, run_chaos_against, ChaosConfig, ChaosReport};
pub use invariant::{check, InvariantReport};
pub use plan::{ChaosFault, ChaosPlan, ChaosRound, CorruptionKind};
