//! Seeded fault plans for the orchestration layer.
//!
//! [`ChaosPlan`] is the orchestration-layer analogue of
//! `xgene_sim::FaultPlan`: a deterministic schedule of injected faults,
//! drawn once from a seed so every chaos campaign is replayable. A plan
//! is a sequence of [`ChaosRound`]s, one per coordinator *incarnation*:
//! the harness applies the round's storage faults to the journal before
//! launching the incarnation, compiles its process faults down to a
//! `fleet::Disruption`, and restarts on the next round when the
//! incarnation is interrupted. Rounds past the plan are clean, and a
//! clean incarnation always completes — which is what bounds every
//! chaos campaign's length.

use fleet::Disruption;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// How a committed checkpoint gets damaged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CorruptionKind {
    /// Drop the tail: the classic torn write.
    Truncate,
    /// Flip one payload bit: bit rot under the CRC.
    BitFlip,
    /// Delete the file outright.
    Drop,
}

/// One injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChaosFault {
    /// Kill the coordinator after it processes this many completions.
    CoordinatorKill {
        /// Unique completions before the kill fires.
        after_completions: u64,
    },
    /// A worker dies holding its next job.
    WorkerDeath {
        /// Pool index of the dying worker.
        worker: usize,
        /// Jobs the worker completes before dying.
        after_jobs: u64,
    },
    /// Damage the committed store checkpoint before the incarnation
    /// starts (models corruption while the coordinator was down).
    CorruptCheckpoint {
        /// The damage applied.
        kind: CorruptionKind,
    },
    /// Tear the journal tail: drop its last bytes, as if the final
    /// append died mid-write.
    TornJournalTail {
        /// Bytes dropped from the end of the journal.
        drop_bytes: usize,
    },
    /// Deliver this many completions twice (at-least-once queue
    /// semantics).
    DuplicateDelivery {
        /// Completions delivered twice.
        count: u64,
    },
}

impl ChaosFault {
    /// Stable label for metrics and incident events.
    pub fn label(&self) -> &'static str {
        match self {
            ChaosFault::CoordinatorKill { .. } => "coordinator_kill",
            ChaosFault::WorkerDeath { .. } => "worker_death",
            ChaosFault::CorruptCheckpoint { .. } => "corrupt_checkpoint",
            ChaosFault::TornJournalTail { .. } => "torn_journal_tail",
            ChaosFault::DuplicateDelivery { .. } => "duplicate_delivery",
        }
    }
}

/// The faults injected into one coordinator incarnation.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaosRound {
    /// Faults applied this incarnation, in injection order.
    pub faults: Vec<ChaosFault>,
}

impl ChaosRound {
    /// Compiles the round's process faults into the orchestrator's
    /// chaos-agnostic [`Disruption`] schedule. Storage faults
    /// ([`ChaosFault::CorruptCheckpoint`], [`ChaosFault::TornJournalTail`])
    /// are the harness's job — they damage the journal store *before*
    /// the incarnation launches.
    pub fn disruption(&self) -> Disruption {
        let mut disruption = Disruption::none();
        for fault in &self.faults {
            match fault {
                ChaosFault::CoordinatorKill { after_completions } => {
                    disruption.kill_coordinator_after = Some(*after_completions);
                }
                ChaosFault::WorkerDeath { worker, after_jobs } => {
                    disruption.worker_deaths.push((*worker, *after_jobs));
                }
                ChaosFault::DuplicateDelivery { count } => {
                    disruption.duplicate_deliveries += count;
                }
                ChaosFault::CorruptCheckpoint { .. } | ChaosFault::TornJournalTail { .. } => {}
            }
        }
        disruption
    }
}

/// A seeded, replayable schedule of chaos rounds.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaosPlan {
    /// The seed the plan was drawn from.
    pub seed: u64,
    /// One round per coordinator incarnation, in order.
    pub rounds: Vec<ChaosRound>,
}

impl ChaosPlan {
    /// No faults at all: the durable path under clean conditions.
    pub fn quiet(seed: u64) -> Self {
        ChaosPlan {
            seed,
            rounds: Vec::new(),
        }
    }

    /// Draws a plan from `seed`: one to three disrupted incarnations,
    /// each injecting one or two faults across the whole taxonomy. The
    /// same seed always yields the same plan.
    pub fn sampled(seed: u64, workers: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC4A0_5CAB_0057_u64);
        let rounds = (0..rng.gen_range(1..4usize))
            .map(|_| {
                let faults = (0..rng.gen_range(1..3usize))
                    .map(|_| Self::sample_fault(&mut rng, workers))
                    .collect();
                ChaosRound { faults }
            })
            .collect();
        ChaosPlan { seed, rounds }
    }

    fn sample_fault(rng: &mut StdRng, workers: usize) -> ChaosFault {
        match rng.gen_range(0..5u32) {
            0 => ChaosFault::CoordinatorKill {
                after_completions: rng.gen_range(0..6u64),
            },
            1 => ChaosFault::WorkerDeath {
                worker: rng.gen_range(0..workers.max(1)),
                after_jobs: rng.gen_range(0..3u64),
            },
            2 => ChaosFault::CorruptCheckpoint {
                kind: match rng.gen_range(0..3u32) {
                    0 => CorruptionKind::Truncate,
                    1 => CorruptionKind::BitFlip,
                    _ => CorruptionKind::Drop,
                },
            },
            3 => ChaosFault::TornJournalTail {
                drop_bytes: rng.gen_range(1..96usize),
            },
            _ => ChaosFault::DuplicateDelivery {
                count: rng.gen_range(1..4u64),
            },
        }
    }

    /// Total faults across all rounds.
    pub fn injections(&self) -> usize {
        self.rounds.iter().map(|r| r.faults.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic_in_the_seed() {
        assert_eq!(ChaosPlan::sampled(42, 4), ChaosPlan::sampled(42, 4));
        assert_ne!(ChaosPlan::sampled(42, 4), ChaosPlan::sampled(43, 4));
    }

    #[test]
    fn sampled_plans_stay_bounded() {
        for seed in 0..200 {
            let plan = ChaosPlan::sampled(seed, 3);
            assert!((1..=3).contains(&plan.rounds.len()));
            for round in &plan.rounds {
                assert!((1..=2).contains(&round.faults.len()));
                for fault in &round.faults {
                    if let ChaosFault::WorkerDeath { worker, .. } = fault {
                        assert!(*worker < 3);
                    }
                }
            }
        }
    }

    #[test]
    fn disruption_compilation_collects_process_faults_only() {
        let round = ChaosRound {
            faults: vec![
                ChaosFault::CoordinatorKill {
                    after_completions: 2,
                },
                ChaosFault::WorkerDeath {
                    worker: 1,
                    after_jobs: 0,
                },
                ChaosFault::CorruptCheckpoint {
                    kind: CorruptionKind::BitFlip,
                },
                ChaosFault::DuplicateDelivery { count: 3 },
            ],
        };
        let disruption = round.disruption();
        assert_eq!(disruption.kill_coordinator_after, Some(2));
        assert_eq!(disruption.worker_deaths, vec![(1, 0)]);
        assert_eq!(disruption.duplicate_deliveries, 3);
    }

    #[test]
    fn every_fault_kind_appears_across_seeds() {
        let mut labels = std::collections::BTreeSet::new();
        for seed in 0..100 {
            for round in &ChaosPlan::sampled(seed, 4).rounds {
                for fault in &round.faults {
                    labels.insert(fault.label());
                }
            }
        }
        assert_eq!(labels.len(), 5, "all five kinds drawn: {labels:?}");
    }
}
