//! The chaos campaign loop: inject, crash, recover, verify.
//!
//! [`run_chaos`] drives one seeded [`ChaosPlan`] against a durable
//! fleet campaign. Each plan round is one coordinator *incarnation*:
//! the harness first damages the journal store as the round demands
//! (torn tails, bit-flipped or deleted checkpoints), then launches
//! `fleet::run_fleet_durable` with the round's process faults compiled
//! to a `Disruption`. An interrupted incarnation falls through to the
//! next round; rounds past the plan are clean, and a clean incarnation
//! always completes, so every chaos campaign terminates. The recovered
//! run is then judged against an uninterrupted baseline by
//! [`crate::invariant::check`], every injection is counted into the
//! `chaos_*` labeled metrics family, and the whole disruption history
//! is fed to the observatory as `chaos_*` incident events with
//! `fleet_recovered` as their resolution.

use crate::invariant::{self, InvariantReport};
use crate::plan::{ChaosFault, ChaosPlan, CorruptionKind};
use fleet::{
    run_fleet, run_fleet_durable, DurableStats, FleetCampaign, FleetConfig, FleetInterrupted,
    FleetJournal, FleetReport, FleetSpec, JournalStore, MemStore,
};
use observatory::{Observatory, ObservatoryReport, StreamBuilder};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use telemetry::{FieldValue, Level};

/// Board the coordinator's own chaos events are keyed under in the
/// observatory timeline (a synthetic "board 0 of the control plane";
/// fleet boards are per-outcome streams with their own epochs).
const COORDINATOR_BOARD: u32 = 0;

/// Shape of the fleet a chaos campaign runs against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaosConfig {
    /// Fleet size.
    pub boards: u32,
    /// Fleet master seed.
    pub fleet_seed: u64,
    /// Worker pool size per incarnation.
    pub workers: usize,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            boards: 5,
            fleet_seed: 2018,
            workers: 3,
        }
    }
}

/// Everything one chaos campaign produced.
#[derive(Debug)]
pub struct ChaosReport {
    /// The plan that was executed.
    pub plan: ChaosPlan,
    /// Coordinator incarnations it took to finish (1 = never crashed).
    pub incarnations: u64,
    /// Injections actually applied, by fault label.
    pub injections: BTreeMap<String, u64>,
    /// Interrupts observed, in order.
    pub interrupts: Vec<FleetInterrupted>,
    /// Durable-run bookkeeping from the final (successful) incarnation.
    pub final_stats: DurableStats,
    /// Sum of completions recovered from the journal across restarts.
    pub total_resumed: u64,
    /// Checkpoint rejections across all incarnations.
    pub checkpoint_rejections: u64,
    /// Incarnations that finished with a shrunken (but alive) pool.
    pub degraded_pool_incarnations: u64,
    /// The invariant verdict against the uninterrupted baseline.
    pub invariants: InvariantReport,
    /// The recovered fleet report.
    pub recovered: FleetReport,
    /// Postmortems of the whole disruption history.
    pub observatory: ObservatoryReport,
}

impl ChaosReport {
    /// The headline verdict: the campaign survived its chaos schedule
    /// with every invariant intact.
    pub fn survived(&self) -> bool {
        self.invariants.holds()
    }

    /// Human summary of the campaign.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== chaos campaign seed {} : {} round{}, {} incarnation{}, {} ==",
            self.plan.seed,
            self.plan.rounds.len(),
            if self.plan.rounds.len() == 1 { "" } else { "s" },
            self.incarnations,
            if self.incarnations == 1 { "" } else { "s" },
            if self.survived() {
                "SURVIVED"
            } else {
                "VIOLATED"
            },
        );
        for (label, count) in &self.injections {
            let _ = writeln!(out, "  injected {label:<19} x{count}");
        }
        for interrupt in &self.interrupts {
            let _ = writeln!(out, "  interrupt: {interrupt}");
        }
        let _ = writeln!(
            out,
            "  resumed {} completions across restarts; {} checkpoint rejection{}; store identical: {}",
            self.total_resumed,
            self.checkpoint_rejections,
            if self.checkpoint_rejections == 1 { "" } else { "s" },
            self.invariants.store_identical,
        );
        out
    }
}

fn count_injection(injections: &mut BTreeMap<String, u64>, label: &str) {
    *injections.entry(label.to_owned()).or_insert(0) += 1;
    let _ = telemetry::with_registry(|reg| {
        reg.counter_add_labeled("chaos_injections_total", &[("kind", label)], 1);
    });
}

/// Runs the plan against a fresh baseline of the same fleet. Most
/// callers want this; the bench fans 64+ plans over one shared baseline
/// via [`run_chaos_against`].
pub fn run_chaos(plan: &ChaosPlan, config: &ChaosConfig) -> ChaosReport {
    let spec = FleetSpec::new(config.boards, config.fleet_seed);
    let campaign = FleetCampaign::quick();
    let fleet_config = FleetConfig::with_workers(config.workers);
    let baseline = run_fleet(&spec, &campaign, &fleet_config);
    run_chaos_against(plan, config, &baseline)
}

/// Runs the plan against a precomputed uninterrupted baseline (which
/// must come from the same `(boards, fleet_seed)` fleet under
/// `FleetCampaign::quick()` and the same worker-pool policy).
pub fn run_chaos_against(
    plan: &ChaosPlan,
    config: &ChaosConfig,
    baseline: &FleetReport,
) -> ChaosReport {
    let spec = FleetSpec::new(config.boards, config.fleet_seed);
    let campaign = FleetCampaign::quick();
    let fleet_config = FleetConfig::with_workers(config.workers);
    let mut journal = FleetJournal::new(MemStore::new());
    let mut obs = Observatory::new();

    let mut injections = BTreeMap::new();
    let mut interrupts = Vec::new();
    let mut incarnations = 0u64;
    let mut total_resumed = 0u64;
    let mut checkpoint_rejections = 0u64;
    let mut degraded_pool_incarnations = 0u64;
    let mut outcome = None;

    // One extra clean round past the plan: a clean incarnation always
    // completes, so this loop always ends with `outcome` set.
    let clean = crate::plan::ChaosRound::default();
    let rounds = plan.rounds.iter().chain(std::iter::once(&clean));
    for round in rounds {
        let epoch = incarnations;
        incarnations += 1;
        let mut stream = StreamBuilder::coordinator(epoch, COORDINATOR_BOARD);

        // Storage faults land while the coordinator is "down", before
        // this incarnation opens the journal.
        for fault in &round.faults {
            match fault {
                ChaosFault::CorruptCheckpoint { kind } => {
                    let store = journal.store_mut();
                    let applied = match kind {
                        CorruptionKind::Truncate => {
                            store.truncate_checkpoint(24);
                            store.checkpoint_bytes().is_some()
                        }
                        CorruptionKind::BitFlip => {
                            // Flip past the seal header so the damage is
                            // a checksum mismatch, not a malformed header.
                            let len = store.checkpoint_bytes().map_or(0, |b| b.len());
                            store.flip_checkpoint_bit(len.saturating_sub(1), 3);
                            len > 0
                        }
                        CorruptionKind::Drop => store.drop_checkpoint(),
                    };
                    if applied {
                        count_injection(&mut injections, fault.label());
                        stream.push(
                            Level::Warn,
                            "chaos_corrupt_checkpoint",
                            vec![("kind".to_owned(), field_str(kind_label(*kind)))],
                        );
                    }
                }
                ChaosFault::TornJournalTail { drop_bytes } => {
                    let store = journal.store_mut();
                    let len = store.journal_len();
                    if len > 0 {
                        store.truncate_journal(len.saturating_sub(*drop_bytes));
                        count_injection(&mut injections, fault.label());
                        stream.push(
                            Level::Warn,
                            "chaos_journal_damage",
                            vec![(
                                "dropped_bytes".to_owned(),
                                FieldValue::U64(*drop_bytes as u64),
                            )],
                        );
                    }
                }
                ChaosFault::CoordinatorKill { after_completions } => {
                    count_injection(&mut injections, fault.label());
                    stream.push(
                        Level::Warn,
                        "chaos_coordinator_killed",
                        vec![(
                            "after_completions".to_owned(),
                            FieldValue::U64(*after_completions),
                        )],
                    );
                }
                ChaosFault::WorkerDeath { worker, after_jobs } => {
                    count_injection(&mut injections, fault.label());
                    stream.push(
                        Level::Warn,
                        "chaos_worker_died",
                        vec![
                            ("worker".to_owned(), FieldValue::U64(*worker as u64)),
                            ("after_jobs".to_owned(), FieldValue::U64(*after_jobs)),
                        ],
                    );
                }
                ChaosFault::DuplicateDelivery { count } => {
                    count_injection(&mut injections, fault.label());
                    stream.push(
                        Level::Warn,
                        "chaos_duplicate_delivery",
                        vec![("count".to_owned(), FieldValue::U64(*count))],
                    );
                }
            }
        }

        let disruption = round.disruption();
        match run_fleet_durable(&spec, &campaign, &fleet_config, &mut journal, &disruption) {
            Ok(run) => {
                total_resumed += run.stats.resumed_completions;
                if run.stats.checkpoint_rejected {
                    checkpoint_rejections += 1;
                    bump_counter("chaos_checkpoint_rejections_total");
                }
                if run.stats.workers_lost > 0 {
                    degraded_pool_incarnations += 1;
                    bump_counter("chaos_degraded_pool_epochs_total");
                }
                if incarnations > 1 {
                    bump_counter("chaos_recoveries_total");
                }
                stream.push(
                    Level::Info,
                    "fleet_recovered",
                    vec![
                        (
                            "resumed".to_owned(),
                            FieldValue::U64(run.stats.resumed_completions),
                        ),
                        (
                            "executed".to_owned(),
                            FieldValue::U64(run.stats.executed_jobs),
                        ),
                    ],
                );
                obs.ingest_stream(stream.finish());
                outcome = Some(run);
                break;
            }
            Err(interrupt) => {
                obs.ingest_stream(stream.finish());
                interrupts.push(interrupt);
            }
        }
    }

    let run = outcome.expect("a clean incarnation always completes");
    let invariants = invariant::check(baseline, &run.report);
    ChaosReport {
        plan: plan.clone(),
        incarnations,
        injections,
        interrupts,
        total_resumed,
        checkpoint_rejections,
        degraded_pool_incarnations,
        final_stats: run.stats,
        invariants,
        recovered: run.report,
        observatory: obs.finish(),
    }
}

fn bump_counter(name: &str) {
    let _ = telemetry::with_registry(|reg| {
        reg.counter_add(name, 1);
    });
}

fn field_str(s: &str) -> FieldValue {
    FieldValue::Str(s.to_owned())
}

fn kind_label(kind: CorruptionKind) -> &'static str {
    match kind {
        CorruptionKind::Truncate => "truncate",
        CorruptionKind::BitFlip => "bit_flip",
        CorruptionKind::Drop => "drop",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_quiet_plan_survives_in_one_incarnation() {
        let config = ChaosConfig {
            boards: 3,
            ..ChaosConfig::default()
        };
        let report = run_chaos(&ChaosPlan::quiet(1), &config);
        assert!(report.survived(), "{:?}", report.invariants);
        assert_eq!(report.incarnations, 1);
        assert!(report.interrupts.is_empty());
    }

    #[test]
    fn a_kill_heavy_plan_recovers_with_identical_output() {
        let config = ChaosConfig {
            boards: 4,
            ..ChaosConfig::default()
        };
        let plan = ChaosPlan {
            seed: 99,
            rounds: vec![
                crate::plan::ChaosRound {
                    faults: vec![ChaosFault::CoordinatorKill {
                        after_completions: 2,
                    }],
                },
                crate::plan::ChaosRound {
                    faults: vec![
                        ChaosFault::TornJournalTail { drop_bytes: 17 },
                        ChaosFault::CorruptCheckpoint {
                            kind: CorruptionKind::BitFlip,
                        },
                    ],
                },
            ],
        };
        let report = run_chaos(&plan, &config);
        assert!(report.survived(), "{:?}", report.invariants);
        assert!(report.incarnations >= 2);
        assert_eq!(report.interrupts.len() as u64, report.incarnations - 1);
        assert!(report.total_resumed > 0, "recovery reused journaled work");
        // The postmortem timeline carries the disruptions and their
        // recovered resolution.
        let chaos_incidents: Vec<_> = report
            .observatory
            .incidents_of(observatory::IncidentKind::ChaosDisruption)
            .collect();
        assert!(!chaos_incidents.is_empty());
        assert!(report.render().contains("SURVIVED"));
    }
}
