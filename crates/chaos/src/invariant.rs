//! The invariants every chaos campaign is judged against.
//!
//! A chaos run is only meaningful next to its uninterrupted baseline:
//! the same fleet spec, campaign and eviction policy run once with no
//! faults. [`check`] compares the recovered run to that baseline on the
//! three properties the durable orchestrator promises — no board falls
//! out of the fleet, no `(board, attempt)` outcome is counted twice,
//! and the merged characterization (the semilattice fixpoint) is
//! **byte-identical**, which subsumes every weaker notion of "the store
//! converged".

use fleet::FleetReport;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Verdict of one baseline-vs-recovered comparison.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InvariantReport {
    /// Boards present in the baseline store but missing from the
    /// recovered one. Must be zero: crashes may delay a board, never
    /// lose it.
    pub lost_boards: u64,
    /// `(board, attempt)` outcomes appearing more than once in the
    /// recovered aggregation multiset. Must be zero: duplicated
    /// deliveries and replayed journal entries are deduplicated before
    /// aggregation.
    pub double_counted_merges: u64,
    /// The recovered `characterization_json()` equals the baseline's
    /// byte for byte.
    pub store_identical: bool,
    /// The recovered observatory report equals the baseline's byte for
    /// byte (incident reconstruction is crash-schedule-independent).
    pub observatory_identical: bool,
}

impl InvariantReport {
    /// All invariants hold.
    pub fn holds(&self) -> bool {
        self.lost_boards == 0
            && self.double_counted_merges == 0
            && self.store_identical
            && self.observatory_identical
    }
}

/// Checks the recovered run against the uninterrupted baseline.
pub fn check(baseline: &FleetReport, recovered: &FleetReport) -> InvariantReport {
    let baseline_boards: BTreeSet<u32> = baseline
        .characterization
        .store
        .records()
        .map(|r| r.board)
        .collect();
    let recovered_boards: BTreeSet<u32> = recovered
        .characterization
        .store
        .records()
        .map(|r| r.board)
        .collect();
    let lost_boards = baseline_boards.difference(&recovered_boards).count() as u64;

    let mut seen = BTreeSet::new();
    let mut double_counted_merges = 0u64;
    for job in &recovered.characterization.jobs {
        if !seen.insert((job.board, job.attempt)) {
            double_counted_merges += 1;
        }
    }

    InvariantReport {
        lost_boards,
        double_counted_merges,
        store_identical: baseline.characterization_json() == recovered.characterization_json(),
        observatory_identical: baseline.observatory_json() == recovered.observatory_json(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fleet::{run_fleet, FleetCampaign, FleetConfig, FleetSpec};

    #[test]
    fn a_run_satisfies_its_own_invariants() {
        let spec = FleetSpec::new(4, 7);
        let campaign = FleetCampaign::quick();
        let report = run_fleet(&spec, &campaign, &FleetConfig::with_workers(2));
        let verdict = check(&report, &report);
        assert!(verdict.holds(), "{verdict:?}");
    }

    #[test]
    fn a_different_fleet_fails_the_identity_checks() {
        let campaign = FleetCampaign::quick();
        let config = FleetConfig::with_workers(2);
        let a = run_fleet(&FleetSpec::new(4, 7), &campaign, &config);
        let b = run_fleet(&FleetSpec::new(3, 7), &campaign, &config);
        let verdict = check(&a, &b);
        assert!(!verdict.holds());
        assert_eq!(verdict.lost_boards, 1, "board 3 is missing from b");
        assert!(!verdict.store_identical);
    }
}
