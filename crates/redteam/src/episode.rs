//! One adversarial episode: an attacker tenant against one board's net.
//!
//! An episode is a pure function of `(board, attacker, scenario)`: the
//! board boots fresh from its fleet spec, the victim runs on the chip's
//! weakest core with the attacker (if any) packed onto the sibling core
//! of the same PMD, and the safety net governs the shared rail for a
//! fixed number of epochs. The report counts ground-truth SDCs, the
//! escapes among them, and when (if ever) the net first detected the
//! attack.

use dram_sim::retention::PopulationSpec;
use fleet::population::BoardSpec;
use guardband_core::governor::{GovernorConfig, OnlineGovernor};
use guardband_core::safety::{SafetyNet, SafetyNetConfig};
use serde::{Deserialize, Serialize};
use telemetry::Level;
use workload_sim::spec;
use workload_sim::tenant::ColocationSchedule;
use xgene_sim::fault::FaultPlan;
use xgene_sim::workload::WorkloadProfile;

/// Domain separator for the episode fault-plan RNG stream, so episode
/// fault draws never alias the board's boot stream (SplitMix-style, the
/// same discipline as the server's attacker stream).
const FAULT_DOMAIN: u64 = 0x5DC;

/// Everything one adversarial episode is a function of (besides the
/// board and the attacker's genome).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackScenario {
    /// Guarded epochs to run.
    pub epochs: u32,
    /// The victim tenant's workload.
    pub victim: WorkloadProfile,
    /// The safety-net arm under attack.
    pub safety: SafetyNetConfig,
    /// Governor the net wraps.
    pub governor: GovernorConfig,
    /// 0-based epoch index the attacker tenant is first scheduled at;
    /// earlier epochs run the victim dedicated. A non-zero onset gives
    /// anomaly detectors a benign baseline to learn before the attack
    /// lands (and gives the attack a sudden, detectable edge).
    #[serde(default)]
    pub onset_epoch: u32,
}

impl AttackScenario {
    /// The pre-hardening ablation: the net exactly as originally
    /// shipped, blind to cross-tenant droop. The victim is the
    /// memory-bound `mcf`, the workload class the paper found most
    /// droop-sensitive to co-runner interference.
    pub fn seed_net(epochs: u32) -> Self {
        AttackScenario {
            epochs,
            victim: spec::by_name("mcf")
                .expect("mcf is part of the Fig. 5 mix")
                .profile(),
            safety: SafetyNetConfig::dsn18(),
            governor: GovernorConfig::conservative(),
            onset_epoch: 0,
        }
    }

    /// The hardened arm: droop estimation, feed-forward compensation,
    /// breaker attribution, adaptive cadence, attacker quarantine.
    pub fn hardened(epochs: u32) -> Self {
        AttackScenario {
            safety: SafetyNetConfig::hardened(),
            ..AttackScenario::seed_net(epochs)
        }
    }

    /// Delays the attacker's first scheduled epoch (0-based index).
    #[must_use]
    pub fn with_onset(mut self, onset_epoch: u32) -> Self {
        self.onset_epoch = onset_epoch;
        self
    }
}

/// What one episode did, from the red team's scorecard.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpisodeReport {
    /// Fleet id of the board attacked.
    pub board: u32,
    /// Epochs run.
    pub epochs: u32,
    /// Ground-truth victim SDCs (visible only to the audit).
    pub victim_true_sdcs: u64,
    /// SDCs that landed before the net's first detection event — the
    /// red team's score.
    pub escaped_sdcs: u64,
    /// Epoch (1-based) of the first detection event, if any.
    pub detection_epoch: Option<u64>,
    /// Whether the net evicted the attacker.
    pub attacker_quarantined: bool,
    /// Breaker trips charged to the board.
    pub breaker_trips: u64,
    /// Sentinel-cadence tightenings the attack provoked.
    pub cadence_tightenings: u64,
    /// DMR sentinel checks run.
    pub sentinel_checks: u64,
    /// Mean commanded victim voltage across the episode, in mV.
    pub mean_commanded_mv: f64,
}

/// Runs one episode of `scenario` on `board`, with `attacker` (if any)
/// co-located on the victim's sibling core.
pub fn run_episode(
    board: &BoardSpec,
    attacker: Option<&WorkloadProfile>,
    scenario: &AttackScenario,
) -> EpisodeReport {
    let mut server = board.boot(PopulationSpec::dsn18());
    let fault_seed = board.boot_seed ^ FAULT_DOMAIN.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    server.install_fault_plan(FaultPlan::quiet(fault_seed).with_sub_vmin_sdc());

    let victim_core = server.chip().weakest_core();
    let mut schedule = match attacker {
        Some(profile) => {
            ColocationSchedule::shared(victim_core, scenario.victim.clone(), profile.clone())
        }
        None => ColocationSchedule::dedicated(victim_core, scenario.victim.clone()),
    };
    let mut governor = OnlineGovernor::new(None, None, scenario.governor);
    let mut net = SafetyNet::new(scenario.safety);

    let mut commanded_sum = 0u64;
    for epoch_idx in 0..scenario.epochs {
        let victim_profile = schedule.victim.profile.clone();
        let assignments = if epoch_idx >= scenario.onset_epoch {
            schedule.co_tenant_assignments()
        } else {
            Vec::new()
        };
        let attack_active = !assignments.is_empty();
        let report = net.run_epoch_colocated(
            &mut server,
            &mut governor,
            victim_core,
            &victim_profile,
            &assignments,
        );
        commanded_sum += u64::from(report.commanded.as_u32());
        // One ground-truth breadcrumb per epoch (1-based, matching the
        // net's own epoch counter) for the observatory: the droop the
        // breaker saw, whether an attacker actually shared the PMD, and
        // whether a quarantine was in force.
        telemetry::event!(
            Level::Debug,
            "attack_epoch",
            epoch = u64::from(epoch_idx) + 1,
            droop_mv = report.cross_droop_estimate_mv,
            attack_active = attack_active,
            quarantined = report.attacker_quarantined,
        );
        // The net's quarantine decision reaches the scheduler: the
        // attacker loses its placement, the victim keeps the PMD.
        if net.attacker_quarantined() && schedule.neighbor.is_some() {
            let evicted = schedule.evict_neighbor();
            debug_assert!(evicted.is_some());
        }
    }

    let stats = net.stats();
    let audit = net.audit();
    if let Some(epoch) = stats.first_detection_epoch {
        telemetry::gauge!("safety_redteam_detection_latency_epochs", epoch as f64);
    }
    telemetry::event!(
        Level::Info,
        "redteam_episode",
        board = board.id,
        escapes = audit.escaped_sdcs,
        true_sdcs = audit.workload_true_sdcs,
        quarantined = net.attacker_quarantined(),
    );

    EpisodeReport {
        board: board.id,
        epochs: scenario.epochs,
        victim_true_sdcs: audit.workload_true_sdcs,
        escaped_sdcs: audit.escaped_sdcs,
        detection_epoch: stats.first_detection_epoch,
        attacker_quarantined: net.attacker_quarantined(),
        breaker_trips: net.breaker_trips(),
        cadence_tightenings: stats.cadence_tightenings,
        sentinel_checks: net.sentinel_stats().checks,
        mean_commanded_mv: if scenario.epochs == 0 {
            0.0
        } else {
            commanded_sum as f64 / f64::from(scenario.epochs)
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fleet::population::FleetSpec;

    fn virus() -> WorkloadProfile {
        WorkloadProfile::builder("test-virus")
            .activity(1.0)
            .swing(1.0)
            .resonance_alignment(0.9)
            .build()
    }

    #[test]
    fn episodes_are_deterministic() {
        let board = FleetSpec::new(4, 2018).board(1);
        let scenario = AttackScenario::seed_net(30);
        let v = virus();
        let a = run_episode(&board, Some(&v), &scenario);
        let b = run_episode(&board, Some(&v), &scenario);
        assert_eq!(a, b);
    }

    #[test]
    fn a_dedicated_pmd_suffers_no_attack() {
        let board = FleetSpec::new(4, 2018).board(1);
        let scenario = AttackScenario::seed_net(30);
        let r = run_episode(&board, None, &scenario);
        assert!(!r.attacker_quarantined);
        assert_eq!(r.cadence_tightenings, 0);
    }

    #[test]
    fn a_delayed_onset_keeps_the_leadup_benign() {
        let board = FleetSpec::new(4, 2018).board(1);
        let scenario = AttackScenario::hardened(30).with_onset(8);
        let (r, stream) = observatory::observe(0, board.id, telemetry::Level::Debug, || {
            run_episode(&board, Some(&virus()), &scenario)
        });
        assert!(r.attacker_quarantined, "the attack still lands after onset");
        let actives: Vec<bool> = stream
            .events
            .iter()
            .filter(|e| e.name == "attack_epoch")
            .map(|e| {
                e.fields
                    .iter()
                    .find_map(|(k, v)| match v {
                        telemetry::event::FieldValue::Bool(b) if k == "attack_active" => Some(*b),
                        _ => None,
                    })
                    .expect("attack_active field present")
            })
            .collect();
        assert_eq!(actives.len(), 30, "one breadcrumb per epoch");
        assert!(
            actives[..8].iter().all(|a| !a),
            "no attack before the onset epoch"
        );
        assert!(actives[8], "the attacker is scheduled at the onset epoch");
    }

    #[test]
    fn the_hardened_arm_quarantines_a_crafted_virus() {
        let board = FleetSpec::new(4, 2018).board(1);
        let scenario = AttackScenario::hardened(30);
        let r = run_episode(&board, Some(&virus()), &scenario);
        assert!(r.attacker_quarantined);
        assert_eq!(r.escaped_sdcs, 0);
        let latency = r.detection_epoch.expect("quarantine is a detection");
        assert!(
            latency <= u64::from(scenario.safety.sentinel_every_epochs),
            "detected at epoch {latency}"
        );
    }
}
