//! Co-evolution campaign: the virus GA versus a fleet of guarded boards.
//!
//! Each generation's genomes are scored against every board of a seeded
//! fleet; the fitness of a genome is the total number of SDCs its virus
//! slips past the safety net before detection, plus a small
//! resonant-energy shaping term that keeps selection pressure alive even
//! while the net holds (and deterministically tie-breaks genomes with
//! equal escape counts toward stronger dI/dt coupling).
//!
//! The `(genome × board)` episode grid of a generation is embarrassingly
//! parallel. It runs on a pulled-index worker pool whose results are
//! re-sorted by grid position before any aggregation, so arrival order
//! never escapes: the campaign chronicle is byte-identical for any
//! worker count.

use crate::episode::{run_episode, AttackScenario, EpisodeReport};
use fleet::population::{BoardSpec, FleetSpec};
use observatory::{
    BoardStream, DetectorConfig, Direction, Observatory, ObservatoryReport, SloSpec,
};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;
use stress_gen::ga::{evolve_batched, genome_profile, GaConfig};
use stress_gen::isa::VirusGenome;
use telemetry::Level;
use xgene_sim::pdn::PdnModel;
use xgene_sim::workload::WorkloadProfile;

/// Weight of the resonant-energy shaping term in the fitness. Small
/// enough that a single real escape always dominates any amount of
/// shaping (resonant energy is at most 1).
const RESONANCE_SHAPING: f64 = 0.01;

/// A co-evolution campaign specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// The fleet of boards every genome is scored against.
    pub fleet: FleetSpec,
    /// GA hyper-parameters (the attacker's evolution budget).
    pub ga: GaConfig,
    /// The net arm under attack and the episode shape.
    pub scenario: AttackScenario,
    /// Worker threads for the episode grid. Never affects results.
    pub workers: usize,
}

impl CampaignConfig {
    /// A paper-scaled campaign against the pre-hardening seed net.
    pub fn dsn18(boards: u32, seed: u64) -> Self {
        CampaignConfig {
            fleet: FleetSpec::new(boards, seed),
            ga: GaConfig {
                population: 12,
                generations: 8,
                genome_slots: 48,
                mutation_rate: 0.08,
                tournament: 3,
                elites: 2,
                seed,
            },
            scenario: AttackScenario::seed_net(40),
            workers: 1,
        }
    }
}

/// One generation of the co-evolution, as chronicled.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GenerationRecord {
    /// Generation index.
    pub generation: u32,
    /// Best fitness (escapes + shaping) this generation.
    pub best_fitness: f64,
    /// Fleet-wide escapes of the generation's best genome.
    pub best_escapes: u64,
    /// Escapes summed over the whole `(genome × board)` grid.
    pub total_escapes: u64,
}

/// The full campaign result. Serializing this is the chronicle used for
/// worker-count byte-identity checks — it deliberately carries no
/// execution detail (worker count, wall time), only what the
/// co-evolution computed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Fleet size attacked.
    pub boards: u32,
    /// Campaign master seed.
    pub seed: u64,
    /// Per-generation trajectory.
    pub generations: Vec<GenerationRecord>,
    /// The fittest virus genome found.
    pub champion: VirusGenome,
    /// The champion's fitness (escapes + shaping).
    pub champion_fitness: f64,
}

impl CampaignReport {
    /// The chronicle as canonical JSON.
    pub fn chronicle_json(&self) -> String {
        serde::json::to_string(self)
    }

    /// The champion genome's observable workload profile on the X-Gene2
    /// PDN — what the attacker tenant actually schedules.
    pub fn champion_profile(&self) -> WorkloadProfile {
        genome_profile("redteam-champion", &self.champion, &PdnModel::xgene2())
    }

    /// Total escapes across the whole campaign grid.
    pub fn total_escapes(&self) -> u64 {
        self.generations.iter().map(|g| g.total_escapes).sum()
    }
}

/// Runs the co-evolution campaign.
pub fn run_campaign(config: &CampaignConfig) -> CampaignReport {
    let pdn = PdnModel::xgene2();
    let boards: Vec<BoardSpec> = config.fleet.all_boards().collect();
    let mut generations: Vec<GenerationRecord> = Vec::new();
    let mut generation = 0u32;

    let result = evolve_batched(&config.ga, |genomes| {
        let profiles: Vec<WorkloadProfile> = genomes
            .iter()
            .map(|g| genome_profile("redteam-virus", g, &pdn))
            .collect();
        let escapes = fleet_escapes(&boards, &profiles, &config.scenario, config.workers);
        let scores: Vec<f64> = escapes
            .iter()
            .zip(&profiles)
            .map(|(e, p)| *e as f64 + RESONANCE_SHAPING * p.resonant_energy())
            .collect();

        // Same argmax the GA's stable descending sort produces.
        let mut best = 0;
        for i in 1..scores.len() {
            if scores[i] > scores[best] {
                best = i;
            }
        }
        let record = GenerationRecord {
            generation,
            best_fitness: scores[best],
            best_escapes: escapes[best],
            total_escapes: escapes.iter().sum(),
        };
        telemetry::event!(
            Level::Info,
            "redteam_generation",
            generation = record.generation,
            best_fitness = record.best_fitness,
            total_escapes = record.total_escapes,
        );
        generations.push(record);
        generation += 1;
        scores
    });

    CampaignReport {
        boards: config.fleet.boards,
        seed: config.fleet.seed,
        generations,
        champion: result.champion,
        champion_fitness: result.champion_fitness,
    }
}

/// Replays an attacker profile (or the dedicated-PMD control with
/// `None`) against every board of `fleet` under `scenario`, in board-id
/// order. Used to benchmark a co-evolved champion against the hardened
/// arm. Worker count never affects the result.
pub fn replay_fleet(
    fleet: &FleetSpec,
    attacker: Option<&WorkloadProfile>,
    scenario: &AttackScenario,
    workers: usize,
) -> Vec<EpisodeReport> {
    let boards: Vec<BoardSpec> = fleet.all_boards().collect();
    let next = AtomicUsize::new(0);
    let mut reports: Vec<EpisodeReport> = thread::scope(|scope| {
        let handles: Vec<_> = (0..workers.min(boards.len()).max(1))
            .map(|_| {
                let next = &next;
                let boards = &boards;
                scope.spawn(move || {
                    let mut done = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(board) = boards.get(i) else {
                            break;
                        };
                        done.push(run_episode(board, attacker, scenario));
                    }
                    done
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("redteam replay worker panicked"))
            .collect()
    });
    reports.sort_by_key(|r| r.board);
    reports
}

/// Name of the zero-escape SLO declared by [`replay_observatory`].
pub const REDTEAM_ESCAPE_SLO: &str = "zero-sdc-escapes";

/// Detector metric fed with each epoch's breaker-side droop estimate;
/// the spike detector warns on the attack's edge, typically epochs
/// before the attribution logic quarantines the attacker.
pub const REDTEAM_DROOP_METRIC: &str = "droop_mv";

/// Like [`replay_fleet`], but each episode runs under a fresh capture
/// context: the returned [`BoardStream`] (keyed `(epoch 0, board)`)
/// carries the episode's full Debug-level trace — per-epoch
/// `attack_epoch` breadcrumbs, breaker trips, the `attacker_quarantined`
/// event. Worker count never affects the result.
pub fn replay_fleet_observed(
    fleet: &FleetSpec,
    attacker: Option<&WorkloadProfile>,
    scenario: &AttackScenario,
    workers: usize,
) -> Vec<(EpisodeReport, BoardStream)> {
    let boards: Vec<BoardSpec> = fleet.all_boards().collect();
    let next = AtomicUsize::new(0);
    let mut observed: Vec<(EpisodeReport, BoardStream)> = thread::scope(|scope| {
        let handles: Vec<_> = (0..workers.min(boards.len()).max(1))
            .map(|_| {
                let next = &next;
                let boards = &boards;
                scope.spawn(move || {
                    let mut done = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(board) = boards.get(i) else {
                            break;
                        };
                        let (report, stream) =
                            observatory::observe(0, board.id, Level::Debug, || {
                                run_episode(board, attacker, scenario)
                            });
                        done.push((report, stream));
                    }
                    done
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("redteam replay worker panicked"))
            .collect()
    });
    observed.sort_by_key(|(r, _)| r.board);
    observed
}

/// Replays `attacker` against the whole fleet under full observation
/// and distills the result: the merged timeline, one reconstructed
/// incident per quarantine or breaker trip, a zero-escape SLO
/// evaluated per board, and a droop spike detector fed with every
/// epoch's breaker-side droop estimate.
pub fn replay_observatory(
    fleet: &FleetSpec,
    attacker: Option<&WorkloadProfile>,
    scenario: &AttackScenario,
    workers: usize,
) -> (Vec<EpisodeReport>, ObservatoryReport) {
    let observed = replay_fleet_observed(fleet, attacker, scenario, workers);
    let mut obs = Observatory::new();
    obs.add_detector(REDTEAM_DROOP_METRIC, DetectorConfig::spike(Direction::High));
    obs.add_slo(SloSpec::zero_escapes(REDTEAM_ESCAPE_SLO));
    let mut reports = Vec::with_capacity(observed.len());
    for (report, stream) in observed {
        for event in &stream.events {
            if event.name != "attack_epoch" {
                continue;
            }
            let mut epoch = None;
            let mut droop = None;
            for (name, value) in &event.fields {
                match (name.as_str(), value) {
                    ("epoch", telemetry::FieldValue::U64(e)) => epoch = Some(*e),
                    ("droop_mv", telemetry::FieldValue::F64(d)) => droop = Some(*d),
                    _ => {}
                }
            }
            if let (Some(epoch), Some(droop)) = (epoch, droop) {
                obs.detect(report.board, REDTEAM_DROOP_METRIC, epoch, droop);
            }
        }
        obs.slo_observe(
            REDTEAM_ESCAPE_SLO,
            u64::from(report.board),
            Some(report.board),
            report.escaped_sdcs as f64,
        );
        obs.ingest_stream(stream);
        reports.push(report);
    }
    (reports, obs.finish())
}

/// Scores every genome against every board and returns per-genome
/// fleet-wide escape totals, in genome order. The `(genome, board)` job
/// grid is pulled by index and the results re-sorted by grid position,
/// so worker scheduling never leaks into the totals.
fn fleet_escapes(
    boards: &[BoardSpec],
    profiles: &[WorkloadProfile],
    scenario: &AttackScenario,
    workers: usize,
) -> Vec<u64> {
    let jobs: Vec<(usize, usize)> = (0..profiles.len())
        .flat_map(|g| (0..boards.len()).map(move |b| (g, b)))
        .collect();
    let next = AtomicUsize::new(0);
    let mut results: Vec<(usize, usize, u64)> = thread::scope(|scope| {
        let handles: Vec<_> = (0..workers.min(jobs.len()).max(1))
            .map(|_| {
                let next = &next;
                let jobs = &jobs;
                scope.spawn(move || {
                    let mut done = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&(g, b)) = jobs.get(i) else {
                            break;
                        };
                        let report = run_episode(&boards[b], Some(&profiles[g]), scenario);
                        done.push((g, b, report.escaped_sdcs));
                    }
                    done
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("redteam campaign worker panicked"))
            .collect()
    });
    results.sort_by_key(|&(g, b, _)| (g, b));
    let mut per_genome = vec![0u64; profiles.len()];
    for (g, _, e) in results {
        per_genome[g] += e;
    }
    per_genome
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> CampaignConfig {
        let mut config = CampaignConfig::dsn18(3, 2018);
        config.ga.population = 6;
        config.ga.generations = 3;
        config.scenario.epochs = 25;
        config
    }

    #[test]
    fn chronicle_is_byte_identical_across_worker_counts() {
        let mut serial = small_config();
        serial.workers = 1;
        let mut pooled = small_config();
        pooled.workers = 3;
        assert_eq!(
            run_campaign(&serial).chronicle_json(),
            run_campaign(&pooled).chronicle_json()
        );
    }

    #[test]
    fn the_observed_replay_reconstructs_quarantines_deterministically() {
        let fleet = FleetSpec::new(3, 2018);
        let scenario = AttackScenario::hardened(30).with_onset(8);
        let virus = WorkloadProfile::builder("v")
            .activity(1.0)
            .swing(1.0)
            .resonance_alignment(0.9)
            .build();
        let (reports, serial) = replay_observatory(&fleet, Some(&virus), &scenario, 1);
        let (_, pooled) = replay_observatory(&fleet, Some(&virus), &scenario, 3);
        assert_eq!(serial.chronicle_json(), pooled.chronicle_json());
        // Every quarantine the episodes report appears as an incident on
        // the right board, and the droop spike detector warned no later
        // than the net detected.
        for report in reports.iter().filter(|r| r.attacker_quarantined) {
            assert!(
                serial
                    .incidents_of(observatory::IncidentKind::AttackerQuarantine)
                    .any(|i| i.board == report.board),
                "board {} quarantine missing from incidents",
                report.board
            );
            let warning = serial
                .first_warning(report.board, REDTEAM_DROOP_METRIC)
                .expect("the attack edge raises a droop warning");
            assert!(
                warning.epoch <= report.detection_epoch.unwrap(),
                "warning at {} vs detection at {:?}",
                warning.epoch,
                report.detection_epoch
            );
        }
        assert!(
            reports.iter().any(|r| r.attacker_quarantined),
            "the hardened arm quarantines the crafted virus somewhere"
        );
    }

    #[test]
    fn replay_is_ordered_and_deterministic() {
        let config = small_config();
        let virus = WorkloadProfile::builder("v")
            .activity(1.0)
            .swing(1.0)
            .resonance_alignment(0.9)
            .build();
        let a = replay_fleet(&config.fleet, Some(&virus), &config.scenario, 1);
        let b = replay_fleet(&config.fleet, Some(&virus), &config.scenario, 4);
        assert_eq!(a, b);
        let ids: Vec<u32> = a.iter().map(|r| r.board).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }
}
