//! Red-team co-evolution against the below-guardband safety net.
//!
//! The characterization campaigns establish how far below the guardband a
//! board can run; the safety net (`guardband_core::safety`) keeps it
//! there in production. This crate attacks that net the way a malicious
//! cloud tenant would: a dI/dt virus (evolved by `stress_gen::ga`) is
//! co-located with a victim workload on the same PMD, its droop couples
//! into the victim's effective Vmin through the shared power-delivery
//! network, and the genetic algorithm's fitness is the number of silent
//! data corruptions that *escape* — land before the net's first
//! detection event (breaker trip or attacker quarantine).
//!
//! Two scenario arms make the argument:
//!
//! * [`AttackScenario::seed_net`] — the pre-hardening ablation: every
//!   cross-tenant knob off, exactly the net as originally shipped. The
//!   co-evolved champion leaks SDCs here because sentinels run
//!   single-tenant (the attacker is preempted during the DMR check) and
//!   the breaker only watches CE rates.
//! * [`AttackScenario::hardened`] — droop estimation from co-tenant PMU
//!   telemetry, feed-forward voltage compensation, droop attribution in
//!   the breaker, adaptive sentinel cadence, and attacker quarantine.
//!
//! [`run_campaign`] drives the co-evolution across a seeded fleet with a
//! deterministic worker pool: the campaign chronicle is byte-identical
//! for any worker count, and the champion's fitness is monotone in the
//! generation budget.

#![warn(missing_docs)]

pub mod campaign;
pub mod episode;

pub use campaign::{
    replay_fleet, replay_fleet_observed, replay_observatory, run_campaign, CampaignConfig,
    CampaignReport, GenerationRecord, REDTEAM_DROOP_METRIC, REDTEAM_ESCAPE_SLO,
};
pub use episode::{run_episode, AttackScenario, EpisodeReport};
