//! The metrics registry: counters, gauges and fixed-bucket histograms
//! with Prometheus-style text exposition and JSON export.
//!
//! A [`Registry`] is a plain value with interior mutability — share it as
//! `Rc<Registry>` between the telemetry context (so the `counter!` /
//! `gauge!` / `observe!` macros can reach it) and the reporting code that
//! renders it at the end of a campaign. Snapshots ([`MetricsSnapshot`])
//! are inert serializable data, used both for JSON export and for
//! embedding campaign metrics in checkpoints.

use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Default buckets for wall-clock durations, in seconds (1 µs … 10 s).
pub const WALL_SECONDS_BUCKETS: [f64; 8] = [1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0];

/// Default buckets for simulated durations, in milliseconds
/// (0.1 ms … 1000 s).
pub const SIM_MS_BUCKETS: [f64; 8] = [0.1, 1.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6];

/// Geometric bucket bounds: `start, start·factor, …` for `count`
/// buckets. The shape request-latency distributions want — a linear
/// ladder wastes resolution at one end of a µs→s range, a geometric one
/// keeps relative error constant across it.
///
/// # Panics
///
/// Panics if `start` is not positive and finite, `factor` is not finite
/// and greater than 1, or `count` is zero.
pub fn exponential_bounds(start: f64, factor: f64, count: usize) -> Vec<f64> {
    assert!(
        start.is_finite() && start > 0.0,
        "exponential buckets need a positive finite start"
    );
    assert!(
        factor.is_finite() && factor > 1.0,
        "exponential buckets need a finite growth factor > 1"
    );
    assert!(count > 0, "histogram needs at least one bucket");
    let mut bounds = Vec::with_capacity(count);
    let mut bound = start;
    for _ in 0..count {
        bounds.push(bound);
        bound *= factor;
    }
    assert!(
        bounds.iter().all(|b| b.is_finite()),
        "exponential buckets overflowed to infinity"
    );
    bounds
}

/// A fixed-bucket histogram (Prometheus semantics: cumulative `le`
/// buckets plus an implicit `+Inf` overflow, a sum and a count).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Finite upper bounds, strictly increasing.
    bounds: Vec<f64>,
    /// Per-bucket (non-cumulative) counts; `counts[bounds.len()]` is the
    /// `+Inf` overflow bucket.
    counts: Vec<u64>,
    sum: f64,
    count: u64,
}

impl Histogram {
    /// Creates a histogram with the given finite upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty, non-finite or not strictly increasing.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "bucket bounds must be finite (+Inf is implicit)"
        );
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bucket bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
        }
    }

    /// Creates a histogram with geometric bucket bounds
    /// `start, start·factor, …` (`count` finite buckets plus the
    /// implicit `+Inf` overflow) — suited to request latencies spanning
    /// microseconds to seconds.
    ///
    /// # Panics
    ///
    /// Panics on invalid parameters (see [`exponential_bounds`]).
    ///
    /// # Examples
    ///
    /// ```
    /// use telemetry::metrics::Histogram;
    ///
    /// // 1 µs … ~1 s in seconds, doubling: 21 buckets.
    /// let h = Histogram::exponential(1e-6, 2.0, 21);
    /// assert_eq!(h.count(), 0);
    /// ```
    pub fn exponential(start: f64, factor: f64, count: usize) -> Self {
        Histogram::new(&exponential_bounds(start, factor, count))
    }

    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += value;
        self.count += 1;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Cumulative count at each finite bound, then at `+Inf` — the
    /// Prometheus `_bucket` series.
    pub fn cumulative(&self) -> Vec<u64> {
        let mut acc = 0;
        self.counts
            .iter()
            .map(|c| {
                acc += c;
                acc
            })
            .collect()
    }

    /// The inert snapshot of this histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self.counts.clone(),
            sum: self.sum,
            count: self.count,
        }
    }

    /// Estimated `q`-quantile (see [`HistogramSnapshot::quantile`]).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        bucket_quantile(&self.bounds, &self.counts, self.count, q)
    }

    /// Estimated median.
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.50)
    }

    /// Estimated 95th percentile.
    pub fn p95(&self) -> Option<f64> {
        self.quantile(0.95)
    }

    /// Estimated 99th percentile.
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }
}

/// Prometheus-style `histogram_quantile`: locate the bucket containing
/// rank `q·count` and interpolate linearly inside it (the first bucket
/// interpolates from 0). Observations in the `+Inf` overflow bucket are
/// reported as the highest finite bound — a lower bound on the truth,
/// exactly as Prometheus does.
fn bucket_quantile(bounds: &[f64], counts: &[u64], count: u64, q: f64) -> Option<f64> {
    if !(0.0..=1.0).contains(&q) || count == 0 {
        return None;
    }
    let target = q * count as f64;
    let mut cum = 0.0;
    let mut lower = 0.0;
    for (i, &bound) in bounds.iter().enumerate() {
        let in_bucket = counts[i] as f64;
        if cum + in_bucket >= target && in_bucket > 0.0 {
            let frac = ((target - cum) / in_bucket).clamp(0.0, 1.0);
            return Some(lower + (bound - lower) * frac);
        }
        cum += in_bucket;
        lower = bound;
    }
    bounds.last().copied()
}

/// Serializable snapshot of a [`Histogram`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Finite upper bounds.
    pub bounds: Vec<f64>,
    /// Per-bucket counts (last entry is the `+Inf` overflow bucket).
    pub counts: Vec<u64>,
    /// Sum of observations.
    pub sum: f64,
    /// Number of observations.
    pub count: u64,
}

/// Serializable snapshot of a whole [`Registry`].
///
/// Every vector is sorted by the full series name — the metric family
/// plus its canonical label signature (see [`series_name`]) — and the
/// lookup methods binary-search on that invariant. Snapshots produced
/// by [`Registry::snapshot`] always satisfy it; hand-built snapshots
/// must keep their vectors name-sorted.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counter values, sorted by full series name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values, sorted by full series name.
    pub gauges: Vec<(String, f64)>,
    /// Histogram snapshots, sorted by full series name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

/// Binary-searches a name-sorted series vector.
fn lookup<'a, V>(series: &'a [(String, V)], name: &str) -> Option<&'a V> {
    series
        .binary_search_by(|(n, _)| n.as_str().cmp(name))
        .ok()
        .map(|index| &series[index].1)
}

impl MetricsSnapshot {
    /// Looks up a counter by full series name (binary search).
    pub fn counter(&self, name: &str) -> Option<u64> {
        lookup(&self.counters, name).copied()
    }

    /// Looks up a gauge by full series name (binary search).
    pub fn gauge(&self, name: &str) -> Option<f64> {
        lookup(&self.gauges, name).copied()
    }

    /// Looks up a histogram snapshot by full series name (binary
    /// search).
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        lookup(&self.histograms, name)
    }
}

impl HistogramSnapshot {
    /// Estimated `q`-quantile of the recorded distribution.
    ///
    /// Prometheus `histogram_quantile` semantics: the bucket containing
    /// rank `q·count` is found and the value is interpolated linearly
    /// within it, with the first bucket interpolating up from 0. Returns
    /// `None` for an empty histogram or `q` outside `[0, 1]`; ranks that
    /// land in the `+Inf` overflow bucket report the highest finite bound.
    ///
    /// # Examples
    ///
    /// ```
    /// use telemetry::metrics::Histogram;
    ///
    /// let mut h = Histogram::new(&[10.0, 20.0]);
    /// for _ in 0..4 {
    ///     h.observe(15.0);
    /// }
    /// let snap = h.snapshot();
    /// // All mass sits in (10, 20]: the median interpolates to 15.
    /// assert_eq!(snap.quantile(0.5), Some(15.0));
    /// ```
    pub fn quantile(&self, q: f64) -> Option<f64> {
        bucket_quantile(&self.bounds, &self.counts, self.count, q)
    }

    /// Estimated median.
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.50)
    }

    /// Estimated 95th percentile.
    pub fn p95(&self) -> Option<f64> {
        self.quantile(0.95)
    }

    /// Estimated 99th percentile.
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }
}

/// Canonical label signature: keys sorted, values escaped, rendered as
/// `{k="v",k2="v2"}`. No labels give the empty signature, so bare
/// series are just their family name.
fn label_signature(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut sorted: Vec<(&str, &str)> = labels.to_vec();
    sorted.sort_by(|a, b| a.0.cmp(b.0));
    let mut out = String::from("{");
    for (index, (key, value)) in sorted.iter().enumerate() {
        if index > 0 {
            out.push(',');
        }
        out.push_str(key);
        out.push_str("=\"");
        for c in value.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

/// The full series name of a labeled metric: the family name plus the
/// canonical (key-sorted, value-escaped) label signature. This is the
/// key [`MetricsSnapshot`] lookups expect for labeled series.
pub fn series_name(name: &str, labels: &[(&str, &str)]) -> String {
    format!("{name}{}", label_signature(labels))
}

/// Splits a full series name into `(family, label signature)`.
fn split_series(name: &str) -> (&str, String) {
    match name.split_once('{') {
        Some((family, rest)) => (family, format!("{{{rest}")),
        None => (name, String::new()),
    }
}

/// Inserts `le="bound"` as the last label of a (possibly empty)
/// signature — the Prometheus `_bucket` series shape.
fn bucket_signature(sig: &str, bound: &str) -> String {
    if sig.is_empty() {
        format!("{{le=\"{bound}\"}}")
    } else {
        format!("{},le=\"{bound}\"}}", &sig[..sig.len() - 1])
    }
}

/// Per-family series maps: family name → label signature → value, with
/// the empty signature holding the bare (unlabeled) series. Keeping
/// families separate (rather than flat `name{labels}` strings) is what
/// makes Prometheus exposition group a family under one `# TYPE` line —
/// a flat map would interleave, since `'_'` sorts before `'{'`.
#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, BTreeMap<String, u64>>,
    gauges: BTreeMap<String, BTreeMap<String, f64>>,
    histograms: BTreeMap<String, BTreeMap<String, Histogram>>,
}

/// The metrics registry.
///
/// # Examples
///
/// ```
/// use telemetry::metrics::Registry;
///
/// let reg = Registry::new();
/// reg.counter_add("campaign_runs_total", 3);
/// reg.gauge_set("margin_mv", 15.0);
/// reg.register_histogram("backoff_ms", &[100.0, 1000.0, 10_000.0]);
/// reg.observe("backoff_ms", 500.0);
/// assert_eq!(reg.counter("campaign_runs_total"), 3);
/// assert!(reg.prometheus().contains("backoff_ms_bucket{le=\"1000\"} 1"));
///
/// // Per-board series share one metric family via label sets.
/// reg.gauge_set_labeled("ce_rate", &[("board", "b17")], 0.25);
/// assert_eq!(reg.gauge_labeled("ce_rate", &[("board", "b17")]), Some(0.25));
/// assert!(reg.prometheus().contains("ce_rate{board=\"b17\"} 0.25"));
/// ```
#[derive(Debug, Default)]
pub struct Registry {
    inner: RefCell<RegistryInner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Rebuilds a registry from a snapshot (counters and gauges restored
    /// exactly; histograms keep their bounds and counts). Labeled series
    /// names are parsed back into their family and signature.
    pub fn from_snapshot(snapshot: &MetricsSnapshot) -> Self {
        let reg = Registry::new();
        {
            let mut inner = reg.inner.borrow_mut();
            for (name, v) in &snapshot.counters {
                let (family, sig) = split_series(name);
                inner
                    .counters
                    .entry(family.to_owned())
                    .or_default()
                    .insert(sig, *v);
            }
            for (name, v) in &snapshot.gauges {
                let (family, sig) = split_series(name);
                inner
                    .gauges
                    .entry(family.to_owned())
                    .or_default()
                    .insert(sig, *v);
            }
            for (name, h) in &snapshot.histograms {
                let (family, sig) = split_series(name);
                inner
                    .histograms
                    .entry(family.to_owned())
                    .or_default()
                    .insert(
                        sig,
                        Histogram {
                            bounds: h.bounds.clone(),
                            counts: h.counts.clone(),
                            sum: h.sum,
                            count: h.count,
                        },
                    );
            }
        }
        reg
    }

    /// Adds `delta` to a counter (created at zero on first touch). A
    /// `name{labels}` series name addresses the labeled series.
    pub fn counter_add(&self, name: &str, delta: u64) {
        let (family, sig) = split_series(name);
        *self
            .inner
            .borrow_mut()
            .counters
            .entry(family.to_owned())
            .or_default()
            .entry(sig)
            .or_insert(0) += delta;
    }

    /// Adds `delta` to the labeled series of a counter family.
    pub fn counter_add_labeled(&self, name: &str, labels: &[(&str, &str)], delta: u64) {
        *self
            .inner
            .borrow_mut()
            .counters
            .entry(name.to_owned())
            .or_default()
            .entry(label_signature(labels))
            .or_insert(0) += delta;
    }

    /// Current value of a counter (zero if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        let (family, sig) = split_series(name);
        self.inner
            .borrow()
            .counters
            .get(family)
            .and_then(|series| series.get(&sig))
            .copied()
            .unwrap_or(0)
    }

    /// Current value of a labeled counter series (zero if never
    /// touched).
    pub fn counter_labeled(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        self.inner
            .borrow()
            .counters
            .get(name)
            .and_then(|series| series.get(&label_signature(labels)))
            .copied()
            .unwrap_or(0)
    }

    /// Sets a gauge. A `name{labels}` series name addresses the labeled
    /// series.
    pub fn gauge_set(&self, name: &str, value: f64) {
        let (family, sig) = split_series(name);
        self.inner
            .borrow_mut()
            .gauges
            .entry(family.to_owned())
            .or_default()
            .insert(sig, value);
    }

    /// Sets the labeled series of a gauge family.
    pub fn gauge_set_labeled(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.inner
            .borrow_mut()
            .gauges
            .entry(name.to_owned())
            .or_default()
            .insert(label_signature(labels), value);
    }

    /// Current value of a gauge, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        let (family, sig) = split_series(name);
        self.inner
            .borrow()
            .gauges
            .get(family)
            .and_then(|series| series.get(&sig))
            .copied()
    }

    /// Current value of a labeled gauge series, if ever set.
    pub fn gauge_labeled(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.inner
            .borrow()
            .gauges
            .get(name)
            .and_then(|series| series.get(&label_signature(labels)))
            .copied()
    }

    /// Declares a histogram with explicit bucket bounds. Re-declaring an
    /// existing histogram keeps the original (observations are never
    /// dropped).
    ///
    /// # Panics
    ///
    /// Panics on invalid bounds (see [`Histogram::new`]).
    pub fn register_histogram(&self, name: &str, bounds: &[f64]) {
        let (family, sig) = split_series(name);
        self.inner
            .borrow_mut()
            .histograms
            .entry(family.to_owned())
            .or_default()
            .entry(sig)
            .or_insert_with(|| Histogram::new(bounds));
    }

    /// Records one observation; auto-creates the histogram with
    /// [`SIM_MS_BUCKETS`] if it was never declared.
    pub fn observe(&self, name: &str, value: f64) {
        let (family, sig) = split_series(name);
        self.inner
            .borrow_mut()
            .histograms
            .entry(family.to_owned())
            .or_default()
            .entry(sig)
            .or_insert_with(|| Histogram::new(&SIM_MS_BUCKETS))
            .observe(value);
    }

    /// Records one observation on the labeled series of a histogram
    /// family (auto-created with [`SIM_MS_BUCKETS`] if undeclared).
    pub fn observe_labeled(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.inner
            .borrow_mut()
            .histograms
            .entry(name.to_owned())
            .or_default()
            .entry(label_signature(labels))
            .or_insert_with(|| Histogram::new(&SIM_MS_BUCKETS))
            .observe(value);
    }

    /// A histogram's snapshot, if it exists.
    pub fn histogram(&self, name: &str) -> Option<HistogramSnapshot> {
        let (family, sig) = split_series(name);
        self.inner
            .borrow()
            .histograms
            .get(family)
            .and_then(|series| series.get(&sig))
            .map(Histogram::snapshot)
    }

    /// Estimated `q`-quantile of a histogram (see
    /// [`HistogramSnapshot::quantile`]); `None` if the histogram does not
    /// exist or is empty.
    pub fn quantile(&self, name: &str, q: f64) -> Option<f64> {
        let (family, sig) = split_series(name);
        self.inner
            .borrow()
            .histograms
            .get(family)
            .and_then(|series| series.get(&sig))
            .and_then(|h| h.quantile(q))
    }

    /// The inert snapshot of everything in the registry, with every
    /// vector sorted by full series name (the invariant
    /// [`MetricsSnapshot`] lookups binary-search on).
    pub fn snapshot(&self) -> MetricsSnapshot {
        fn flatten<V, S>(
            families: &BTreeMap<String, BTreeMap<String, V>>,
            snap: fn(&V) -> S,
        ) -> Vec<(String, S)> {
            let mut out: Vec<(String, S)> = families
                .iter()
                .flat_map(|(family, series)| {
                    series
                        .iter()
                        .map(move |(sig, v)| (format!("{family}{sig}"), snap(v)))
                })
                .collect();
            // Family-then-signature order is NOT full-string order
            // ('_' sorts before '{'), so sort explicitly.
            out.sort_by(|a, b| a.0.cmp(&b.0));
            out
        }
        let inner = self.inner.borrow();
        MetricsSnapshot {
            counters: flatten(&inner.counters, |v| *v),
            gauges: flatten(&inner.gauges, |v| *v),
            histograms: flatten(&inner.histograms, Histogram::snapshot),
        }
    }

    /// Prometheus-style text exposition of the whole registry, in
    /// deterministic order: families sorted by name, one `# TYPE` line
    /// per family, the bare series first and labeled series after it in
    /// signature order.
    pub fn prometheus(&self) -> String {
        let inner = self.inner.borrow();
        let mut out = String::new();
        for (family, series) in &inner.counters {
            let _ = writeln!(out, "# TYPE {family} counter");
            for (sig, v) in series {
                let _ = writeln!(out, "{family}{sig} {v}");
            }
        }
        for (family, series) in &inner.gauges {
            let _ = writeln!(out, "# TYPE {family} gauge");
            for (sig, v) in series {
                let _ = writeln!(out, "{family}{sig} {v}");
            }
        }
        for (family, series) in &inner.histograms {
            let _ = writeln!(out, "# TYPE {family} histogram");
            for (sig, h) in series {
                let cumulative = h.cumulative();
                for (bound, cum) in h.bounds.iter().zip(&cumulative) {
                    let _ = writeln!(
                        out,
                        "{family}_bucket{} {cum}",
                        bucket_signature(sig, &bound.to_string())
                    );
                }
                let _ = writeln!(
                    out,
                    "{family}_bucket{} {}",
                    bucket_signature(sig, "+Inf"),
                    cumulative.last().copied().unwrap_or(0)
                );
                let _ = writeln!(out, "{family}_sum{sig} {}", h.sum());
                let _ = writeln!(out, "{family}_count{sig} {}", h.count());
            }
        }
        out
    }

    /// JSON export of the registry snapshot.
    pub fn to_json(&self) -> String {
        serde::json::to_string(&self.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_observations_by_upper_bound() {
        let mut h = Histogram::new(&[1.0, 10.0, 100.0]);
        h.observe(0.5); // le=1
        h.observe(1.0); // le=1 (inclusive upper bound)
        h.observe(5.0); // le=10
        h.observe(100.0); // le=100
        h.observe(1e9); // +Inf overflow
        assert_eq!(h.counts, vec![2, 1, 1, 1]);
        assert_eq!(h.cumulative(), vec![2, 3, 4, 5]);
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 1_000_000_106.5).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_bounds() {
        let _ = Histogram::new(&[10.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn histogram_rejects_empty_bounds() {
        let _ = Histogram::new(&[]);
    }

    #[test]
    fn exposition_format_matches_prometheus_shape() {
        let reg = Registry::new();
        reg.counter_add("runs_total", 7);
        reg.gauge_set("margin_mv", 12.5);
        reg.register_histogram("lat_ms", &[1.0, 10.0]);
        reg.observe("lat_ms", 0.4);
        reg.observe("lat_ms", 4.0);
        reg.observe("lat_ms", 40.0);
        let text = reg.prometheus();
        let expected = "\
# TYPE runs_total counter
runs_total 7
# TYPE margin_mv gauge
margin_mv 12.5
# TYPE lat_ms histogram
lat_ms_bucket{le=\"1\"} 1
lat_ms_bucket{le=\"10\"} 2
lat_ms_bucket{le=\"+Inf\"} 3
lat_ms_sum 44.4
lat_ms_count 3
";
        assert_eq!(text, expected);
    }

    #[test]
    fn counters_and_gauges_accumulate() {
        let reg = Registry::new();
        reg.counter_add("c", 1);
        reg.counter_add("c", 2);
        assert_eq!(reg.counter("c"), 3);
        assert_eq!(reg.counter("never"), 0);
        reg.gauge_set("g", 1.0);
        reg.gauge_set("g", -2.0);
        assert_eq!(reg.gauge("g"), Some(-2.0));
        assert_eq!(reg.gauge("never"), None);
    }

    #[test]
    fn snapshot_roundtrips_through_json_and_registry() {
        let reg = Registry::new();
        reg.counter_add("runs", 5);
        reg.gauge_set("v", 900.0);
        reg.register_histogram("h", &[1.0, 2.0]);
        reg.observe("h", 1.5);
        let snap = reg.snapshot();
        let text = serde::json::to_string(&snap);
        let back: MetricsSnapshot = serde::json::from_str(&text).unwrap();
        assert_eq!(snap, back);
        assert_eq!(back.counter("runs"), Some(5));
        assert_eq!(back.gauge("v"), Some(900.0));
        assert_eq!(back.histogram("h").unwrap().count, 1);

        let restored = Registry::from_snapshot(&back);
        assert_eq!(restored.snapshot(), snap);
        // The restored registry keeps accumulating where it left off.
        restored.counter_add("runs", 1);
        assert_eq!(restored.counter("runs"), 6);
    }

    #[test]
    fn quantile_interpolates_within_the_bucket() {
        let mut h = Histogram::new(&[10.0, 20.0, 40.0]);
        // 2 in (0,10], 2 in (10,20], 4 in (20,40].
        for v in [5.0, 5.0, 15.0, 15.0, 30.0, 30.0, 30.0, 30.0] {
            h.observe(v);
        }
        // p25 → rank 2 of 8, the full first bucket: its upper bound.
        assert_eq!(h.quantile(0.25), Some(10.0));
        // p50 → rank 4, end of the second bucket.
        assert_eq!(h.quantile(0.50), Some(20.0));
        // p75 → rank 6, halfway through the (20,40] bucket.
        assert_eq!(h.quantile(0.75), Some(30.0));
        assert_eq!(h.p50(), h.quantile(0.5));
    }

    #[test]
    fn quantile_on_bucket_boundary_is_the_bound_itself() {
        // Observations exactly on a bucket's upper bound land in that
        // bucket (inclusive `le`), so the top quantile of a boundary-only
        // histogram is the bound itself, not the next bucket up.
        let mut h = Histogram::new(&[1.0, 10.0, 100.0]);
        for _ in 0..10 {
            h.observe(10.0);
        }
        assert_eq!(h.quantile(1.0), Some(10.0));
        assert_eq!(h.p50(), Some(5.5)); // interpolated inside (1,10]
    }

    #[test]
    fn lowest_bucket_interpolates_from_zero() {
        let mut h = Histogram::new(&[8.0, 16.0]);
        for _ in 0..4 {
            h.observe(2.0);
        }
        // Ranks interpolate linearly across (0, 8].
        assert_eq!(h.quantile(0.25), Some(2.0));
        assert_eq!(h.quantile(0.5), Some(4.0));
        assert_eq!(h.quantile(1.0), Some(8.0));
    }

    #[test]
    fn overflow_bucket_reports_the_highest_finite_bound() {
        let mut h = Histogram::new(&[1.0, 2.0]);
        h.observe(0.5);
        h.observe(1e9); // +Inf overflow
        assert_eq!(h.quantile(0.99), Some(2.0));
        assert_eq!(h.p99(), Some(2.0));
    }

    #[test]
    fn quantile_rejects_empty_and_out_of_range() {
        let h = Histogram::new(&[1.0]);
        assert_eq!(h.quantile(0.5), None);
        let mut h = Histogram::new(&[1.0]);
        h.observe(0.5);
        assert_eq!(h.quantile(-0.1), None);
        assert_eq!(h.quantile(1.1), None);
        assert_eq!(h.quantile(0.0), Some(0.0));
    }

    #[test]
    fn quantile_skips_empty_buckets() {
        let mut h = Histogram::new(&[1.0, 2.0, 4.0, 8.0]);
        h.observe(0.5); // (0,1]
        h.observe(6.0); // (4,8]
                        // The median rank (1 of 2) completes the first bucket; p75 must
                        // skip the two empty middle buckets and interpolate in (4,8].
        assert_eq!(h.quantile(0.5), Some(1.0));
        assert_eq!(h.quantile(0.75), Some(6.0));
    }

    #[test]
    fn registry_and_snapshot_agree_on_quantiles() {
        let reg = Registry::new();
        reg.register_histogram("margin_mv", &[25.0, 50.0, 100.0]);
        for v in [10.0, 30.0, 60.0, 70.0] {
            reg.observe("margin_mv", v);
        }
        let snap = reg.snapshot();
        let hist = snap.histogram("margin_mv").unwrap();
        assert_eq!(reg.quantile("margin_mv", 0.95), hist.p95());
        assert_eq!(reg.quantile("missing", 0.95), None);
        // The snapshot survives a JSON round trip with quantiles intact.
        let back: MetricsSnapshot = serde::json::from_str(&serde::json::to_string(&snap)).unwrap();
        assert_eq!(back.histogram("margin_mv").unwrap().p95(), hist.p95());
    }

    #[test]
    fn labeled_series_share_a_family_and_expose_in_order() {
        let reg = Registry::new();
        reg.counter_add("ce_total", 1);
        reg.counter_add_labeled("ce_total", &[("board", "b2")], 9);
        reg.counter_add_labeled("ce_total", &[("board", "b10")], 4);
        // A family whose name extends the other: with flat string keys
        // this would interleave between `ce_total` and `ce_total{...}`.
        reg.counter_add("ce_total_scrubbed", 2);
        reg.register_histogram("lat_ms{board=\"b2\"}", &[1.0]);
        reg.observe_labeled("lat_ms", &[("board", "b2")], 0.5);
        let text = reg.prometheus();
        let expected = "\
# TYPE ce_total counter
ce_total 1
ce_total{board=\"b10\"} 4
ce_total{board=\"b2\"} 9
# TYPE ce_total_scrubbed counter
ce_total_scrubbed 2
# TYPE lat_ms histogram
lat_ms_bucket{board=\"b2\",le=\"1\"} 1
lat_ms_bucket{board=\"b2\",le=\"+Inf\"} 1
lat_ms_sum{board=\"b2\"} 0.5
lat_ms_count{board=\"b2\"} 1
";
        assert_eq!(text, expected);
    }

    #[test]
    fn label_order_does_not_matter_and_values_are_escaped() {
        let reg = Registry::new();
        reg.counter_add_labeled("c", &[("b", "x"), ("a", "y")], 1);
        reg.counter_add_labeled("c", &[("a", "y"), ("b", "x")], 1);
        assert_eq!(reg.counter_labeled("c", &[("b", "x"), ("a", "y")]), 2);
        assert_eq!(reg.counter("c{a=\"y\",b=\"x\"}"), 2);
        assert_eq!(
            series_name("c", &[("b", "x"), ("a", "y")]),
            "c{a=\"y\",b=\"x\"}"
        );

        reg.gauge_set_labeled("g", &[("who", "quo\"te\\back")], 1.0);
        assert!(reg.prometheus().contains("g{who=\"quo\\\"te\\\\back\"} 1"));
    }

    #[test]
    fn labeled_snapshots_are_name_sorted_and_round_trip() {
        let reg = Registry::new();
        reg.counter_add("jobs_total", 3);
        reg.counter_add_labeled("jobs", &[("board", "b1")], 1);
        reg.counter_add("jobs_failed", 2);
        reg.gauge_set_labeled("ce_rate", &[("board", "b1")], 0.5);
        reg.observe_labeled("lat", &[("board", "b1")], 1.0);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "snapshot must be full-name sorted");
        // Binary-search lookups find bare and labeled series alike.
        assert_eq!(snap.counter("jobs_total"), Some(3));
        assert_eq!(
            snap.counter(&series_name("jobs", &[("board", "b1")])),
            Some(1)
        );
        assert_eq!(snap.gauge("ce_rate{board=\"b1\"}"), Some(0.5));
        assert_eq!(snap.histogram("lat{board=\"b1\"}").unwrap().count, 1);
        assert_eq!(snap.counter("jobs"), None);

        let restored = Registry::from_snapshot(&snap);
        assert_eq!(restored.snapshot(), snap);
        restored.counter_add_labeled("jobs", &[("board", "b1")], 1);
        assert_eq!(restored.counter_labeled("jobs", &[("board", "b1")]), 2);
    }

    #[test]
    fn exponential_bounds_are_geometric_and_strictly_increasing() {
        let bounds = exponential_bounds(1e-6, 10.0, 7);
        assert_eq!(bounds.len(), 7);
        assert!((bounds[0] - 1e-6).abs() < 1e-18);
        for pair in bounds.windows(2) {
            assert!(pair[0] < pair[1]);
            assert!((pair[1] / pair[0] - 10.0).abs() < 1e-9);
        }
        // The top of a 1 µs start with 7 decades is 1 s.
        assert!((bounds[6] - 1.0).abs() < 1e-9);
        // The constructor accepts them (they satisfy Histogram::new's
        // finite/increasing contract by construction).
        let h = Histogram::exponential(1e-6, 10.0, 7);
        assert_eq!(h.snapshot().bounds, bounds);
    }

    #[test]
    fn exponential_histogram_buckets_by_upper_bound() {
        let mut h = Histogram::exponential(1.0, 2.0, 4); // 1, 2, 4, 8
        h.observe(1.0); // le=1 (inclusive)
        h.observe(1.5); // le=2
        h.observe(8.0); // le=8
        h.observe(100.0); // +Inf overflow
        assert_eq!(h.cumulative(), vec![1, 2, 2, 3, 4]);
    }

    #[test]
    fn exponential_quantiles_interpolate_within_the_bucket() {
        // All mass in (2, 4]: the median interpolates linearly to 3 even
        // though the bucket widths grow geometrically.
        let mut h = Histogram::exponential(1.0, 2.0, 4);
        for _ in 0..8 {
            h.observe(3.0);
        }
        assert_eq!(h.p50(), Some(3.0));
        assert_eq!(h.quantile(0.25), Some(2.5));
        assert_eq!(h.quantile(1.0), Some(4.0));
        // Overflow observations report the highest finite bound.
        h.observe(1e9);
        assert_eq!(h.p99(), Some(8.0));
    }

    #[test]
    #[should_panic(expected = "growth factor")]
    fn exponential_rejects_non_growing_factor() {
        let _ = exponential_bounds(1.0, 1.0, 4);
    }

    #[test]
    #[should_panic(expected = "positive finite start")]
    fn exponential_rejects_zero_start() {
        let _ = exponential_bounds(0.0, 2.0, 4);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn exponential_rejects_zero_count() {
        let _ = exponential_bounds(1.0, 2.0, 0);
    }

    #[test]
    fn auto_created_histogram_uses_sim_buckets() {
        let reg = Registry::new();
        reg.observe("implicit", 50.0);
        let h = reg.histogram("implicit").unwrap();
        assert_eq!(h.bounds, SIM_MS_BUCKETS.to_vec());
        assert_eq!(h.count, 1);
    }
}
