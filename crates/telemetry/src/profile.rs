//! Lightweight profiling timers feeding the metrics registry.
//!
//! Two time axes coexist in this workspace: *wall time* (how long the
//! host actually spent, e.g. inside a Vmin search) and *simulated time*
//! (milliseconds of modelled board time). [`WallTimer`] measures the
//! former with `std::time::Instant`; [`SimTimer`] measures the latter
//! from caller-supplied timestamps. Both observe into histograms of the
//! installed [`Registry`](crate::metrics::Registry) — wall time never
//! enters recorded *events*, so traces stay deterministic.
//!
//! Both timers are no-ops (no clock read, no allocation) when no
//! registry is installed.

use crate::metrics::{SIM_MS_BUCKETS, WALL_SECONDS_BUCKETS};

/// RAII wall-clock timer: observes the elapsed seconds into the
/// histogram `name` (with [`WALL_SECONDS_BUCKETS`]) when dropped.
///
/// Prefer the [`time_scope!`](crate::time_scope) macro, which expands to
/// one of these bound to the end of the enclosing scope.
#[derive(Debug)]
pub struct WallTimer {
    name: &'static str,
    start: Option<std::time::Instant>,
}

impl WallTimer {
    /// Starts timing; reads the clock only if a registry is installed.
    pub fn start(name: &'static str) -> Self {
        let start = crate::has_registry().then(std::time::Instant::now);
        WallTimer { name, start }
    }
}

impl Drop for WallTimer {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let secs = start.elapsed().as_secs_f64();
            let _ = crate::with_registry(|reg| {
                reg.register_histogram(self.name, &WALL_SECONDS_BUCKETS);
                reg.observe(self.name, secs);
            });
        }
    }
}

/// Simulated-time interval timer over caller-supplied millisecond
/// timestamps (e.g. `DramArray::now()`).
#[derive(Debug)]
pub struct SimTimer {
    name: &'static str,
    start_ms: f64,
}

impl SimTimer {
    /// Starts an interval at simulated time `start_ms`.
    pub fn start(name: &'static str, start_ms: f64) -> Self {
        SimTimer { name, start_ms }
    }

    /// Ends the interval at `end_ms`, observing the duration.
    pub fn finish(self, end_ms: f64) {
        observe_sim_ms(self.name, end_ms - self.start_ms);
    }
}

/// Observes one simulated-time duration (milliseconds) into the
/// histogram `name`, declared with [`SIM_MS_BUCKETS`] on first use.
pub fn observe_sim_ms(name: &str, ms: f64) {
    let _ = crate::with_registry(|reg| {
        reg.register_histogram(name, &SIM_MS_BUCKETS);
        reg.observe(name, ms);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;
    use crate::Telemetry;
    use std::rc::Rc;

    #[test]
    fn wall_timer_observes_into_registry() {
        let reg = Rc::new(Registry::new());
        let _guard = Telemetry::new().with_registry(reg.clone()).install();
        {
            let _t = WallTimer::start("search_seconds");
        }
        let h = reg.histogram("search_seconds").unwrap();
        assert_eq!(h.count, 1);
        assert_eq!(h.bounds, WALL_SECONDS_BUCKETS.to_vec());
    }

    #[test]
    fn sim_timer_observes_supplied_interval() {
        let reg = Rc::new(Registry::new());
        let _guard = Telemetry::new().with_registry(reg.clone()).install();
        let t = SimTimer::start("scrub_pass_ms", 1000.0);
        t.finish(1250.0);
        let h = reg.histogram("scrub_pass_ms").unwrap();
        assert_eq!(h.count, 1);
        assert!((h.sum - 250.0).abs() < 1e-9);
    }

    #[test]
    fn timers_are_noops_without_registry() {
        let _t = WallTimer::start("nothing");
        assert!(_t.start.is_none());
        SimTimer::start("nothing", 0.0).finish(5.0);
        observe_sim_ms("nothing", 1.0);
    }
}
