//! The structured event data model: levels, field values and events.
//!
//! Everything the tracing layer emits is an [`Event`]: ordinary
//! point-in-time events plus the enter/exit markers of spans. Events are
//! plain data — they serialize through the workspace `serde` (for the
//! JSONL sink and flight-recorder dumps) and compare with `==` (for the
//! capture sink used by tests).
//!
//! Determinism: an event's identity is its monotonically increasing
//! sequence number within the installed telemetry context, assigned in
//! emission order. Nothing here reads a wall clock — callers that want a
//! time axis attach an explicit simulated-time field (idiomatically
//! `sim_ms`), so recorded traces are bit-identical across runs.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Severity of an event, ordered `Trace < Debug < Info < Warn < Error`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum Level {
    /// Highest-volume diagnostics (per-control-step, per-word).
    Trace,
    /// Detailed diagnostics (per-write, per-burst).
    Debug,
    /// Normal operational events (per-run, per-decision).
    #[default]
    Info,
    /// Something went wrong but the machinery recovered or will retry.
    Warn,
    /// A terminal or post-mortem-worthy condition (quarantine, escalation).
    Error,
}

impl Level {
    /// Fixed-width uppercase label for pretty output.
    pub fn label(self) -> &'static str {
        match self {
            Level::Trace => "TRACE",
            Level::Debug => "DEBUG",
            Level::Info => "INFO ",
            Level::Warn => "WARN ",
            Level::Error => "ERROR",
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label().trim_end())
    }
}

/// One typed key/value payload attached to an event or span.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FieldValue {
    /// Boolean flag.
    Bool(bool),
    /// Unsigned integer (counts, indices, millivolts…).
    U64(u64),
    /// Signed integer (margins, deltas).
    I64(i64),
    /// Floating point (temperatures, probabilities, durations).
    F64(f64),
    /// Free-form text (benchmark names, outcome labels).
    Str(String),
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::Bool(v) => write!(f, "{v}"),
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v}"),
        }
    }
}

macro_rules! from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for FieldValue {
            fn from(v: $t) -> Self {
                FieldValue::U64(u64::from(v))
            }
        }
    )*};
}
from_unsigned!(u8, u16, u32, u64);

macro_rules! from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for FieldValue {
            fn from(v: $t) -> Self {
                FieldValue::I64(i64::from(v))
            }
        }
    )*};
}
from_signed!(i8, i16, i32, i64);

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<f32> for FieldValue {
    fn from(v: f32) -> Self {
        FieldValue::F64(f64::from(v))
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_owned())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

impl From<&String> for FieldValue {
    fn from(v: &String) -> Self {
        FieldValue::Str(v.clone())
    }
}

/// What kind of record an [`Event`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EventKind {
    /// A point-in-time event.
    Event,
    /// A span was entered; the span's name is the event name.
    SpanEnter,
    /// A span was exited.
    SpanExit,
}

/// One structured telemetry record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Monotonic sequence number within the telemetry context (emission
    /// order; the deterministic time axis of a trace).
    pub seq: u64,
    /// Record kind.
    pub kind: EventKind,
    /// Severity.
    pub level: Level,
    /// Module path of the emitting code (`module_path!()` at the call
    /// site).
    pub target: String,
    /// Event name (or span name for enter/exit records).
    pub name: String,
    /// Names of the enclosing spans, outermost first. For span enter/exit
    /// records this is the path *around* the span, not including it.
    pub span_path: Vec<String>,
    /// Typed key/value payload, in emission order.
    pub fields: Vec<(String, FieldValue)>,
}

impl Event {
    /// Looks up a field by key.
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// One-line human rendering, indented by span depth.
    pub fn render(&self) -> String {
        let indent = "  ".repeat(self.span_path.len());
        let marker = match self.kind {
            EventKind::Event => "",
            EventKind::SpanEnter => "-> ",
            EventKind::SpanExit => "<- ",
        };
        let mut line = format!(
            "[{:>6}] {} {}{}{}",
            self.seq,
            self.level.label(),
            indent,
            marker,
            self.name
        );
        for (k, v) in &self.fields {
            line.push_str(&format!(" {k}={v}"));
        }
        line.push_str(&format!("  ({})", self.target));
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_ordered() {
        assert!(Level::Trace < Level::Debug);
        assert!(Level::Debug < Level::Info);
        assert!(Level::Info < Level::Warn);
        assert!(Level::Warn < Level::Error);
    }

    #[test]
    fn field_values_convert_from_primitives() {
        assert_eq!(FieldValue::from(7u32), FieldValue::U64(7));
        assert_eq!(FieldValue::from(-3i32), FieldValue::I64(-3));
        assert_eq!(FieldValue::from(1.5f64), FieldValue::F64(1.5));
        assert_eq!(FieldValue::from(true), FieldValue::Bool(true));
        assert_eq!(FieldValue::from("x"), FieldValue::Str("x".into()));
        assert_eq!(FieldValue::from(9usize), FieldValue::U64(9));
    }

    #[test]
    fn event_roundtrips_through_json() {
        let e = Event {
            seq: 42,
            kind: EventKind::Event,
            level: Level::Warn,
            target: "char_fw::runner".into(),
            name: "retry".into(),
            span_path: vec!["campaign".into(), "setup".into()],
            fields: vec![
                ("attempt".into(), FieldValue::U64(2)),
                ("backoff_ms".into(), FieldValue::U64(1000)),
            ],
        };
        let text = serde::json::to_string(&e);
        let back: Event = serde::json::from_str(&text).unwrap();
        assert_eq!(e, back);
    }

    #[test]
    fn render_indents_by_span_depth_and_shows_fields() {
        let e = Event {
            seq: 3,
            kind: EventKind::Event,
            level: Level::Info,
            target: "t".into(),
            name: "run_complete".into(),
            span_path: vec!["campaign".into()],
            fields: vec![("outcome".into(), FieldValue::Str("crash".into()))],
        };
        let line = e.render();
        assert!(line.contains("  run_complete outcome=crash"), "{line}");
        assert!(e.field("outcome").is_some());
        assert!(e.field("missing").is_none());
    }
}
