//! In-tree observability for the guardband characterization stack:
//! structured leveled tracing with spans, a metrics registry with
//! Prometheus-style exposition, a bounded flight recorder for
//! post-mortems, and lightweight profiling timers.
//!
//! # Design
//!
//! Telemetry is dispatched through a **thread-local context** installed
//! with [`Telemetry::install`]. Thread-local (rather than a global
//! static) keeps parallel `cargo test` threads fully isolated: each test
//! installs its own capture sink and sees only its own events, and
//! sequence numbers restart at zero per install so traces are
//! deterministic. The returned [`TelemetryGuard`] restores the previous
//! context on drop, so installs nest.
//!
//! With no context installed, the macros cost one thread-local read and
//! a branch — no field construction, no allocation, no clock reads.
//!
//! # Determinism
//!
//! Events carry a monotonic per-context sequence number as their only
//! time axis; nothing in the event path reads a wall clock. Simulated
//! time enters as an ordinary field (idiomatically `sim_ms`) supplied by
//! the caller. Wall time exists only in profiling histograms
//! ([`profile::WallTimer`]), never in recorded events, so a captured
//! trace is bit-identical across runs of a deterministic simulation.
//!
//! # Example
//!
//! ```
//! use std::rc::Rc;
//! use telemetry::{CaptureSink, Level, Telemetry};
//!
//! let sink = Rc::new(CaptureSink::new());
//! let _guard = Telemetry::new().with_shared_sink(sink.clone()).install();
//!
//! let _campaign = telemetry::span!(Level::Info, "campaign", bench = "milc");
//! telemetry::event!(Level::Warn, "retry", attempt = 2u32, backoff_ms = 1000u64);
//!
//! let events = sink.named("retry");
//! assert_eq!(events.len(), 1);
//! assert_eq!(events[0].span_path, vec!["campaign".to_owned()]);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod event;
pub mod metrics;
pub mod profile;
pub mod recorder;
pub mod sink;

pub use event::{Event, EventKind, FieldValue, Level};
pub use metrics::{series_name, MetricsSnapshot, Registry};
pub use recorder::{FlightDump, FlightRecorder};
pub use sink::{CaptureSink, JsonlSink, PrettySink, Sink};

use std::cell::RefCell;
use std::rc::Rc;

/// The installed per-thread telemetry state.
struct Context {
    sinks: Vec<Rc<dyn Sink>>,
    registry: Option<Rc<Registry>>,
    min_level: Level,
    span_stack: Vec<String>,
    seq: u64,
}

thread_local! {
    static CONTEXT: RefCell<Option<Context>> = const { RefCell::new(None) };
}

/// Builder for a telemetry context.
///
/// Collect sinks (and optionally a metrics registry), then
/// [`install`](Self::install) to make them the thread's active
/// destination for `event!`/`span!`/`counter!` and friends.
#[derive(Default)]
pub struct Telemetry {
    sinks: Vec<Rc<dyn Sink>>,
    registry: Option<Rc<Registry>>,
    min_level: Option<Level>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("sinks", &self.sinks.len())
            .field("has_registry", &self.registry.is_some())
            .field("min_level", &self.min_level)
            .finish()
    }
}

impl Telemetry {
    /// An empty builder: no sinks, no registry.
    pub fn new() -> Self {
        Telemetry::default()
    }

    /// Adds a sink by value.
    #[must_use]
    pub fn with_sink<S: Sink + 'static>(self, sink: S) -> Self {
        self.with_shared_sink(Rc::new(sink))
    }

    /// Adds an already-shared sink; keep your own `Rc` clone to inspect
    /// it later (capture sinks, flight recorders).
    #[must_use]
    pub fn with_shared_sink(mut self, sink: Rc<dyn Sink>) -> Self {
        self.sinks.push(sink);
        self
    }

    /// Attaches a metrics registry for `counter!`/`gauge!`/`observe!`
    /// and the profiling timers.
    #[must_use]
    pub fn with_registry(mut self, registry: Rc<Registry>) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Overrides the context-wide minimum level. Without this the
    /// context admits exactly what its most verbose sink wants (or
    /// `Trace` when a registry but no sink is installed).
    #[must_use]
    pub fn with_min_level(mut self, level: Level) -> Self {
        self.min_level = Some(level);
        self
    }

    /// Installs this context on the current thread, returning a guard
    /// that restores the previous context (if any) when dropped.
    #[must_use = "dropping the guard immediately uninstalls telemetry"]
    pub fn install(self) -> TelemetryGuard {
        let min_level = self.min_level.unwrap_or_else(|| {
            self.sinks
                .iter()
                .map(|s| s.min_level())
                .min()
                .unwrap_or(Level::Trace)
        });
        let ctx = Context {
            sinks: self.sinks,
            registry: self.registry,
            min_level,
            span_stack: Vec::new(),
            seq: 0,
        };
        let prev = CONTEXT.with(|c| c.borrow_mut().replace(ctx));
        TelemetryGuard { prev }
    }
}

/// Restores the previously installed context (or none) when dropped.
pub struct TelemetryGuard {
    prev: Option<Context>,
}

impl std::fmt::Debug for TelemetryGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetryGuard")
            .field("had_previous", &self.prev.is_some())
            .finish()
    }
}

impl Drop for TelemetryGuard {
    fn drop(&mut self) {
        flush();
        let prev = self.prev.take();
        CONTEXT.with(|c| *c.borrow_mut() = prev);
    }
}

/// Whether an event at `level` would currently be dispatched. The
/// macros' fast path: when this is false they construct nothing.
pub fn enabled(level: Level) -> bool {
    CONTEXT.with(|c| {
        c.borrow()
            .as_ref()
            .is_some_and(|ctx| level >= ctx.min_level)
    })
}

/// Whether a metrics registry is installed.
pub fn has_registry() -> bool {
    CONTEXT.with(|c| {
        c.borrow()
            .as_ref()
            .is_some_and(|ctx| ctx.registry.is_some())
    })
}

/// Runs `f` against the installed registry, if any.
pub fn with_registry<R>(f: impl FnOnce(&Registry) -> R) -> Option<R> {
    let reg = CONTEXT.with(|c| c.borrow().as_ref().and_then(|ctx| ctx.registry.clone()));
    reg.map(|r| f(&r))
}

/// Flushes every installed sink.
pub fn flush() {
    let sinks = CONTEXT.with(|c| c.borrow().as_ref().map(|ctx| ctx.sinks.clone()));
    if let Some(sinks) = sinks {
        for sink in sinks {
            sink.flush();
        }
    }
}

/// Assembles an event in the installed context and fans it out to the
/// sinks. Prefer the [`event!`] macro, which adds the `enabled` fast
/// path and captures `module_path!()` for you.
pub fn dispatch_event(level: Level, target: &str, name: &str, fields: Vec<(String, FieldValue)>) {
    dispatch(EventKind::Event, level, target, name, fields);
}

fn dispatch(
    kind: EventKind,
    level: Level,
    target: &str,
    name: &str,
    fields: Vec<(String, FieldValue)>,
) {
    // Assemble under the borrow, then release it before calling sinks so
    // a sink that itself consults telemetry cannot double-borrow.
    let assembled = CONTEXT.with(|c| {
        let mut borrow = c.borrow_mut();
        let ctx = borrow.as_mut()?;
        if level < ctx.min_level {
            return None;
        }
        let seq = ctx.seq;
        ctx.seq += 1;
        let event = Event {
            seq,
            kind,
            level,
            target: target.to_owned(),
            name: name.to_owned(),
            span_path: ctx.span_stack.clone(),
            fields,
        };
        Some((event, ctx.sinks.clone()))
    });
    if let Some((event, sinks)) = assembled {
        for sink in sinks {
            if event.level >= sink.min_level() {
                sink.record(&event);
            }
        }
    }
}

/// RAII handle for an entered span; exits (and emits the `SpanExit`
/// record) on drop. Obtained from the [`span!`] macro.
#[derive(Debug)]
pub struct SpanGuard {
    /// `None` when telemetry was disabled at entry (pure no-op guard).
    name: Option<String>,
    target: String,
    level: Level,
}

/// Enters a span: emits a `SpanEnter` record and pushes `name` onto the
/// thread's span stack. Prefer the [`span!`] macro.
pub fn enter_span(
    level: Level,
    target: &str,
    name: &str,
    fields: Vec<(String, FieldValue)>,
) -> SpanGuard {
    if !enabled(level) {
        return SpanGuard {
            name: None,
            target: String::new(),
            level,
        };
    }
    dispatch(EventKind::SpanEnter, level, target, name, fields);
    CONTEXT.with(|c| {
        if let Some(ctx) = c.borrow_mut().as_mut() {
            ctx.span_stack.push(name.to_owned());
        }
    });
    SpanGuard {
        name: Some(name.to_owned()),
        target: target.to_owned(),
        level,
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(name) = self.name.take() else {
            return;
        };
        // Pop only if this span is still the innermost one — if the
        // context was swapped out underneath us, do nothing.
        let popped = CONTEXT.with(|c| {
            let mut borrow = c.borrow_mut();
            let Some(ctx) = borrow.as_mut() else {
                return false;
            };
            if ctx.span_stack.last() == Some(&name) {
                ctx.span_stack.pop();
                true
            } else {
                false
            }
        });
        if popped {
            dispatch(
                EventKind::SpanExit,
                self.level,
                &self.target,
                &name,
                Vec::new(),
            );
        }
    }
}

/// Emits a structured event: `event!(Level::Warn, "retry", attempt = 2)`.
///
/// Keys are bare identifiers; values are anything with
/// `Into<FieldValue>` (integers, floats, bools, strings). With no
/// installed context this costs one thread-local read — the field
/// expressions are not evaluated.
#[macro_export]
macro_rules! event {
    ($level:expr, $name:expr $(, $key:ident = $value:expr)* $(,)?) => {
        if $crate::enabled($level) {
            $crate::dispatch_event(
                $level,
                module_path!(),
                $name,
                ::std::vec![$((
                    stringify!($key).to_owned(),
                    $crate::FieldValue::from($value),
                )),*],
            );
        }
    };
}

/// Enters a span and returns its [`SpanGuard`]:
/// `let _g = span!(Level::Info, "campaign", bench = "milc");`
///
/// Events emitted while the guard lives carry the span's name in their
/// `span_path`. Bind the guard to a name (`_g`, not `_`) or it exits
/// immediately.
#[macro_export]
macro_rules! span {
    ($level:expr, $name:expr $(, $key:ident = $value:expr)* $(,)?) => {
        $crate::enter_span(
            $level,
            module_path!(),
            $name,
            if $crate::enabled($level) {
                ::std::vec![$((
                    stringify!($key).to_owned(),
                    $crate::FieldValue::from($value),
                )),*]
            } else {
                ::std::vec::Vec::new()
            },
        )
    };
}

/// Increments a counter in the installed registry:
/// `counter!("campaign_runs_total")` or `counter!("ce_total", 3)`.
/// No-op without a registry.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {
        $crate::counter!($name, 1)
    };
    ($name:expr, $delta:expr) => {{
        let _ = $crate::with_registry(|reg| reg.counter_add($name, $delta));
    }};
}

/// Sets a gauge in the installed registry: `gauge!("margin_mv", 15.0)`.
/// No-op without a registry.
#[macro_export]
macro_rules! gauge {
    ($name:expr, $value:expr) => {{
        let _ = $crate::with_registry(|reg| reg.gauge_set($name, $value));
    }};
}

/// Observes a value into a histogram of the installed registry:
/// `observe!("pid_abs_error", err)`. Auto-creates the histogram with
/// [`metrics::SIM_MS_BUCKETS`] unless previously declared. No-op
/// without a registry.
#[macro_export]
macro_rules! observe {
    ($name:expr, $value:expr) => {{
        let _ = $crate::with_registry(|reg| reg.observe($name, $value));
    }};
}

/// Times the rest of the enclosing scope on the wall clock, observing
/// the elapsed seconds into histogram `$name` on scope exit:
/// `time_scope!("vmin_search_seconds");`. No-op without a registry.
#[macro_export]
macro_rules! time_scope {
    ($name:expr) => {
        let _telemetry_wall_timer = $crate::profile::WallTimer::start($name);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_context_means_disabled_and_silent() {
        assert!(!enabled(Level::Error));
        assert!(!has_registry());
        event!(Level::Error, "nothing", n = 1u32);
        let _g = span!(Level::Info, "ghost");
        counter!("nope");
    }

    #[test]
    fn events_reach_sinks_with_monotonic_seq() {
        let sink = Rc::new(CaptureSink::new());
        let _guard = Telemetry::new().with_shared_sink(sink.clone()).install();
        event!(Level::Info, "a", x = 1u32);
        event!(Level::Warn, "b", y = -2i32, label = "hot");
        let events = sink.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[1].seq, 1);
        assert_eq!(
            events[1].field("label"),
            Some(&FieldValue::Str("hot".into()))
        );
        assert_eq!(events[1].target, module_path!());
    }

    #[test]
    fn spans_nest_and_unwind_in_order() {
        let sink = Rc::new(CaptureSink::new());
        let _guard = Telemetry::new().with_shared_sink(sink.clone()).install();
        {
            let _c = span!(Level::Info, "campaign", bench = "milc");
            {
                let _s = span!(Level::Debug, "setup", voltage_mv = 900u32);
                event!(Level::Info, "run_complete", outcome = "correct");
            }
            event!(Level::Info, "between");
        }
        let events = sink.events();
        let kinds: Vec<EventKind> = events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::SpanEnter,
                EventKind::SpanEnter,
                EventKind::Event,
                EventKind::SpanExit,
                EventKind::Event,
                EventKind::SpanExit,
            ]
        );
        assert_eq!(
            events[2].span_path,
            vec!["campaign".to_owned(), "setup".to_owned()]
        );
        assert_eq!(events[4].span_path, vec!["campaign".to_owned()]);
        // Exit records carry the path *around* the span.
        assert_eq!(events[3].span_path, vec!["campaign".to_owned()]);
        assert!(events[5].span_path.is_empty());
    }

    #[test]
    fn min_level_filters_and_defaults_to_most_verbose_sink() {
        let sink = Rc::new(CaptureSink::new().with_min_level(Level::Info));
        let _guard = Telemetry::new().with_shared_sink(sink.clone()).install();
        assert!(!enabled(Level::Debug), "context min follows sink min");
        assert!(enabled(Level::Info));
        event!(Level::Debug, "dropped");
        event!(Level::Info, "kept");
        assert_eq!(sink.len(), 1);
    }

    #[test]
    fn per_sink_levels_filter_independently() {
        let verbose = Rc::new(CaptureSink::new());
        let quiet = Rc::new(CaptureSink::new().with_min_level(Level::Warn));
        let _guard = Telemetry::new()
            .with_shared_sink(verbose.clone())
            .with_shared_sink(quiet.clone())
            .install();
        event!(Level::Info, "routine");
        event!(Level::Error, "bad");
        assert_eq!(verbose.len(), 2);
        assert_eq!(quiet.len(), 1);
        assert_eq!(quiet.events()[0].name, "bad");
    }

    #[test]
    fn guard_restores_previous_context() {
        let outer = Rc::new(CaptureSink::new());
        let _outer_guard = Telemetry::new().with_shared_sink(outer.clone()).install();
        event!(Level::Info, "outer_before");
        {
            let inner = Rc::new(CaptureSink::new());
            let _inner_guard = Telemetry::new().with_shared_sink(inner.clone()).install();
            event!(Level::Info, "inner_only");
            assert_eq!(inner.len(), 1);
        }
        event!(Level::Info, "outer_after");
        let names: Vec<String> = outer.events().iter().map(|e| e.name.clone()).collect();
        assert_eq!(
            names,
            vec!["outer_before".to_owned(), "outer_after".to_owned()]
        );
        // seq resumes in the restored context without gaps from the inner one.
        assert_eq!(outer.events()[1].seq, 1);
    }

    #[test]
    fn registry_macros_accumulate() {
        let reg = Rc::new(Registry::new());
        let _guard = Telemetry::new().with_registry(reg.clone()).install();
        counter!("runs_total");
        counter!("runs_total", 4);
        gauge!("margin_mv", 12.5);
        observe!("lat_ms", 3.0);
        assert_eq!(reg.counter("runs_total"), 5);
        assert_eq!(reg.gauge("margin_mv"), Some(12.5));
        assert_eq!(reg.histogram("lat_ms").unwrap().count, 1);
    }

    #[test]
    fn registry_only_context_admits_trace() {
        let reg = Rc::new(Registry::new());
        let _guard = Telemetry::new().with_registry(reg).install();
        assert!(enabled(Level::Trace));
    }

    #[test]
    fn time_scope_macro_records_once() {
        let reg = Rc::new(Registry::new());
        let _guard = Telemetry::new().with_registry(reg.clone()).install();
        {
            time_scope!("step_seconds");
        }
        assert_eq!(reg.histogram("step_seconds").unwrap().count, 1);
    }

    #[test]
    fn flight_recorder_integrates_as_sink() {
        let rec = Rc::new(FlightRecorder::with_capacity(16));
        let _guard = Telemetry::new().with_shared_sink(rec.clone()).install();
        for i in 0..5u32 {
            event!(Level::Info, "step", i = i);
        }
        event!(Level::Error, "quarantine", setup = "milc@830mV");
        let dumps = rec.dumps();
        assert_eq!(dumps.len(), 1);
        assert_eq!(dumps[0].events.len(), 6);
        assert_eq!(dumps[0].trigger_name, "quarantine");
        let seqs: Vec<u64> = dumps[0].events.iter().map(|e| e.seq).collect();
        assert!(seqs.windows(2).all(|w| w[0] < w[1]), "emission order");
    }
}
