//! The flight recorder: a bounded ring buffer of recent events, dumped
//! when a post-mortem-worthy event fires.
//!
//! The DSN'18 framework babysits boards for weeks; when a setup finally
//! crashes the board hard enough to be quarantined, what matters is the
//! *lead-up* — the V/F writes, retries and outcomes immediately before.
//! The recorder retains the last `capacity` events it saw and, when a
//! trigger event arrives (by default anything at [`Level::Error`], plus
//! any explicitly named events), snapshots the whole buffer into a
//! [`FlightDump`]. Dumps are deterministic: events appear in emission
//! (sequence) order, and nothing in them depends on wall time.

use crate::event::{Event, Level};
use crate::sink::Sink;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt::Write as _;

/// One post-mortem snapshot taken by the [`FlightRecorder`].
///
/// Serializable so campaign outcomes can carry their dumps across
/// worker boundaries and checkpoints (the observatory reconstructs
/// incidents from them).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlightDump {
    /// Sequence number of the event that triggered the dump.
    pub trigger_seq: u64,
    /// Name of the triggering event.
    pub trigger_name: String,
    /// The retained events in emission order; the triggering event is the
    /// last entry.
    pub events: Vec<Event>,
}

impl FlightDump {
    /// Multi-line human rendering of the dump.
    pub fn render(&self) -> String {
        let mut out = format!(
            "=== flight recorder dump: `{}` at seq {} ({} events retained) ===\n",
            self.trigger_name,
            self.trigger_seq,
            self.events.len()
        );
        for e in &self.events {
            let _ = writeln!(out, "{}", e.render());
        }
        out.push_str("=== end of dump ===\n");
        out
    }
}

#[derive(Debug)]
struct RecorderInner {
    buf: VecDeque<Event>,
    dumps: Vec<FlightDump>,
}

/// The bounded ring-buffer recorder; install it as a sink.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    trigger_level: Level,
    trigger_names: Vec<String>,
    max_dumps: usize,
    min_level: Level,
    inner: RefCell<RecorderInner>,
}

impl FlightRecorder {
    /// Default buffer capacity: comfortably more than the ≥ 64 events a
    /// post-mortem needs for context.
    pub const DEFAULT_CAPACITY: usize = 256;

    /// A recorder retaining [`Self::DEFAULT_CAPACITY`] events, dumping on
    /// any `Error`-level event, keeping at most 8 dumps.
    pub fn new() -> Self {
        FlightRecorder::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// A recorder retaining the last `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "flight recorder capacity must be positive");
        FlightRecorder {
            capacity,
            trigger_level: Level::Error,
            trigger_names: Vec::new(),
            max_dumps: 8,
            min_level: Level::Trace,
            inner: RefCell::new(RecorderInner {
                buf: VecDeque::with_capacity(capacity),
                dumps: Vec::new(),
            }),
        }
    }

    /// Also dumps whenever an event with this exact name arrives,
    /// regardless of its level.
    #[must_use]
    pub fn with_trigger_name(mut self, name: &str) -> Self {
        self.trigger_names.push(name.to_owned());
        self
    }

    /// Changes the level at (and above) which events trigger a dump.
    #[must_use]
    pub fn with_trigger_level(mut self, level: Level) -> Self {
        self.trigger_level = level;
        self
    }

    /// Caps how many dumps are retained (later triggers are counted but
    /// not snapshotted, bounding memory on a pathological campaign).
    #[must_use]
    pub fn with_max_dumps(mut self, max: usize) -> Self {
        self.max_dumps = max;
        self
    }

    /// Restricts which events are retained at all.
    #[must_use]
    pub fn with_min_level(mut self, level: Level) -> Self {
        self.min_level = level;
        self
    }

    /// Copies of the dumps taken so far, in trigger order: dump `i`'s
    /// `trigger_seq` is strictly less than dump `i + 1`'s, because a
    /// dump is snapshotted synchronously when its trigger event is
    /// recorded and sequence numbers are emission-ordered.
    pub fn dumps(&self) -> Vec<FlightDump> {
        self.inner.borrow().dumps.clone()
    }

    /// Removes and returns the dumps taken so far.
    ///
    /// # Ordering contract
    ///
    /// Dumps come back in trigger order (strictly increasing
    /// `trigger_seq`), each dump's `events` are in emission order with
    /// the trigger event as the **last** entry, and each dump is a
    /// strict suffix of the event stream the recorder retained at
    /// trigger time — the recorder never reorders, samples, or
    /// deduplicates. Consumers (the observatory's incident
    /// reconstructor, checkpoint embedding) rely on all three.
    pub fn take_dumps(&self) -> Vec<FlightDump> {
        std::mem::take(&mut self.inner.borrow_mut().dumps)
    }

    /// Number of events currently retained in the ring.
    pub fn retained(&self) -> usize {
        self.inner.borrow().buf.len()
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new()
    }
}

impl Sink for FlightRecorder {
    fn record(&self, event: &Event) {
        let mut inner = self.inner.borrow_mut();
        if inner.buf.len() == self.capacity {
            inner.buf.pop_front();
        }
        inner.buf.push_back(event.clone());
        let triggered =
            event.level >= self.trigger_level || self.trigger_names.contains(&event.name);
        if triggered && inner.dumps.len() < self.max_dumps {
            let events: Vec<Event> = inner.buf.iter().cloned().collect();
            inner.dumps.push(FlightDump {
                trigger_seq: event.seq,
                trigger_name: event.name.clone(),
                events,
            });
        }
    }

    fn min_level(&self) -> Level {
        self.min_level
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, FieldValue};

    fn ev(seq: u64, level: Level, name: &str) -> Event {
        Event {
            seq,
            kind: EventKind::Event,
            level,
            target: "t".into(),
            name: name.into(),
            span_path: vec![],
            fields: vec![("seq".into(), FieldValue::U64(seq))],
        }
    }

    #[test]
    fn ring_keeps_only_the_last_capacity_events() {
        let rec = FlightRecorder::with_capacity(4);
        for i in 0..10 {
            rec.record(&ev(i, Level::Info, "e"));
        }
        assert_eq!(rec.retained(), 4);
        rec.record(&ev(10, Level::Error, "boom"));
        let dumps = rec.dumps();
        assert_eq!(dumps.len(), 1);
        let seqs: Vec<u64> = dumps[0].events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![7, 8, 9, 10], "oldest evicted, trigger last");
    }

    #[test]
    fn dump_triggers_on_level_and_on_name() {
        let rec = FlightRecorder::with_capacity(8).with_trigger_name("quarantine");
        rec.record(&ev(0, Level::Warn, "retry"));
        assert!(rec.dumps().is_empty());
        rec.record(&ev(1, Level::Info, "quarantine"));
        rec.record(&ev(2, Level::Error, "escalated"));
        let dumps = rec.dumps();
        assert_eq!(dumps.len(), 2);
        assert_eq!(dumps[0].trigger_name, "quarantine");
        assert_eq!(dumps[0].trigger_seq, 1);
        assert_eq!(dumps[1].trigger_name, "escalated");
    }

    #[test]
    fn max_dumps_bounds_memory() {
        let rec = FlightRecorder::with_capacity(4).with_max_dumps(2);
        for i in 0..5 {
            rec.record(&ev(i, Level::Error, "boom"));
        }
        assert_eq!(rec.dumps().len(), 2);
        assert_eq!(rec.take_dumps().len(), 2);
        assert!(rec.dumps().is_empty());
    }

    #[test]
    fn render_contains_trigger_and_events() {
        let rec = FlightRecorder::with_capacity(4);
        rec.record(&ev(0, Level::Info, "before"));
        rec.record(&ev(1, Level::Error, "boom"));
        let dump = &rec.dumps()[0];
        let text = dump.render();
        assert!(text.contains("`boom` at seq 1"), "{text}");
        assert!(text.contains("before"), "{text}");
    }
}
