//! Pluggable event sinks: pretty-printing, JSONL and test capture.
//!
//! A [`Sink`] receives every dispatched [`Event`] at or above its
//! [`Sink::min_level`]. Sinks take `&self` and use interior mutability so
//! they can be shared as `Rc<dyn Sink>` between the dispatcher and the
//! code that later inspects them (tests reading a [`CaptureSink`], a
//! post-mortem reading a flight recorder).

use crate::event::{Event, Level};
use std::cell::RefCell;
use std::io::Write;

/// A destination for dispatched events.
pub trait Sink {
    /// Receives one event (already filtered by the dispatcher against
    /// [`Self::min_level`]).
    fn record(&self, event: &Event);

    /// The least severe level this sink wants to see.
    fn min_level(&self) -> Level {
        Level::Trace
    }

    /// Flushes any buffered output.
    fn flush(&self) {}
}

/// Human-readable pretty printer over any writer (stderr by default).
///
/// Output is one line per event, indented two spaces per enclosing span,
/// with `->`/`<-` markers for span enter/exit.
pub struct PrettySink<W: Write> {
    writer: RefCell<W>,
    min_level: Level,
}

impl PrettySink<std::io::Stderr> {
    /// A pretty printer on stderr at `Info` verbosity.
    pub fn stderr() -> Self {
        PrettySink {
            writer: RefCell::new(std::io::stderr()),
            min_level: Level::Info,
        }
    }
}

impl<W: Write> PrettySink<W> {
    /// A pretty printer over an arbitrary writer at `Info` verbosity.
    pub fn new(writer: W) -> Self {
        PrettySink {
            writer: RefCell::new(writer),
            min_level: Level::Info,
        }
    }

    /// Lowers (or raises) the verbosity threshold.
    #[must_use]
    pub fn with_min_level(mut self, level: Level) -> Self {
        self.min_level = level;
        self
    }
}

impl<W: Write> std::fmt::Debug for PrettySink<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrettySink")
            .field("min_level", &self.min_level)
            .finish_non_exhaustive()
    }
}

impl<W: Write> Sink for PrettySink<W> {
    fn record(&self, event: &Event) {
        // A full stderr (or broken pipe) must never take the simulation
        // down; drop the line instead.
        let _ = writeln!(self.writer.borrow_mut(), "{}", event.render());
    }

    fn min_level(&self) -> Level {
        self.min_level
    }

    fn flush(&self) {
        let _ = self.writer.borrow_mut().flush();
    }
}

/// Machine-readable sink: one JSON object per line, encoded through the
/// workspace `serde`.
pub struct JsonlSink<W: Write> {
    writer: RefCell<W>,
    min_level: Level,
}

impl<W: Write> JsonlSink<W> {
    /// A JSONL writer capturing everything down to `Trace`.
    pub fn new(writer: W) -> Self {
        JsonlSink {
            writer: RefCell::new(writer),
            min_level: Level::Trace,
        }
    }

    /// Restricts the sink to `level` and above.
    #[must_use]
    pub fn with_min_level(mut self, level: Level) -> Self {
        self.min_level = level;
        self
    }
}

impl JsonlSink<Vec<u8>> {
    /// An in-memory JSONL buffer (tests, examples).
    pub fn in_memory() -> Self {
        JsonlSink::new(Vec::new())
    }

    /// The captured JSONL text so far.
    pub fn contents(&self) -> String {
        String::from_utf8_lossy(&self.writer.borrow()).into_owned()
    }
}

impl<W: Write> std::fmt::Debug for JsonlSink<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink")
            .field("min_level", &self.min_level)
            .finish_non_exhaustive()
    }
}

impl<W: Write> Sink for JsonlSink<W> {
    fn record(&self, event: &Event) {
        let line = serde::json::to_string(event);
        let _ = writeln!(self.writer.borrow_mut(), "{line}");
    }

    fn min_level(&self) -> Level {
        self.min_level
    }

    fn flush(&self) {
        let _ = self.writer.borrow_mut().flush();
    }
}

/// Test sink: buffers every event for later assertions.
///
/// Events are additionally indexed by name as they arrive, so
/// [`CaptureSink::named`] stays O(matches) however large the capture
/// grows — observatory-scale runs feed hundreds of thousands of events
/// through one sink and query a handful of names afterwards.
#[derive(Debug, Default)]
pub struct CaptureSink {
    events: RefCell<Vec<Event>>,
    by_name: RefCell<std::collections::BTreeMap<String, Vec<usize>>>,
    min_level: Level,
}

impl CaptureSink {
    /// A capture sink recording everything down to `Trace`.
    pub fn new() -> Self {
        CaptureSink {
            events: RefCell::new(Vec::new()),
            by_name: RefCell::new(std::collections::BTreeMap::new()),
            min_level: Level::Trace,
        }
    }

    /// Restricts the capture to `level` and above.
    #[must_use]
    pub fn with_min_level(mut self, level: Level) -> Self {
        self.min_level = level;
        self
    }

    /// A copy of every captured event, in emission order.
    pub fn events(&self) -> Vec<Event> {
        self.events.borrow().clone()
    }

    /// Captured events whose name matches, in emission order
    /// (indexed: proportional to the number of matches, not the size
    /// of the capture).
    pub fn named(&self, name: &str) -> Vec<Event> {
        let events = self.events.borrow();
        self.by_name
            .borrow()
            .get(name)
            .map(|indices| indices.iter().map(|&i| events[i].clone()).collect())
            .unwrap_or_default()
    }

    /// Number of captured events.
    pub fn len(&self) -> usize {
        self.events.borrow().len()
    }

    /// Whether nothing has been captured yet.
    pub fn is_empty(&self) -> bool {
        self.events.borrow().is_empty()
    }

    /// Drops everything captured so far.
    pub fn clear(&self) {
        self.events.borrow_mut().clear();
        self.by_name.borrow_mut().clear();
    }
}

impl Sink for CaptureSink {
    fn record(&self, event: &Event) {
        let mut events = self.events.borrow_mut();
        self.by_name
            .borrow_mut()
            .entry(event.name.clone())
            .or_default()
            .push(events.len());
        events.push(event.clone());
    }

    fn min_level(&self) -> Level {
        self.min_level
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, FieldValue};

    fn sample(seq: u64, level: Level) -> Event {
        Event {
            seq,
            kind: EventKind::Event,
            level,
            target: "t".into(),
            name: "e".into(),
            span_path: vec![],
            fields: vec![("k".into(), FieldValue::U64(seq))],
        }
    }

    #[test]
    fn capture_sink_buffers_in_order() {
        let sink = CaptureSink::new();
        sink.record(&sample(1, Level::Info));
        sink.record(&sample(2, Level::Warn));
        let seqs: Vec<u64> = sink.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![1, 2]);
        assert_eq!(sink.len(), 2);
        sink.clear();
        assert!(sink.is_empty());
    }

    #[test]
    fn named_uses_the_index_and_survives_clear() {
        let sink = CaptureSink::new();
        for seq in 0..10 {
            let mut event = sample(seq, Level::Info);
            event.name = if seq % 3 == 0 {
                "fizz".into()
            } else {
                "e".into()
            };
            sink.record(&event);
        }
        let fizz = sink.named("fizz");
        assert_eq!(fizz.len(), 4);
        assert!(fizz.windows(2).all(|w| w[0].seq < w[1].seq));
        assert!(sink.named("absent").is_empty());
        sink.clear();
        assert!(sink.named("fizz").is_empty());
        sink.record(&sample(99, Level::Info));
        assert_eq!(sink.named("e").len(), 1);
    }

    #[test]
    fn jsonl_sink_writes_one_decodable_object_per_line() {
        let sink = JsonlSink::in_memory();
        sink.record(&sample(1, Level::Info));
        sink.record(&sample(2, Level::Debug));
        let text = sink.contents();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for (i, line) in lines.iter().enumerate() {
            let back: Event = serde::json::from_str(line).unwrap();
            assert_eq!(back.seq, i as u64 + 1);
        }
    }

    #[test]
    fn pretty_sink_renders_lines() {
        let sink = PrettySink::new(Vec::new());
        sink.record(&sample(7, Level::Warn));
        let text = String::from_utf8(sink.writer.into_inner()).unwrap();
        assert!(text.contains("WARN"), "{text}");
        assert!(text.contains("k=7"), "{text}");
    }
}
