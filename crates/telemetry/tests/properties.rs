//! Property tests: flight-recorder dumps must reproduce emission order
//! exactly, for any interleaving of events, spans and severities, and
//! JSONL traces must round-trip losslessly.

use proptest::prelude::*;
use std::rc::Rc;
use telemetry::{CaptureSink, Event, FlightRecorder, JsonlSink, Level, SpanGuard, Telemetry};

fn arb_level() -> impl Strategy<Value = Level> {
    prop_oneof![
        Just(Level::Trace),
        Just(Level::Debug),
        Just(Level::Info),
        Just(Level::Warn),
        Just(Level::Error),
    ]
}

/// One step of an arbitrary instrumented program.
#[derive(Debug, Clone)]
enum Op {
    /// Emit a point event at this level.
    Emit(Level),
    /// Enter a span (always `Info`, so only `Emit(Error)` triggers dumps).
    Push,
    /// Exit the innermost open span, if any.
    Pop,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        arb_level().prop_map(Op::Emit),
        Just(Op::Push),
        Just(Op::Pop),
    ]
}

proptest! {
    /// Every dump is the exact trailing window of the emission sequence
    /// at its trigger point: contiguous, in order, trigger last, and
    /// event-for-event identical to what the sinks saw.
    #[test]
    fn flight_dump_matches_emission_order(
        ops in proptest::collection::vec(arb_op(), 1..200),
        capacity in 1usize..64,
    ) {
        let rec = Rc::new(
            FlightRecorder::with_capacity(capacity).with_max_dumps(usize::MAX),
        );
        let cap = Rc::new(CaptureSink::new());
        let guard = Telemetry::new()
            .with_shared_sink(rec.clone())
            .with_shared_sink(cap.clone())
            .install();
        let mut spans: Vec<SpanGuard> = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            match op {
                Op::Emit(level) => telemetry::event!(*level, "op", i = i),
                Op::Push => spans.push(telemetry::span!(Level::Info, "s")),
                Op::Pop => {
                    spans.pop();
                }
            }
        }
        drop(spans);
        drop(guard);

        let emitted = cap.events();
        for (i, e) in emitted.iter().enumerate() {
            prop_assert_eq!(e.seq, i as u64, "seq is emission order");
        }
        let dumps = rec.dumps();
        for dump in &dumps {
            let trigger = dump.trigger_seq as usize;
            let start = (trigger + 1).saturating_sub(capacity);
            let expected: Vec<u64> = (start..=trigger).map(|s| s as u64).collect();
            let got: Vec<u64> = dump.events.iter().map(|e| e.seq).collect();
            prop_assert_eq!(&got, &expected, "contiguous window ending at trigger");
            for e in &dump.events {
                prop_assert_eq!(e, &emitted[e.seq as usize]);
            }
        }
        let errors = emitted.iter().filter(|e| e.level == Level::Error).count();
        prop_assert_eq!(dumps.len(), errors, "one dump per Error event");
    }

    /// A JSONL trace decodes back to exactly the captured events.
    #[test]
    fn jsonl_roundtrips_arbitrary_traces(
        levels in proptest::collection::vec(arb_level(), 1..100),
    ) {
        let jsonl = Rc::new(JsonlSink::in_memory());
        let cap = Rc::new(CaptureSink::new());
        let guard = Telemetry::new()
            .with_shared_sink(jsonl.clone())
            .with_shared_sink(cap.clone())
            .install();
        for (i, level) in levels.iter().enumerate() {
            telemetry::event!(
                *level,
                "op",
                i = i,
                half = i as f64 * 0.5,
                neg = -(i as i64),
                even = i % 2 == 0,
                label = "trace",
            );
        }
        drop(guard);
        let decoded: Vec<Event> = jsonl
            .contents()
            .lines()
            .map(|line| serde::json::from_str(line).unwrap())
            .collect();
        prop_assert_eq!(decoded, cap.events());
    }
}
