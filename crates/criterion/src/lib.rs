//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the slice of the criterion 0.5 API its benches use:
//! [`Criterion`] with the `sample_size` / `measurement_time` /
//! `warm_up_time` builders, [`Criterion::bench_function`],
//! [`Bencher::iter`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! Measurement is deliberately simple: after a warm-up phase, each
//! sample times a batch of iterations with `std::time::Instant` and the
//! harness prints the median, minimum and maximum per-iteration time.
//! There is no statistical analysis, plotting or HTML report — the goal
//! is a working `cargo bench` that gives honest order-of-magnitude
//! numbers offline.

use std::time::{Duration, Instant};

/// The benchmark harness: collects timing samples per named function.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Sets how many timing samples to collect per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the target total measurement time per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Sets the warm-up time before measurement starts.
    #[must_use]
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Runs one named benchmark and prints its timing summary.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // Warm-up: also calibrates how many iterations fit in a sample.
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            warm_iters += bencher.iters;
        }
        let warm_elapsed = warm_start.elapsed().max(Duration::from_nanos(1));
        let per_iter = warm_elapsed.as_secs_f64() / warm_iters.max(1) as f64;

        // Aim for `sample_size` samples inside `measurement_time`.
        let per_sample = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = (per_sample / per_iter.max(1e-12)).ceil().max(1.0) as u64;

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            bencher.iters = iters_per_sample;
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            samples_ns.push(bencher.elapsed.as_nanos() as f64 / iters_per_sample as f64);
        }
        samples_ns.sort_by(|a, b| a.total_cmp(b));
        let median = samples_ns[samples_ns.len() / 2];
        let min = samples_ns[0];
        let max = samples_ns[samples_ns.len() - 1];
        println!(
            "{name:<40} time: [{} {} {}] ({} samples x {} iters)",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(max),
            self.sample_size,
            iters_per_sample,
        );
        self
    }
}

/// Handed to each benchmark closure; times the hot loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it the harness-chosen number of times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed += start.elapsed();
    }
}

/// Hints the optimizer to keep `value` (re-export for bench code).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group, in either the positional or the
/// `name = / config = / targets =` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut calls = 0u64;
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        c.bench_function("smoke", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn nanosecond_formatting_scales() {
        assert!(fmt_ns(12.3).ends_with("ns"));
        assert!(fmt_ns(12_300.0).ends_with("us"));
        assert!(fmt_ns(12_300_000.0).ends_with("ms"));
        assert!(fmt_ns(12_300_000_000.0).ends_with("s"));
    }
}
