//! Resilient campaign execution: retry policies, quarantine bookkeeping
//! and checkpoint/resume state.
//!
//! The DSN'18 framework babysits boards for weeks, so the execution phase
//! has to survive the harness's own failure modes: power cycles that do
//! not bring the board back, reboots that loop in firmware, and V/F
//! restores that the freshly booted firmware silently drops. This module
//! holds the pieces the [`runner`](crate::runner) uses to do that:
//!
//! * [`RetryPolicy`] — bounded retry with exponential backoff for failed
//!   power cycles (the backoff is bookkeeping, not wall-clock sleeping:
//!   the simulation records what the real framework would have waited);
//! * [`ResilienceConfig`] — how aggressively to retry crashed setups
//!   before quarantining them;
//! * [`QuarantineRecord`] / [`QuarantineTracker`] — (setup, benchmark)
//!   points that crashed the board too many consecutive times and were
//!   pulled from the walk;
//! * [`RecoveryStats`] — the campaign-level tally of everything the
//!   recovery machinery did;
//! * [`CampaignCheckpoint`] — a complete serializable snapshot of a
//!   campaign in flight, taken at a run boundary, from which
//!   [`ResilientRunner`](crate::runner::ResilientRunner) resumes
//!   bit-identically.

use crate::runner::CampaignResult;
use crate::safety::TenantAttribution;
use crate::setup::{Setup, VminCampaign};
use power_model::units::Millivolts;
use serde::{Deserialize, Serialize};
use telemetry::metrics::MetricsSnapshot;
use telemetry::Level;
use xgene_sim::server::XGene2Server;

/// Bounded exponential backoff for failed power cycles.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Maximum retries after the first failed attempt.
    pub max_retries: u32,
    /// Backoff before the first retry, in milliseconds.
    pub base_backoff_ms: u64,
    /// Multiplier applied per subsequent retry.
    pub factor: u32,
    /// Ceiling on any single backoff interval, in milliseconds.
    pub cap_ms: u64,
}

impl RetryPolicy {
    /// The framework's IPMI recovery schedule: up to 8 retries starting at
    /// 500 ms and doubling to a 30 s cap.
    pub fn dsn18() -> Self {
        RetryPolicy {
            max_retries: 8,
            base_backoff_ms: 500,
            factor: 2,
            cap_ms: 30_000,
        }
    }

    /// The backoff before retry `attempt` (0-based), capped.
    pub fn backoff_ms(&self, attempt: u32) -> u64 {
        let mut b = self.base_backoff_ms;
        for _ in 0..attempt {
            b = b.saturating_mul(u64::from(self.factor));
            if b >= self.cap_ms {
                return self.cap_ms;
            }
        }
        b.min(self.cap_ms)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::dsn18()
    }
}

/// How the execution loop reacts to harness faults.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResilienceConfig {
    /// Power-cycle retry schedule.
    pub retry: RetryPolicy,
    /// Consecutive crashes tolerated at one setup before quarantining it.
    /// `0` reproduces the legacy behavior: the first crash ends the walk
    /// with no retry and no quarantine record.
    pub crash_retries: u32,
    /// How many times a dropped V/F restore is re-issued before giving up.
    pub setup_restore_attempts: u32,
    /// Run a DMR sentinel check every this many campaign runs (0 disables
    /// sentinels — the legacy and plain-dsn18 behavior, so existing
    /// deterministic walks are unperturbed). Defaults to 0 when absent so
    /// old checkpoints still decode.
    #[serde(default)]
    pub sentinel_every: u32,
}

impl ResilienceConfig {
    /// The legacy, non-resilient configuration: no crash retries (a crash
    /// immediately ends the walk, as the seed runner behaved), but lost
    /// setup writes are still re-issued so a fault plan cannot silently
    /// corrupt a measurement.
    pub fn legacy() -> Self {
        ResilienceConfig {
            retry: RetryPolicy::dsn18(),
            crash_retries: 0,
            setup_restore_attempts: 16,
            sentinel_every: 0,
        }
    }

    /// The resilient production configuration: crashes are retried twice
    /// before the point is quarantined.
    pub fn dsn18() -> Self {
        ResilienceConfig {
            crash_retries: 2,
            ..ResilienceConfig::legacy()
        }
    }

    /// The guarded production configuration: everything in
    /// [`ResilienceConfig::dsn18`] plus a DMR sentinel check every 25
    /// campaign runs feeding the campaign's circuit breaker.
    pub fn guarded() -> Self {
        ResilienceConfig {
            sentinel_every: 25,
            ..ResilienceConfig::dsn18()
        }
    }
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig::legacy()
    }
}

/// A characterization point pulled from the walk because it kept crashing
/// the board.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuarantineRecord {
    /// Benchmark running when the crashes happened.
    pub benchmark: String,
    /// The offending setup.
    pub setup: Setup,
    /// Consecutive crashes observed before quarantine.
    pub consecutive_crashes: u32,
    /// Who the quarantine blames: the board's own silicon (the default,
    /// and what every legacy record decodes to) or an adversarial
    /// co-tenant whose droop caused the crashes.
    #[serde(default)]
    pub attribution: TenantAttribution,
}

/// Tracks consecutive crashes per setup and decides quarantine.
///
/// Keyed linearly on [`Setup`] (campaigns visit at most a few hundred
/// setups, and `Setup` has no ordering), and only ever tracking the
/// current walk position, the tracker stays tiny.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct QuarantineTracker {
    counts: Vec<(Setup, u32)>,
    quarantined: Vec<Setup>,
}

impl QuarantineTracker {
    /// Records one crash at `setup`; returns the new consecutive count.
    pub fn record_crash(&mut self, setup: Setup) -> u32 {
        if let Some(entry) = self.counts.iter_mut().find(|(s, _)| *s == setup) {
            entry.1 += 1;
            return entry.1;
        }
        self.counts.push((setup, 1));
        1
    }

    /// Records a clean run at `setup`, breaking its crash streak.
    pub fn record_ok(&mut self, setup: Setup) {
        self.counts.retain(|(s, _)| *s != setup);
    }

    /// Marks `setup` quarantined.
    pub fn quarantine(&mut self, setup: Setup) {
        if !self.is_quarantined(setup) {
            self.quarantined.push(setup);
        }
    }

    /// Whether `setup` has been quarantined.
    pub fn is_quarantined(&self, setup: Setup) -> bool {
        self.quarantined.contains(&setup)
    }

    /// Number of quarantined setups.
    pub fn quarantined_count(&self) -> usize {
        self.quarantined.len()
    }
}

/// Campaign-level tally of the recovery machinery.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryStats {
    /// Power cycles that left the board hung.
    pub failed_power_cycles: u64,
    /// Extra power-cycle attempts issued by the retry loop.
    pub reset_retries: u64,
    /// Backoff the real framework would have slept, in milliseconds.
    pub total_backoff_ms: u64,
    /// V/F restore writes re-issued after the firmware dropped them.
    pub setup_restores: u64,
    /// Setups quarantined for crashing the board repeatedly.
    pub quarantined_points: u64,
    /// Precautionary resets issued after uncorrectable errors.
    pub precautionary_resets: u64,
}

impl RecoveryStats {
    /// Whether any recovery action was needed at all.
    pub fn any_recovery(&self) -> bool {
        *self != RecoveryStats::default()
    }

    /// Folds one board recovery into the campaign tally.
    pub fn absorb(&mut self, recovery: &BoardRecovery) {
        self.failed_power_cycles += recovery.failed_cycles;
        self.reset_retries += u64::from(recovery.retries);
        self.total_backoff_ms += recovery.backoff_ms;
    }
}

/// What one [`recover_board`] call had to do.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BoardRecovery {
    /// Power-cycle retries issued (0 if the board was not hung).
    pub retries: u32,
    /// Backoff the real framework would have slept, in milliseconds.
    pub backoff_ms: u64,
    /// Cycles that still left the board hung (including the one that hung
    /// it in the first place).
    pub failed_cycles: u64,
    /// Whether the retry budget ran out and the operator had to reseat
    /// the board ([`XGene2Server::force_recover`]).
    pub escalated: bool,
}

/// Drives a hung board back up: power-cycle retries with exponential
/// backoff per `retry`, escalating to operator-level recovery
/// ([`XGene2Server::force_recover`], which always succeeds) once the
/// retry budget is exhausted. A board that is not hung is left untouched
/// and costs nothing.
pub fn recover_board(server: &mut XGene2Server, retry: &RetryPolicy) -> BoardRecovery {
    let mut recovery = BoardRecovery::default();
    if !server.is_hung() {
        return recovery;
    }
    recovery.failed_cycles += 1; // the cycle that hung the board
    while recovery.retries < retry.max_retries {
        let backoff = retry.backoff_ms(recovery.retries);
        recovery.backoff_ms += backoff;
        recovery.retries += 1;
        telemetry::event!(
            Level::Warn,
            "recovery_retry",
            attempt = recovery.retries,
            backoff_ms = backoff,
        );
        telemetry::counter!("recovery_retries_total");
        telemetry::counter!("recovery_backoff_ms_total", backoff);
        if server.power_cycle() {
            telemetry::event!(
                Level::Info,
                "board_recovered",
                retries = recovery.retries,
                backoff_ms = recovery.backoff_ms,
            );
            return recovery;
        }
        recovery.failed_cycles += 1;
    }
    telemetry::event!(
        Level::Warn,
        "recovery_escalated",
        retries = recovery.retries,
        backoff_ms = recovery.backoff_ms,
    );
    server.force_recover();
    recovery.escalated = true;
    recovery
}

/// Applies `v` to the PMD rail and read-back-verifies it, re-issuing the
/// write whenever a faulty firmware silently dropped it. Returns the
/// number of restores that were needed (0 on a healthy board).
///
/// A lost write is only detectable when the rail was at a *different*
/// voltage — a dropped re-write of the current value is a harmless no-op
/// and is not counted.
///
/// # Panics
///
/// Panics if `v` is outside the regulator range, or if more than
/// `max_attempts` consecutive restores are dropped (a fault plan with a
/// ~100 % loss rate).
pub fn set_pmd_voltage_verified(
    server: &mut XGene2Server,
    v: Millivolts,
    max_attempts: u32,
) -> u64 {
    server
        .set_pmd_voltage(v)
        .expect("campaign voltages stay within regulator range");
    let mut restores = 0;
    while server.pmd_voltage() != v {
        assert!(
            restores < u64::from(max_attempts),
            "firmware dropped {restores} consecutive voltage restores"
        );
        telemetry::event!(
            Level::Warn,
            "setup_restore_retry",
            requested_mv = v.as_u32(),
            actual_mv = server.pmd_voltage().as_u32(),
            attempt = restores + 1,
        );
        telemetry::counter!("setup_restores_total");
        server
            .set_pmd_voltage(v)
            .expect("campaign voltages stay within regulator range");
        restores += 1;
    }
    restores
}

/// Where a campaign stands, measured in run boundaries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cursor {
    /// Index into the campaign's benchmark list.
    pub bench_idx: usize,
    /// Index into the campaign's core list.
    pub core_idx: usize,
    /// Index into the voltage schedule of the current (benchmark, core).
    pub sched_idx: usize,
    /// Repetition within the current setup.
    pub repetition: u32,
}

/// Per-(benchmark, core) Vmin search state, carried across checkpoints.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchState {
    /// Lowest fully safe voltage seen so far on this walk.
    pub last_safe: Option<Millivolts>,
    /// Consecutive crashes at the current setup.
    pub consecutive_crashes: u32,
}

/// A complete snapshot of a campaign in flight, taken at a run boundary.
///
/// Contains everything needed to resume bit-identically: the campaign
/// definition, the whole simulated server (RNG and fault-plan state
/// included), the walk position, the partial results and the resilience
/// bookkeeping. Serializes through the workspace `serde` JSON so it can be
/// written to disk between processes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignCheckpoint {
    /// The campaign being executed.
    pub campaign: VminCampaign,
    /// Resilience configuration in force.
    pub config: ResilienceConfig,
    /// Full server snapshot.
    pub server: XGene2Server,
    /// Walk position (the next run to execute).
    pub cursor: Cursor,
    /// Search state of the current (benchmark, core).
    pub search: SearchState,
    /// Results accumulated so far.
    pub partial: CampaignResult,
    /// Quarantine bookkeeping.
    pub quarantine: QuarantineTracker,
    /// Server reset count when the campaign started (for the final
    /// watchdog tally).
    pub resets_before: u64,
    /// Snapshot of the installed metrics registry at checkpoint time
    /// (empty when no registry was installed). Defaults keep checkpoints
    /// from before this field decodable.
    #[serde(default)]
    pub metrics: MetricsSnapshot,
    /// Live safety-net state (circuit breaker + sentinel scheduler).
    /// Defaults keep pre-safety-net checkpoints decodable and resumable.
    #[serde(default)]
    pub safety: crate::safety::CampaignSafetyState,
}

/// Why a checkpoint failed to load, split along the line that decides
/// what the operator should do next: [`CheckpointError::Corrupt`] means
/// the *file* is damaged (torn write, bit rot) and the caller should
/// fall back to the previous checkpoint; [`CheckpointError::Schema`]
/// means the file is intact but from an incompatible build, and no
/// amount of falling back will fix it.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckpointError {
    /// The sealed framing failed verification before any decoding.
    Corrupt(crate::integrity::CorruptCheckpoint),
    /// The framing verified (or the file was legacy/unsealed) but the
    /// payload does not decode as a [`CampaignCheckpoint`].
    Schema(serde::Error),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Corrupt(c) => write!(f, "{c}"),
            CheckpointError::Schema(e) => write!(f, "checkpoint schema mismatch: {e}"),
        }
    }
}

impl CampaignCheckpoint {
    /// Serializes the checkpoint to JSON.
    pub fn to_json(&self) -> String {
        serde::json::to_string(self)
    }

    /// Serializes the checkpoint to JSON sealed with a CRC-32 + length
    /// header ([`crate::integrity::seal`]), so a torn write is detected
    /// at load time instead of surfacing as a decode error.
    pub fn to_sealed_json(&self) -> String {
        crate::integrity::seal(&self.to_json())
    }

    /// Restores a checkpoint from JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying decode error if the text is not a valid
    /// checkpoint.
    pub fn from_json(text: &str) -> Result<Self, serde::Error> {
        serde::json::from_str(text)
    }

    /// Restores a checkpoint from sealed or legacy JSON.
    ///
    /// Sealed text ([`CampaignCheckpoint::to_sealed_json`]) is CRC- and
    /// length-verified first; unsealed text takes the legacy decode path
    /// unchanged, so checkpoints written before sealing existed (and
    /// before any `#[serde(default)]` field) still load.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Corrupt`] when the sealed framing fails
    /// (truncated, bit-flipped or header-torn file);
    /// [`CheckpointError::Schema`] when the payload is intact but does
    /// not decode.
    pub fn from_sealed_json(text: &str) -> Result<Self, CheckpointError> {
        let payload = crate::integrity::unseal(text).map_err(CheckpointError::Corrupt)?;
        serde::json::from_str(payload).map_err(CheckpointError::Schema)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use power_model::units::Megahertz;
    use xgene_sim::topology::CoreId;

    fn setup_at(mv: u32) -> Setup {
        Setup {
            voltage: Millivolts::new(mv),
            frequency: Megahertz::XGENE2_NOMINAL,
            core: CoreId::new(0),
        }
    }

    #[test]
    fn backoff_doubles_to_the_cap() {
        let p = RetryPolicy::dsn18();
        assert_eq!(p.backoff_ms(0), 500);
        assert_eq!(p.backoff_ms(1), 1000);
        assert_eq!(p.backoff_ms(2), 2000);
        assert_eq!(p.backoff_ms(6), 30_000, "capped");
        assert_eq!(p.backoff_ms(60), 30_000, "no overflow far past the cap");
    }

    #[test]
    fn quarantine_counts_consecutive_crashes_only() {
        let mut q = QuarantineTracker::default();
        let s = setup_at(900);
        assert_eq!(q.record_crash(s), 1);
        assert_eq!(q.record_crash(s), 2);
        q.record_ok(s);
        assert_eq!(q.record_crash(s), 1, "a clean run breaks the streak");
        assert!(!q.is_quarantined(s));
        q.quarantine(s);
        q.quarantine(s);
        assert!(q.is_quarantined(s));
        assert_eq!(q.quarantined_count(), 1, "idempotent");
        assert!(!q.is_quarantined(setup_at(895)));
    }

    #[test]
    fn recovery_stats_detect_activity() {
        let mut stats = RecoveryStats::default();
        assert!(!stats.any_recovery());
        stats.setup_restores += 1;
        assert!(stats.any_recovery());
    }

    #[test]
    fn retry_policy_roundtrips_through_json() {
        let p = RetryPolicy {
            max_retries: 3,
            base_backoff_ms: 7,
            factor: 3,
            cap_ms: 100,
        };
        let text = serde::json::to_string(&p);
        let back: RetryPolicy = serde::json::from_str(&text).unwrap();
        assert_eq!(p, back);
    }
}
