//! Torn-write detection for serialized campaign state.
//!
//! A checkpoint that was half-written when the host died used to be
//! indistinguishable from a schema mismatch: both surfaced as a JSON
//! decode error, so the caller could not tell "this file is damaged,
//! fall back to the previous one" from "this file is from an
//! incompatible build, stop". This module draws that line. [`seal`]
//! prefixes a serialized payload with a one-line header carrying the
//! payload's byte length and CRC-32, and [`unseal`] verifies both
//! before any schema decoding happens, classifying damage as a typed
//! [`CorruptCheckpoint`]. Files without the header — every checkpoint
//! written before this header existed — pass through untouched, so the
//! `#[serde(default)]` legacy-decode path keeps working.
//!
//! The same framing protects the fleet journal's binary records (see
//! `fleet::journal`), which reuses [`crc32`] directly.

use serde::{Deserialize, Serialize};
use std::fmt;

/// First-line marker of a sealed payload. Chosen to be impossible in a
/// bare JSON document (which must start with a value, never `#`).
pub const SEAL_MAGIC: &str = "#guardband-sealed-v1";

/// How a sealed payload failed verification. Distinct from a schema
/// decode error by construction: none of these variants involve
/// interpreting the payload, only its framing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CorruptCheckpoint {
    /// The header promises more payload bytes than the file holds — the
    /// classic torn write: the process died mid-`write(2)`.
    Truncated {
        /// Bytes the header promised.
        expected: usize,
        /// Bytes actually present after the header.
        actual: usize,
    },
    /// The payload length matches but its CRC-32 does not — bit rot, a
    /// partially overwritten sector, or a deliberate chaos-plan flip.
    ChecksumMismatch {
        /// CRC the header recorded at write time.
        expected: u32,
        /// CRC of the bytes actually present.
        actual: u32,
    },
    /// The file starts with the seal magic but the rest of the header
    /// line does not parse — the header itself was torn.
    MalformedHeader,
}

impl fmt::Display for CorruptCheckpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorruptCheckpoint::Truncated { expected, actual } => {
                write!(
                    f,
                    "torn checkpoint: {actual} of {expected} payload bytes present"
                )
            }
            CorruptCheckpoint::ChecksumMismatch { expected, actual } => write!(
                f,
                "corrupt checkpoint: crc32 {actual:08x}, header recorded {expected:08x}"
            ),
            CorruptCheckpoint::MalformedHeader => {
                write!(f, "corrupt checkpoint: malformed seal header")
            }
        }
    }
}

/// CRC-32 (IEEE 802.3, the zlib/PNG polynomial) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc = !0u32;
    for byte in bytes {
        let idx = (crc ^ u32::from(*byte)) & 0xFF;
        crc = (crc >> 8) ^ TABLE[idx as usize];
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 == 1 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Seals a serialized payload: `#guardband-sealed-v1 len=N crc32=HEX\n`
/// followed by the payload verbatim.
pub fn seal(payload: &str) -> String {
    format!(
        "{SEAL_MAGIC} len={} crc32={:08x}\n{payload}",
        payload.len(),
        crc32(payload.as_bytes())
    )
}

/// Verifies a sealed payload and returns the payload slice.
///
/// Text that does not start with [`SEAL_MAGIC`] is returned whole — the
/// legacy path: checkpoints written before sealing existed carry no
/// header and must keep decoding.
///
/// # Errors
///
/// Returns the [`CorruptCheckpoint`] classification when the header is
/// present but the payload underneath it does not match.
pub fn unseal(text: &str) -> Result<&str, CorruptCheckpoint> {
    if !text.starts_with(SEAL_MAGIC) {
        return Ok(text);
    }
    let Some((header, payload)) = text.split_once('\n') else {
        // Magic with no newline: the write died inside the header.
        return Err(CorruptCheckpoint::MalformedHeader);
    };
    let mut expected_len: Option<usize> = None;
    let mut expected_crc: Option<u32> = None;
    for field in header[SEAL_MAGIC.len()..].split_whitespace() {
        if let Some(v) = field.strip_prefix("len=") {
            expected_len = v.parse().ok();
        } else if let Some(v) = field.strip_prefix("crc32=") {
            expected_crc = u32::from_str_radix(v, 16).ok();
        }
    }
    let (Some(expected_len), Some(expected_crc)) = (expected_len, expected_crc) else {
        return Err(CorruptCheckpoint::MalformedHeader);
    };
    if payload.len() != expected_len {
        return Err(CorruptCheckpoint::Truncated {
            expected: expected_len,
            actual: payload.len(),
        });
    }
    let actual_crc = crc32(payload.as_bytes());
    if actual_crc != expected_crc {
        return Err(CorruptCheckpoint::ChecksumMismatch {
            expected: expected_crc,
            actual: actual_crc,
        });
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_the_reference_vectors() {
        // The two canonical IEEE CRC-32 check values.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn seal_then_unseal_roundtrips() {
        let payload = r#"{"cursor":{"bench_idx":3}}"#;
        let sealed = seal(payload);
        assert!(sealed.starts_with(SEAL_MAGIC));
        assert_eq!(unseal(&sealed).unwrap(), payload);
    }

    #[test]
    fn legacy_text_passes_through_untouched() {
        let legacy = r#"{"old":"checkpoint"}"#;
        assert_eq!(unseal(legacy).unwrap(), legacy);
    }

    #[test]
    fn a_torn_tail_is_truncation_not_a_schema_error() {
        let sealed = seal(r#"{"partial":"results","walk":"state"}"#);
        let torn = &sealed[..sealed.len() - 10];
        match unseal(torn) {
            Err(CorruptCheckpoint::Truncated { expected, actual }) => {
                assert!(actual < expected);
            }
            other => panic!("expected truncation, got {other:?}"),
        }
    }

    #[test]
    fn a_flipped_bit_is_a_checksum_mismatch() {
        let sealed = seal(r#"{"rail_vmin_mv":905}"#);
        let mut bytes = sealed.into_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        let flipped = String::from_utf8(bytes).unwrap();
        assert!(matches!(
            unseal(&flipped),
            Err(CorruptCheckpoint::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn a_torn_header_is_malformed() {
        assert_eq!(unseal(SEAL_MAGIC), Err(CorruptCheckpoint::MalformedHeader));
        assert_eq!(
            unseal(&format!("{SEAL_MAGIC} len=\n{{}}")),
            Err(CorruptCheckpoint::MalformedHeader)
        );
    }

    #[test]
    fn corruption_reports_render_distinctly() {
        let torn = CorruptCheckpoint::Truncated {
            expected: 10,
            actual: 4,
        };
        let flip = CorruptCheckpoint::ChecksumMismatch {
            expected: 1,
            actual: 2,
        };
        assert!(torn.to_string().contains("torn"));
        assert!(flip.to_string().contains("crc32"));
    }
}
