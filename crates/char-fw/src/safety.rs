//! The production safety net's building blocks: redundant-execution SDC
//! sentinels and a CE-rate circuit breaker.
//!
//! Below the guardband the failure sequence is not "crash first": the
//! region just under Vmin produces correctable errors, *silent* data
//! corruptions and hangs before clean lockups. A production system
//! exploiting characterized safe points therefore needs an online
//! detection layer built only from observables:
//!
//! * **Sentinels** ([`SentinelRunner`]) periodically run a canary kernel
//!   with a precomputed golden checksum ([`workload_sim::canary`]) on
//!   *both* cores of a PMD (dual modular redundancy). An SDC becomes a
//!   detectable event two independent ways: the corrupted checksum
//!   mismatches golden, and — even without a golden value — the two
//!   cores' checksums disagree;
//! * **The circuit breaker** ([`CircuitBreaker`]) tracks an EWMA of the
//!   correctable-error rate (CPU error reports plus DRAM scrubber
//!   correction rates) and walks a four-state machine — Healthy → Watch →
//!   Tripped → Cooldown — with hysteresis: it trips eagerly (any detected
//!   SDC, watchdog timeout or UE report, or a CE-rate excursion) and
//!   recovers reluctantly (a hold at nominal, then a clean cooldown).
//!
//! These live here (not in `guardband-core`) because the characterization
//! framework itself schedules sentinels inside campaigns and carries
//! breaker state in its checkpoints; `guardband_core::safety` composes
//! them with the online governor into the full safety net.

use serde::{Deserialize, Serialize};
use telemetry::Level;
use workload_sim::canary::CanaryKernel;
use xgene_sim::fault::RunOutcome;
use xgene_sim::server::XGene2Server;
use xgene_sim::topology::PmdId;

/// Circuit-breaker state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum BreakerState {
    /// Normal scaled operation; margin relaxation allowed.
    #[default]
    Healthy,
    /// Elevated CE rate: scaled operation continues but relaxation is
    /// frozen.
    Watch,
    /// A disruption was detected (or the CE rate crossed the trip
    /// threshold): operate at nominal V/F and nominal refresh.
    Tripped,
    /// Post-trip probation at conservative settings; clean epochs drain
    /// back to [`BreakerState::Healthy`], any recurrence re-trips.
    Cooldown,
}

impl std::fmt::Display for BreakerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BreakerState::Healthy => "healthy",
            BreakerState::Watch => "watch",
            BreakerState::Tripped => "tripped",
            BreakerState::Cooldown => "cooldown",
        };
        f.write_str(s)
    }
}

/// Why the breaker tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TripReason {
    /// The CPU-side EWMA CE rate crossed the trip threshold.
    CeRate,
    /// The DRAM scrubber's correction rate dominated the trip signal.
    ScrubberCeRate,
    /// A sentinel checksum mismatched its golden value.
    SdcChecksum,
    /// The two cores of a DMR sentinel pair disagreed.
    SdcVote,
    /// The deadline watchdog fired (a run hung).
    WatchdogTimeout,
    /// Hardware reported an uncorrectable error.
    UncorrectableError,
    /// The smoothed cross-tenant droop estimate crossed the trip
    /// threshold: an adversarial neighbour, not this board, is eroding
    /// the margin.
    CrossTenantDroop,
}

impl std::fmt::Display for TripReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            TripReason::CeRate => "ce-rate",
            TripReason::ScrubberCeRate => "scrub-ce-rate",
            TripReason::SdcChecksum => "sdc-checksum",
            TripReason::SdcVote => "sdc-vote",
            TripReason::WatchdogTimeout => "watchdog-timeout",
            TripReason::UncorrectableError => "ue-report",
            TripReason::CrossTenantDroop => "cross-tenant-droop",
        };
        f.write_str(s)
    }
}

impl TripReason {
    /// Which tenant a trip with this reason is attributed to: every
    /// classic reason blames the board's own silicon; a cross-tenant
    /// droop excursion blames the adversarial neighbour.
    pub fn attribution(self) -> TenantAttribution {
        match self {
            TripReason::CrossTenantDroop => TenantAttribution::Attacker,
            _ => TenantAttribution::Board,
        }
    }
}

/// Who a protective action (a trip, a quarantine) is attributed to: the
/// board's own silicon, or an adversarial co-tenant. The distinction
/// drives very different responses — a faulty board is pulled from
/// below-guardband duty, while a healthy board under attack keeps its
/// scaled operating point and sheds the *attacker* instead.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TenantAttribution {
    /// The board itself is at fault (the default for all legacy records).
    #[default]
    Board,
    /// An adversarial co-tenant caused the condition; the board is fine.
    Attacker,
}

impl std::fmt::Display for TenantAttribution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TenantAttribution::Board => "board",
            TenantAttribution::Attacker => "attacker",
        })
    }
}

/// Breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BreakerConfig {
    /// EWMA smoothing factor in `(0, 1]` (weight of the newest epoch).
    pub ewma_alpha: f64,
    /// EWMA CE rate (events/epoch) above which Healthy escalates to Watch.
    pub watch_ce_rate: f64,
    /// EWMA CE rate above which the breaker trips.
    pub trip_ce_rate: f64,
    /// Hysteresis: the EWMA must fall below this before Watch or Cooldown
    /// may resolve back to Healthy (strictly below `watch_ce_rate`).
    pub recover_ce_rate: f64,
    /// Epochs held in Tripped (at nominal) before probing in Cooldown.
    pub trip_hold_epochs: u32,
    /// Clean Cooldown epochs required before returning to Healthy.
    pub cooldown_epochs: u32,
    /// Smoothed cross-tenant droop estimate (mV) above which Healthy
    /// escalates to Watch. `0` (the default, and the value every legacy
    /// checkpoint decodes to) disables droop attribution entirely.
    #[serde(default)]
    pub droop_watch_mv: f64,
    /// Smoothed cross-tenant droop estimate (mV) above which the breaker
    /// trips with [`TripReason::CrossTenantDroop`]. `0` disables.
    #[serde(default)]
    pub droop_trip_mv: f64,
}

impl BreakerConfig {
    /// Production defaults: trip when the smoothed CE rate exceeds one
    /// event per two epochs, hold nominal for 20 epochs, then a 10-epoch
    /// probation.
    pub fn dsn18() -> Self {
        BreakerConfig {
            ewma_alpha: 0.2,
            watch_ce_rate: 0.2,
            trip_ce_rate: 0.5,
            recover_ce_rate: 0.05,
            trip_hold_epochs: 20,
            cooldown_epochs: 10,
            droop_watch_mv: 0.0,
            droop_trip_mv: 0.0,
        }
    }

    /// Whether cross-tenant droop attribution is enabled.
    pub fn droop_attribution_enabled(&self) -> bool {
        self.droop_trip_mv > 0.0
    }
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig::dsn18()
    }
}

/// One epoch's observable health inputs.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HealthSignal {
    /// CPU-side correctable-error reports this epoch.
    pub ce_events: u32,
    /// DRAM scrubber corrections per epoch (already rate-normalized).
    pub scrub_ce_rate: f64,
    /// Hardware reported an uncorrectable error.
    pub ue: bool,
    /// A sentinel checksum mismatched golden.
    pub sdc_checksum: bool,
    /// A DMR sentinel pair split its vote.
    pub sdc_vote: bool,
    /// The deadline watchdog fired.
    pub timeout: bool,
    /// Estimated cross-tenant droop (mV) co-located tenants coupled onto
    /// this rail during the epoch, derived from their PMU activity
    /// telemetry (zero on a dedicated PMD).
    pub droop_mv: f64,
}

impl HealthSignal {
    /// A perfectly clean epoch.
    pub fn clean() -> Self {
        HealthSignal::default()
    }

    /// Whether this epoch carries an immediate-trip disruption.
    pub fn disruption(&self) -> Option<TripReason> {
        // Voting/checksum detections outrank the rest: they are the
        // events the whole net exists to surface.
        if self.sdc_vote {
            Some(TripReason::SdcVote)
        } else if self.sdc_checksum {
            Some(TripReason::SdcChecksum)
        } else if self.timeout {
            Some(TripReason::WatchdogTimeout)
        } else if self.ue {
            Some(TripReason::UncorrectableError)
        } else {
            None
        }
    }
}

/// The EWMA CE-rate circuit breaker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    /// Smoothed CE events/epoch (CPU reports + scrubber rate).
    ewma: f64,
    /// Epochs spent in the current state.
    epochs_in_state: u32,
    trips: u64,
    last_trip: Option<TripReason>,
    /// Smoothed cross-tenant droop estimate (mV). Defaults to 0 when
    /// decoding checkpoints taken before droop attribution existed.
    #[serde(default)]
    droop_ewma: f64,
}

impl CircuitBreaker {
    /// A closed (healthy) breaker.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < ewma_alpha <= 1` and
    /// `recover < watch <= trip`.
    pub fn new(config: BreakerConfig) -> Self {
        assert!(
            config.ewma_alpha > 0.0 && config.ewma_alpha <= 1.0,
            "alpha in (0,1]"
        );
        assert!(
            config.recover_ce_rate < config.watch_ce_rate
                && config.watch_ce_rate <= config.trip_ce_rate,
            "thresholds must satisfy recover < watch <= trip"
        );
        if config.droop_attribution_enabled() {
            assert!(
                config.droop_watch_mv > 0.0 && config.droop_watch_mv <= config.droop_trip_mv,
                "droop thresholds must satisfy 0 < watch <= trip"
            );
        }
        CircuitBreaker {
            config,
            state: BreakerState::Healthy,
            ewma: 0.0,
            epochs_in_state: 0,
            trips: 0,
            last_trip: None,
            droop_ewma: 0.0,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Smoothed CE rate.
    pub fn ewma_ce_rate(&self) -> f64 {
        self.ewma
    }

    /// Smoothed cross-tenant droop estimate (mV).
    pub fn droop_ewma_mv(&self) -> f64 {
        self.droop_ewma
    }

    /// The droop EWMA this breaker would hold *after* folding in one more
    /// epoch with the given estimate — a pure preview, nothing recorded.
    pub fn droop_ewma_after(&self, droop_mv: f64) -> f64 {
        self.config.ewma_alpha * droop_mv + (1.0 - self.config.ewma_alpha) * self.droop_ewma
    }

    /// Whether folding in one more epoch at `droop_mv` would cross the
    /// droop trip threshold. The safety net consults this *before*
    /// scheduling an epoch: answering yes is its cue to quarantine the
    /// attacker (shedding the droop source) rather than let a healthy
    /// board trip into nominal hold.
    pub fn would_trip_on_droop(&self, droop_mv: f64) -> bool {
        self.config.droop_attribution_enabled()
            && self.droop_ewma_after(droop_mv) >= self.config.droop_trip_mv
    }

    /// Whether the smoothed droop estimate currently sits in the watch
    /// band (anomalous, but below the trip threshold).
    pub fn droop_watch_active(&self) -> bool {
        self.config.droop_attribution_enabled() && self.droop_ewma >= self.config.droop_watch_mv
    }

    /// Total trips so far.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Reason of the most recent trip.
    pub fn last_trip_reason(&self) -> Option<TripReason> {
        self.last_trip
    }

    /// Whether below-guardband (scaled) operation is currently permitted.
    pub fn allows_scaling(&self) -> bool {
        matches!(self.state, BreakerState::Healthy | BreakerState::Watch)
    }

    /// Whether the governor may keep *narrowing* margins (Healthy only:
    /// Watch freezes relaxation, Tripped/Cooldown forbid scaling).
    pub fn allows_relaxation(&self) -> bool {
        self.state == BreakerState::Healthy
    }

    /// Folds one epoch's observables in and returns the (possibly new)
    /// state.
    pub fn record_epoch(&mut self, signal: &HealthSignal) -> BreakerState {
        let x = f64::from(signal.ce_events) + signal.scrub_ce_rate;
        self.ewma = self.config.ewma_alpha * x + (1.0 - self.config.ewma_alpha) * self.ewma;
        self.droop_ewma = self.droop_ewma_after(signal.droop_mv);
        telemetry::gauge!("breaker_ewma_ce_rate", self.ewma);
        telemetry::gauge!("breaker_ewma_droop_mv", self.droop_ewma);
        self.epochs_in_state = self.epochs_in_state.saturating_add(1);

        if let Some(reason) = signal.disruption() {
            if self.state == BreakerState::Tripped {
                // Already open: restart the hold, do not double-count.
                self.epochs_in_state = 0;
            } else {
                self.trip(reason);
            }
            return self.state;
        }

        let droop_trip =
            self.config.droop_attribution_enabled() && self.droop_ewma >= self.config.droop_trip_mv;
        let droop_watch = self.droop_watch_active();
        match self.state {
            BreakerState::Healthy => {
                if self.ewma >= self.config.trip_ce_rate {
                    self.trip(self.rate_reason(signal));
                } else if droop_trip {
                    self.trip(TripReason::CrossTenantDroop);
                } else if self.ewma >= self.config.watch_ce_rate || droop_watch {
                    self.transition(BreakerState::Watch);
                }
            }
            BreakerState::Watch => {
                if self.ewma >= self.config.trip_ce_rate {
                    self.trip(self.rate_reason(signal));
                } else if droop_trip {
                    self.trip(TripReason::CrossTenantDroop);
                } else if self.ewma < self.config.recover_ce_rate && !droop_watch {
                    self.transition(BreakerState::Healthy);
                }
            }
            BreakerState::Tripped => {
                if self.epochs_in_state >= self.config.trip_hold_epochs {
                    self.transition(BreakerState::Cooldown);
                }
            }
            BreakerState::Cooldown => {
                if self.ewma >= self.config.trip_ce_rate {
                    self.trip(self.rate_reason(signal));
                } else if droop_trip {
                    self.trip(TripReason::CrossTenantDroop);
                } else if self.epochs_in_state >= self.config.cooldown_epochs
                    && self.ewma < self.config.recover_ce_rate
                    && !droop_watch
                {
                    self.transition(BreakerState::Healthy);
                }
            }
        }
        self.state
    }

    /// Which rate source dominated a threshold trip.
    fn rate_reason(&self, signal: &HealthSignal) -> TripReason {
        if signal.scrub_ce_rate > f64::from(signal.ce_events) {
            TripReason::ScrubberCeRate
        } else {
            TripReason::CeRate
        }
    }

    fn trip(&mut self, reason: TripReason) {
        self.trips += 1;
        self.last_trip = Some(reason);
        telemetry::event!(
            Level::Error,
            "breaker_trip",
            reason = reason.to_string(),
            from = self.state.to_string(),
            ewma = self.ewma,
            trips = self.trips,
        );
        telemetry::counter!("breaker_trips_total");
        self.state = BreakerState::Tripped;
        self.epochs_in_state = 0;
    }

    fn transition(&mut self, to: BreakerState) {
        telemetry::event!(
            Level::Info,
            "breaker_state",
            from = self.state.to_string(),
            to = to.to_string(),
            ewma = self.ewma,
        );
        self.state = to;
        self.epochs_in_state = 0;
    }
}

impl Default for CircuitBreaker {
    fn default() -> Self {
        CircuitBreaker::new(BreakerConfig::dsn18())
    }
}

/// How one sentinel DMR check resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SentinelVerdict {
    /// Both checksums matched golden.
    Clean,
    /// Both cores agreed on the *same wrong* checksum: only the golden
    /// comparison caught it.
    ChecksumMismatch,
    /// The two cores disagreed (at least one corrupted): caught by
    /// voting, confirmed against golden.
    VoteSplit,
    /// A canary run reported a hardware uncorrectable error.
    HwError,
    /// A canary run hung and the watchdog fired.
    Timeout,
}

impl std::fmt::Display for SentinelVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SentinelVerdict::Clean => "clean",
            SentinelVerdict::ChecksumMismatch => "checksum-mismatch",
            SentinelVerdict::VoteSplit => "vote-split",
            SentinelVerdict::HwError => "hw-error",
            SentinelVerdict::Timeout => "timeout",
        };
        f.write_str(s)
    }
}

/// One sentinel check's result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SentinelReport {
    /// PMD whose core pair ran the canary.
    pub pmd: PmdId,
    /// How the check resolved.
    pub verdict: SentinelVerdict,
    /// CE reports among the pair (observable, fed to the breaker EWMA).
    pub ce_events: u32,
    /// Ground-truth silent corruptions among the pair (audit only — the
    /// control path never reads this).
    pub true_sdcs: u32,
}

impl SentinelReport {
    /// Whether the check detected a silent corruption.
    pub fn detected_sdc(&self) -> bool {
        matches!(
            self.verdict,
            SentinelVerdict::ChecksumMismatch | SentinelVerdict::VoteSplit
        )
    }
}

/// Aggregate sentinel bookkeeping.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SentinelStats {
    /// DMR checks executed.
    pub checks: u64,
    /// Checks that detected an SDC by golden-checksum mismatch (vote
    /// agreed on the wrong value).
    pub detected_by_checksum: u64,
    /// Checks that detected an SDC by a split DMR vote.
    pub detected_by_vote: u64,
    /// Checks ending in a watchdog timeout.
    pub timeouts: u64,
    /// Checks reporting a hardware UE.
    pub hw_errors: u64,
    /// Ground-truth SDCs the canaries suffered (audit).
    pub true_sdcs: u64,
    /// Ground-truth SDCs the check failed to flag — the safety net's
    /// miss count, asserted zero by the acceptance test.
    pub undetected_sdcs: u64,
}

impl SentinelStats {
    /// All SDC detections, either mechanism.
    pub fn detections(&self) -> u64 {
        self.detected_by_checksum + self.detected_by_vote
    }
}

/// Schedules and executes DMR canary checks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SentinelRunner {
    kernels: Vec<CanaryKernel>,
    next_kernel: usize,
    /// Deterministic corruption-seed counter: each true SDC among canary
    /// runs draws the next seed, so corrupted checksums are reproducible.
    fault_counter: u64,
    stats: SentinelStats,
}

impl SentinelRunner {
    /// A runner over a canary suite.
    ///
    /// # Panics
    ///
    /// Panics if `kernels` is empty.
    pub fn new(kernels: Vec<CanaryKernel>) -> Self {
        assert!(!kernels.is_empty(), "a sentinel needs at least one canary");
        SentinelRunner {
            kernels,
            next_kernel: 0,
            fault_counter: 0,
            stats: SentinelStats::default(),
        }
    }

    /// Bookkeeping so far.
    pub fn stats(&self) -> SentinelStats {
        self.stats
    }

    /// Runs one DMR check: the next canary (round-robin) on both cores of
    /// `pmd`, checksums compared to each other and to golden.
    pub fn check(&mut self, server: &mut XGene2Server, pmd: PmdId) -> SentinelReport {
        let kernel = &self.kernels[self.next_kernel];
        self.next_kernel = (self.next_kernel + 1) % self.kernels.len();
        let profile = kernel.profile();
        let [core_a, core_b] = pmd.cores();
        let results = server.run_many(&[(core_a, &profile), (core_b, &profile)]);

        let mut ce_events = 0;
        let mut true_sdcs = 0;
        let mut timeout = false;
        let mut hw_error = false;
        let mut checksums = [kernel.golden(); 2];
        for (i, r) in results.iter().enumerate() {
            match r.outcome {
                RunOutcome::Correct => {}
                RunOutcome::CorrectableError => ce_events += 1,
                RunOutcome::UncorrectableError => hw_error = true,
                RunOutcome::SilentDataCorruption => {
                    true_sdcs += 1;
                    checksums[i] = kernel.run_corrupted(self.fault_counter);
                    self.fault_counter += 1;
                }
                RunOutcome::Crash => timeout = true,
            }
        }

        let verdict = if timeout {
            SentinelVerdict::Timeout
        } else if hw_error {
            SentinelVerdict::HwError
        } else if checksums[0] != checksums[1] {
            SentinelVerdict::VoteSplit
        } else if checksums[0] != kernel.golden() {
            SentinelVerdict::ChecksumMismatch
        } else {
            SentinelVerdict::Clean
        };

        self.stats.checks += 1;
        match verdict {
            SentinelVerdict::VoteSplit => self.stats.detected_by_vote += 1,
            SentinelVerdict::ChecksumMismatch => self.stats.detected_by_checksum += 1,
            SentinelVerdict::Timeout => self.stats.timeouts += 1,
            SentinelVerdict::HwError => self.stats.hw_errors += 1,
            SentinelVerdict::Clean => {}
        }
        self.stats.true_sdcs += u64::from(true_sdcs);
        // A timeout or UE supersedes the checksum comparison, but neither
        // is a *miss*: the disruption was observed. A miss is a true SDC
        // in a check that resolved Clean.
        if verdict == SentinelVerdict::Clean && true_sdcs > 0 {
            self.stats.undetected_sdcs += u64::from(true_sdcs);
        }

        telemetry::event!(
            Level::Debug,
            "sentinel_check",
            pmd = pmd.index(),
            verdict = verdict.to_string(),
            ce_events = ce_events,
        );
        telemetry::counter!("sentinel_checks_total");
        if verdict != SentinelVerdict::Clean {
            telemetry::event!(
                Level::Warn,
                "sentinel_detection",
                pmd = pmd.index(),
                verdict = verdict.to_string(),
            );
            telemetry::counter!("sentinel_detections_total");
        }

        SentinelReport {
            pmd,
            verdict,
            ce_events,
            true_sdcs,
        }
    }
}

impl Default for SentinelRunner {
    fn default() -> Self {
        SentinelRunner::new(CanaryKernel::sentinel_suite())
    }
}

/// Campaign-level safety summary, carried in [`CampaignResult`] and the
/// report CSV so degradations are attributable post-hoc.
///
/// [`CampaignResult`]: crate::runner::CampaignResult
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SafetySummary {
    /// Breaker trips during the campaign.
    pub breaker_trips: u64,
    /// Reason of the most recent trip.
    pub last_trip_reason: Option<TripReason>,
    /// Final breaker state.
    pub breaker_state: BreakerState,
    /// Sentinel bookkeeping.
    pub sentinel: SentinelStats,
}

/// The runner's live safety-net state, checkpointed with the campaign.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CampaignSafetyState {
    /// The campaign's circuit breaker (fed by sentinel observations).
    pub breaker: CircuitBreaker,
    /// Sentinel scheduler/executor.
    pub sentinel: SentinelRunner,
    /// Runs since the last sentinel check.
    pub runs_since_sentinel: u32,
}

impl CampaignSafetyState {
    /// The summary snapshot recorded into results.
    pub fn summary(&self) -> SafetySummary {
        SafetySummary {
            breaker_trips: self.breaker.trips(),
            last_trip_reason: self.breaker.last_trip_reason(),
            breaker_state: self.breaker.state(),
            sentinel: self.sentinel.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xgene_sim::fault::FaultPlan;
    use xgene_sim::sigma::SigmaBin;

    fn ce(n: u32) -> HealthSignal {
        HealthSignal {
            ce_events: n,
            ..HealthSignal::clean()
        }
    }

    #[test]
    fn sustained_ce_rate_walks_healthy_watch_tripped() {
        let mut b = CircuitBreaker::default();
        assert_eq!(b.state(), BreakerState::Healthy);
        let mut saw_watch = false;
        for _ in 0..40 {
            let s = b.record_epoch(&ce(1));
            saw_watch |= s == BreakerState::Watch;
            if s == BreakerState::Tripped {
                break;
            }
        }
        assert!(saw_watch, "the walk must pass through Watch");
        assert_eq!(b.state(), BreakerState::Tripped);
        assert_eq!(b.trips(), 1);
        assert_eq!(b.last_trip_reason(), Some(TripReason::CeRate));
    }

    #[test]
    fn detected_sdc_trips_immediately_from_healthy() {
        let mut b = CircuitBreaker::default();
        let s = b.record_epoch(&HealthSignal {
            sdc_vote: true,
            ..HealthSignal::clean()
        });
        assert_eq!(s, BreakerState::Tripped);
        assert_eq!(b.last_trip_reason(), Some(TripReason::SdcVote));
        assert!(!b.allows_scaling());
    }

    #[test]
    fn trip_holds_then_cools_then_recovers_with_hysteresis() {
        let config = BreakerConfig {
            trip_hold_epochs: 5,
            cooldown_epochs: 3,
            ..BreakerConfig::dsn18()
        };
        let mut b = CircuitBreaker::new(config);
        b.record_epoch(&HealthSignal {
            timeout: true,
            ..HealthSignal::clean()
        });
        assert_eq!(b.state(), BreakerState::Tripped);
        // The hold: clean epochs at nominal.
        for _ in 0..5 {
            assert_ne!(
                b.record_epoch(&HealthSignal::clean()),
                BreakerState::Healthy
            );
        }
        assert_eq!(b.state(), BreakerState::Cooldown);
        // Probation drains back to Healthy only once the EWMA is low.
        let mut epochs = 0;
        while b.state() == BreakerState::Cooldown {
            b.record_epoch(&HealthSignal::clean());
            epochs += 1;
            assert!(epochs < 100, "cooldown must terminate");
        }
        assert_eq!(b.state(), BreakerState::Healthy);
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn recurrence_during_cooldown_re_trips() {
        let config = BreakerConfig {
            trip_hold_epochs: 2,
            cooldown_epochs: 10,
            ..BreakerConfig::dsn18()
        };
        let mut b = CircuitBreaker::new(config);
        b.record_epoch(&HealthSignal {
            ue: true,
            ..HealthSignal::clean()
        });
        for _ in 0..2 {
            b.record_epoch(&HealthSignal::clean());
        }
        assert_eq!(b.state(), BreakerState::Cooldown);
        b.record_epoch(&HealthSignal {
            sdc_checksum: true,
            ..HealthSignal::clean()
        });
        assert_eq!(b.state(), BreakerState::Tripped);
        assert_eq!(b.trips(), 2);
        assert_eq!(b.last_trip_reason(), Some(TripReason::SdcChecksum));
    }

    #[test]
    fn disruption_while_tripped_restarts_the_hold_without_double_counting() {
        let config = BreakerConfig {
            trip_hold_epochs: 3,
            ..BreakerConfig::dsn18()
        };
        let mut b = CircuitBreaker::new(config);
        b.record_epoch(&HealthSignal {
            timeout: true,
            ..HealthSignal::clean()
        });
        b.record_epoch(&HealthSignal::clean());
        b.record_epoch(&HealthSignal::clean());
        // One epoch short of Cooldown: a fresh disruption restarts it.
        b.record_epoch(&HealthSignal {
            timeout: true,
            ..HealthSignal::clean()
        });
        assert_eq!(b.trips(), 1, "no double-count while open");
        b.record_epoch(&HealthSignal::clean());
        b.record_epoch(&HealthSignal::clean());
        assert_eq!(b.state(), BreakerState::Tripped, "hold restarted");
        b.record_epoch(&HealthSignal::clean());
        assert_eq!(b.state(), BreakerState::Cooldown);
    }

    #[test]
    fn scrubber_rate_dominance_is_attributed() {
        let mut b = CircuitBreaker::default();
        for _ in 0..50 {
            if b.record_epoch(&HealthSignal {
                scrub_ce_rate: 2.0,
                ..HealthSignal::clean()
            }) == BreakerState::Tripped
            {
                break;
            }
        }
        assert_eq!(b.last_trip_reason(), Some(TripReason::ScrubberCeRate));
    }

    #[test]
    fn watch_freezes_relaxation_but_allows_scaling() {
        let mut b = CircuitBreaker::default();
        while b.state() == BreakerState::Healthy {
            b.record_epoch(&ce(1));
        }
        assert_eq!(b.state(), BreakerState::Watch);
        assert!(b.allows_scaling());
        assert!(!b.allows_relaxation());
    }

    #[test]
    fn clean_sentinel_check_on_a_healthy_server() {
        let mut server = XGene2Server::new(SigmaBin::Ttt, 7);
        let mut sentinel = SentinelRunner::default();
        let report = sentinel.check(&mut server, PmdId::new(0));
        assert_eq!(report.verdict, SentinelVerdict::Clean);
        assert!(!report.detected_sdc());
        assert_eq!(sentinel.stats().checks, 1);
        assert_eq!(sentinel.stats().detections(), 0);
        assert_eq!(sentinel.stats().undetected_sdcs, 0);
    }

    #[test]
    fn injected_sdc_in_a_canary_is_always_detected() {
        // Force SDCs into canary runs via the fault plan: whatever the
        // voltage, the corrupted checksum can never read back golden.
        let mut server = XGene2Server::new(SigmaBin::Ttt, 8);
        server.install_fault_plan(
            FaultPlan::quiet(8).force_sdc_at_run(0).force_sdc_at_run(3), // second check, second core
        );
        let mut sentinel = SentinelRunner::default();
        let first = sentinel.check(&mut server, PmdId::new(1));
        assert_eq!(first.verdict, SentinelVerdict::VoteSplit);
        assert_eq!(first.true_sdcs, 1);
        let second = sentinel.check(&mut server, PmdId::new(1));
        assert_eq!(second.verdict, SentinelVerdict::VoteSplit);
        let stats = sentinel.stats();
        assert_eq!(stats.true_sdcs, 2);
        assert_eq!(stats.detections(), 2);
        assert_eq!(stats.undetected_sdcs, 0, "zero misses");
    }

    #[test]
    fn double_sdc_same_wrong_answer_needs_the_golden_checksum() {
        // Both cores corrupted with the same fault seed would defeat pure
        // voting; the golden comparison still catches it. Drive the
        // checksum comparison directly (the runner draws distinct seeds,
        // so this is the model-level guarantee).
        let kernel = CanaryKernel::int_alu();
        let a = kernel.run_corrupted(5);
        let b = kernel.run_corrupted(5);
        assert_eq!(a, b, "identical faults agree");
        assert_ne!(a, kernel.golden(), "yet mismatch golden");
    }

    #[test]
    fn dmr_pair_with_both_cores_corrupted_is_detected() {
        let mut server = XGene2Server::new(SigmaBin::Ttt, 9);
        server.install_fault_plan(FaultPlan::quiet(9).force_sdc_at_run(0).force_sdc_at_run(1));
        let mut sentinel = SentinelRunner::default();
        let report = sentinel.check(&mut server, PmdId::new(2));
        // Distinct fault seeds → the pair (almost surely) splits; either
        // way the SDCs are detected, never missed.
        assert!(report.detected_sdc(), "{report:?}");
        assert_eq!(sentinel.stats().undetected_sdcs, 0);
    }

    fn droop_config() -> BreakerConfig {
        BreakerConfig {
            droop_watch_mv: 12.0,
            droop_trip_mv: 25.0,
            ..BreakerConfig::dsn18()
        }
    }

    fn droop(mv: f64) -> HealthSignal {
        HealthSignal {
            droop_mv: mv,
            ..HealthSignal::clean()
        }
    }

    #[test]
    fn sustained_cross_tenant_droop_walks_watch_then_trips_attributed() {
        let mut b = CircuitBreaker::new(droop_config());
        let mut saw_watch = false;
        let mut epochs = 0;
        while b.state() != BreakerState::Tripped {
            let s = b.record_epoch(&droop(40.0));
            saw_watch |= s == BreakerState::Watch;
            epochs += 1;
            assert!(epochs < 20, "a 40 mV attack must trip the breaker");
        }
        assert!(saw_watch);
        assert_eq!(b.last_trip_reason(), Some(TripReason::CrossTenantDroop));
        assert_eq!(
            b.last_trip_reason().unwrap().attribution(),
            TenantAttribution::Attacker
        );
        // Classic reasons stay board-attributed.
        assert_eq!(TripReason::SdcVote.attribution(), TenantAttribution::Board);
    }

    #[test]
    fn droop_preview_matches_the_recorded_fold_without_mutating() {
        let mut b = CircuitBreaker::new(droop_config());
        b.record_epoch(&droop(30.0));
        let preview = b.droop_ewma_after(30.0);
        let before = b.droop_ewma_mv();
        assert!(!b.would_trip_on_droop(0.0));
        assert_eq!(b.droop_ewma_mv(), before, "previews must not record");
        b.record_epoch(&droop(30.0));
        assert!((b.droop_ewma_mv() - preview).abs() < 1e-12);
        // The preview crosses the threshold exactly when recording would.
        let mut probe = CircuitBreaker::new(droop_config());
        let mut epochs = 0;
        while !probe.would_trip_on_droop(40.0) {
            probe.record_epoch(&droop(40.0));
            epochs += 1;
            assert!(epochs < 20);
        }
        assert_ne!(probe.state(), BreakerState::Tripped);
        probe.record_epoch(&droop(40.0));
        assert_eq!(probe.state(), BreakerState::Tripped);
    }

    #[test]
    fn droop_attribution_disabled_by_default_keeps_legacy_behavior() {
        let mut b = CircuitBreaker::default();
        for _ in 0..50 {
            assert_eq!(b.record_epoch(&droop(100.0)), BreakerState::Healthy);
        }
        assert!(!b.would_trip_on_droop(1000.0));
        assert_eq!(b.trips(), 0);
        // The EWMA still tracks (it is observability, not control).
        assert!(b.droop_ewma_mv() > 90.0);
    }

    #[test]
    fn droop_watch_band_freezes_recovery_until_the_attack_subsides() {
        let mut b = CircuitBreaker::new(droop_config());
        // Hold inside the watch band, below trip.
        for _ in 0..60 {
            b.record_epoch(&droop(15.0));
        }
        assert_eq!(b.state(), BreakerState::Watch);
        assert!(b.droop_watch_active());
        // Droop gone: the EWMA decays and the breaker recovers.
        let mut epochs = 0;
        while b.state() != BreakerState::Healthy {
            b.record_epoch(&HealthSignal::clean());
            epochs += 1;
            assert!(epochs < 100, "recovery must happen once the droop stops");
        }
        assert_eq!(b.trips(), 0);
    }

    #[test]
    fn legacy_breaker_json_without_droop_fields_decodes() {
        let modern = serde::json::to_string(&CircuitBreaker::default());
        let legacy = modern
            .replace(",\"droop_watch_mv\":0.0", "")
            .replace(",\"droop_trip_mv\":0.0", "")
            .replace(",\"droop_ewma\":0.0", "");
        assert!(!legacy.contains("droop"), "fixture must predate droop");
        let b: CircuitBreaker = serde::json::from_str(&legacy).unwrap();
        assert_eq!(b, CircuitBreaker::default());
    }

    #[test]
    fn safety_state_serde_roundtrip() {
        let mut server = XGene2Server::new(SigmaBin::Ttt, 10);
        let mut state = CampaignSafetyState::default();
        state.sentinel.check(&mut server, PmdId::new(0));
        state.breaker.record_epoch(&ce(2));
        state.runs_since_sentinel = 3;
        let text = serde::json::to_string(&state);
        let back: CampaignSafetyState = serde::json::from_str(&text).unwrap();
        assert_eq!(state, back);
        assert_eq!(back.summary(), state.summary());
    }
}
