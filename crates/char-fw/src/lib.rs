//! The automated characterization framework of the DSN'18 guardband study.
//!
//! Paper Fig. 2 describes a three-phase framework — initialization,
//! execution, parsing — that finds each component's limits under scaled
//! voltage/frequency/refresh conditions and classifies every run's effect:
//!
//! * [`board`] — board provisioning: campaigns take injected board
//!   handles (the fleet scheduler's and a future hardware backend's
//!   entry point) instead of constructing their own;
//! * [`setup`] — characterization setups, voltage schedules, safe-outcome
//!   policies (initialization phase);
//! * [`runner`] — the execution loop with watchdog recovery and per-run
//!   records, including the Vmin search (execution phase);
//! * [`resilience`] — retry/backoff policies, quarantine bookkeeping and
//!   checkpoint/resume state for campaigns that must survive the
//!   harness's own failures;
//! * [`integrity`] — CRC-sealed framing for serialized campaign state,
//!   so a torn checkpoint write is a typed corruption error rather than
//!   a mystery decode failure;
//! * [`safety`] — the production safety net's primitives: redundant-
//!   execution (DMR) sentinel canaries and the EWMA CE-rate circuit
//!   breaker scheduled inside campaigns;
//! * [`report`] — classification tables and the final CSVs (parsing
//!   phase);
//! * [`dramchar`] — DRAM campaigns combining the PID thermal testbed,
//!   refresh relaxation and DPBench/Rodinia workloads;
//! * [`frequency`] — Fmax campaigns (the DVFS dual of the Vmin search);
//! * [`multiprocess`] — rail-Vmin campaigns for simultaneous instances
//!   (the single-process → Fig. 5 mix bridge);
//! * [`mod@soak`] — long-duration safe-point qualification ("without any
//!   disruption");
//! * [`warmstart`] — re-characterization seeded by a previous epoch's
//!   safe point: narrow Vmin windows around the prior, with escalation
//!   to a cold walk when drift outruns the headroom.
//!
//! # Examples
//!
//! Characterize one benchmark's Vmin on the most robust core:
//!
//! ```no_run
//! use char_fw::runner::CampaignRunner;
//! use char_fw::setup::VminCampaign;
//! use workload_sim::spec::by_name;
//! use xgene_sim::server::XGene2Server;
//! use xgene_sim::sigma::SigmaBin;
//!
//! let mut server = XGene2Server::new(SigmaBin::Ttt, 1);
//! let core = server.chip().most_robust_core();
//! let campaign = VminCampaign::dsn18(vec![by_name("mcf").unwrap().profile()], vec![core]);
//! let result = CampaignRunner::new(&mut server).run(&campaign);
//! println!("mcf Vmin: {:?}", result.vmin("mcf", core));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod board;
pub mod dramchar;
pub mod frequency;
pub mod integrity;
pub mod multiprocess;
pub mod report;
pub mod resilience;
pub mod runner;
pub mod safety;
pub mod setup;
pub mod soak;
pub mod warmstart;

pub use board::{BoardProvider, SeededBoards};
pub use dramchar::{run_dram_campaign, DramCampaignConfig, DramCampaignReport};
pub use frequency::{run_fmax_campaign, FmaxCampaign, FmaxResult};
pub use integrity::{crc32, seal, unseal, CorruptCheckpoint};
pub use multiprocess::{
    rail_scaling, rail_scaling_with, run_multiprocess_campaign, MultiProcessCampaign,
    RailVminResult,
};
pub use report::{
    classify, quarantine_to_csv, records_to_csv, safety_to_csv, vmins_to_csv, OutcomeCounts,
};
pub use resilience::{
    recover_board, BoardRecovery, CampaignCheckpoint, CheckpointError, QuarantineRecord,
    QuarantineTracker, RecoveryStats, ResilienceConfig, RetryPolicy,
};
pub use runner::{CampaignResult, CampaignRunner, ResilientRunner, RunRecord, VminResult};
pub use safety::{
    BreakerConfig, BreakerState, CampaignSafetyState, CircuitBreaker, HealthSignal, SafetySummary,
    SentinelReport, SentinelRunner, SentinelStats, SentinelVerdict, TripReason,
};
pub use setup::{SafePolicy, Setup, VminCampaign};
pub use soak::{soak, SoakConfig, SoakReport};
pub use warmstart::{
    cold_walk_setups, distinct_setups, run_warm_start, WarmStartConfig, WarmStartOutcome,
};
