//! Board provisioning for campaigns.
//!
//! Campaign entry points take a board *handle* (`&mut XGene2Server`) or a
//! [`BoardProvider`] when they need one fresh board per configuration —
//! they never construct boards themselves. That inversion is what lets
//! the fleet scheduler inject per-unit sampled boards, and what a future
//! real-hardware backend would implement to hand out SLIMpro connections
//! instead of simulations.

use xgene_sim::server::XGene2Server;
use xgene_sim::sigma::SigmaBin;

/// Supplies fresh boards to campaigns that need one power-on state per
/// configuration (e.g. the rail-scaling sweep boots an identical board
/// for every instance count).
pub trait BoardProvider {
    /// A freshly booted board for zero-based configuration `index`.
    fn board(&mut self, index: usize) -> XGene2Server;
}

/// The legacy provider: every configuration gets an identical simulated
/// board booted from `(corner, seed)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeededBoards {
    /// Process corner of the part in the socket.
    pub corner: SigmaBin,
    /// Boot seed.
    pub seed: u64,
}

impl BoardProvider for SeededBoards {
    fn board(&mut self, _index: usize) -> XGene2Server {
        XGene2Server::new(self.corner, self.seed)
    }
}

/// Closures provide boards too: `|i| fleet_spec.board(i).boot(..)`.
impl<F: FnMut(usize) -> XGene2Server> BoardProvider for F {
    fn board(&mut self, index: usize) -> XGene2Server {
        self(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_boards_hand_out_identical_power_on_states() {
        let mut provider = SeededBoards {
            corner: SigmaBin::Tff,
            seed: 17,
        };
        let a = provider.board(0);
        let b = provider.board(5);
        assert_eq!(a.chip(), b.chip());
        assert_eq!(a.pmd_voltage(), b.pmd_voltage());
    }

    #[test]
    fn closures_are_providers() {
        let mut calls = Vec::new();
        let mut provider = |i: usize| {
            calls.push(i);
            XGene2Server::new(SigmaBin::Ttt, i as u64)
        };
        let _ = BoardProvider::board(&mut provider, 3);
        assert_eq!(calls, vec![3]);
    }
}
