//! Frequency (Fmax) characterization campaigns — the DVFS dual of the
//! undervolting study.
//!
//! At a fixed supply voltage the framework walks the PLL upward (the
//! socketed validation boards allow frequencies outside the DVFS table)
//! until a benchmark fails, revealing each chip's frequency guardband the
//! same way the Vmin campaigns reveal the voltage guardband.

use crate::resilience::{recover_board, set_pmd_voltage_verified, ResilienceConfig};
use crate::setup::SafePolicy;
use power_model::units::{Megahertz, Millivolts};
use serde::{Deserialize, Serialize};
use xgene_sim::server::XGene2Server;
use xgene_sim::topology::CoreId;
use xgene_sim::workload::WorkloadProfile;

/// An Fmax campaign definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FmaxCampaign {
    /// Benchmarks to characterize.
    pub benchmarks: Vec<WorkloadProfile>,
    /// Cores to characterize individually.
    pub cores: Vec<CoreId>,
    /// Supply voltage during the search.
    pub voltage: Millivolts,
    /// Starting frequency (the nominal clock).
    pub start: Megahertz,
    /// Search ceiling.
    pub ceiling: Megahertz,
    /// PLL step per setup, in MHz.
    pub step_mhz: u32,
    /// Repetitions per setup.
    pub repetitions: u32,
    /// What counts as safe.
    pub policy: SafePolicy,
}

impl FmaxCampaign {
    /// The standard search: from 2.4 GHz upward in 25 MHz steps at the
    /// nominal 980 mV, 10 repetitions per step.
    pub fn dsn18(benchmarks: Vec<WorkloadProfile>, cores: Vec<CoreId>) -> Self {
        FmaxCampaign {
            benchmarks,
            cores,
            voltage: Millivolts::XGENE2_NOMINAL,
            start: Megahertz::XGENE2_NOMINAL,
            ceiling: Megahertz::new(3200),
            step_mhz: 25,
            repetitions: 10,
            policy: SafePolicy::AllowCorrected,
        }
    }

    /// The ascending frequency schedule.
    pub fn schedule(&self) -> Vec<Megahertz> {
        let mut out = Vec::new();
        let mut f = self.start.as_u32();
        while f <= self.ceiling.as_u32() {
            out.push(Megahertz::new(f));
            f += self.step_mhz;
        }
        out
    }
}

/// Fmax search result for one (benchmark, core).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FmaxResult {
    /// Benchmark name.
    pub benchmark: String,
    /// Core under test.
    pub core: CoreId,
    /// Highest frequency at which every repetition was safe.
    pub fmax: Option<Megahertz>,
}

/// Runs the campaign against a server.
pub fn run_fmax_campaign(server: &mut XGene2Server, campaign: &FmaxCampaign) -> Vec<FmaxResult> {
    let resilience = ResilienceConfig::default();
    let mut results = Vec::new();
    for benchmark in &campaign.benchmarks {
        for &core in &campaign.cores {
            let mut best: Option<Megahertz> = None;
            'schedule: for freq in campaign.schedule() {
                for _rep in 0..campaign.repetitions {
                    set_pmd_voltage_verified(
                        server,
                        campaign.voltage,
                        resilience.setup_restore_attempts,
                    );
                    server
                        .set_pmd_frequency_unlocked(core.pmd(), freq)
                        .expect("campaign frequencies are in the PLL range");
                    let outcome = server.run_on_core(core, benchmark).outcome;
                    if campaign.policy.precautionary_reset(outcome) {
                        server.reset();
                    }
                    recover_board(server, &resilience.retry);
                    if !campaign.policy.accepts(outcome) {
                        break 'schedule;
                    }
                }
                best = Some(freq);
            }
            results.push(FmaxResult {
                benchmark: benchmark.name().to_owned(),
                core,
                fmax: best,
            });
        }
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload_sim::spec::by_name;
    use xgene_sim::sigma::SigmaBin;

    fn campaign_for(bench: &str, core: CoreId) -> FmaxCampaign {
        FmaxCampaign::dsn18(vec![by_name(bench).unwrap().profile()], vec![core])
    }

    #[test]
    fn campaign_finds_the_model_fmax() {
        let mut server = XGene2Server::new(SigmaBin::Ttt, 81);
        let chip = server.chip().clone();
        let core = chip.most_robust_core();
        let campaign = campaign_for("mcf", core);
        let results = run_fmax_campaign(&mut server, &campaign);
        let found = results[0].fmax.expect("mcf overclocks at nominal voltage");
        let model = chip.fmax(core, &by_name("mcf").unwrap().profile(), campaign.voltage);
        let delta = i64::from(found.as_u32()) - i64::from(model.as_u32());
        // Within one marginal band's worth of PLL steps below the model.
        assert!((-60..=25).contains(&delta), "found {found}, model {model}");
    }

    #[test]
    fn fast_corner_clocks_highest() {
        let fmax_of = |bin| {
            let mut server = XGene2Server::new(bin, 82);
            let core = server.chip().most_robust_core();
            let campaign = campaign_for("mcf", core);
            run_fmax_campaign(&mut server, &campaign)[0]
                .fmax
                .expect("all corners overclock mcf somewhat")
        };
        let tff = fmax_of(SigmaBin::Tff);
        let ttt = fmax_of(SigmaBin::Ttt);
        let tss = fmax_of(SigmaBin::Tss);
        assert!(tff > ttt, "TFF {tff} vs TTT {ttt}");
        assert!(ttt > tss, "TTT {ttt} vs TSS {tss}");
    }

    #[test]
    fn heavier_workloads_clock_lower() {
        let mut server = XGene2Server::new(SigmaBin::Ttt, 83);
        let core = server.chip().most_robust_core();
        let mcf = run_fmax_campaign(&mut server, &campaign_for("mcf", core))[0]
            .fmax
            .unwrap();
        let milc = run_fmax_campaign(&mut server, &campaign_for("milc", core))[0]
            .fmax
            .unwrap();
        assert!(mcf > milc, "mcf {mcf} vs milc {milc}");
    }

    #[test]
    fn hung_board_recovery_keeps_later_walks_intact() {
        let profile = by_name("mcf").unwrap().profile();
        let mut campaign = FmaxCampaign::dsn18(vec![profile], vec![CoreId::new(0), CoreId::new(1)]);
        // 600 MHz steps overshoot straight into the deterministic crash
        // zone, so the first core's walk ends with a watchdog reset that
        // the fault plan turns into a hang.
        campaign.step_mhz = 600;
        let mut clean = XGene2Server::new(SigmaBin::Ttt, 85);
        let reference = run_fmax_campaign(&mut clean, &campaign);
        let mut faulty = XGene2Server::new(SigmaBin::Ttt, 85);
        faulty.install_fault_plan(xgene_sim::fault::FaultPlan::quiet(9).force_hang_at(0));
        let measured = run_fmax_campaign(&mut faulty, &campaign);
        assert_eq!(
            reference, measured,
            "a hung board must not poison the next core's walk"
        );
        assert!(!faulty.is_hung());
        assert!(
            faulty.reset_count() > clean.reset_count(),
            "recovery cycles happened"
        );
    }

    #[test]
    fn undervolted_fmax_drops_below_nominal_clock() {
        let mut server = XGene2Server::new(SigmaBin::Ttt, 84);
        let core = server.chip().most_robust_core();
        let mut campaign = campaign_for("milc", core);
        // At milc's Vmin there is no frequency headroom left.
        campaign.voltage = Millivolts::new(885);
        let results = run_fmax_campaign(&mut server, &campaign);
        match results[0].fmax {
            None => {} // not even 2.4 GHz was stable
            Some(f) => assert!(f.as_u32() <= 2450, "fmax {f}"),
        }
    }
}
