//! Characterization setups and campaign definitions.
//!
//! A *setup* is one (voltage, frequency, cores) configuration; a
//! *campaign* is the set of runs of one benchmark across setups (paper
//! §III). The initialization phase of the framework turns a benchmark
//! list plus a voltage schedule into campaigns.

use power_model::units::{Megahertz, Millivolts};
use serde::{Deserialize, Serialize};
use xgene_sim::topology::CoreId;
use xgene_sim::workload::WorkloadProfile;

/// One characterization setup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Setup {
    /// PMD-rail voltage of this run.
    pub voltage: Millivolts,
    /// Core frequency.
    pub frequency: Megahertz,
    /// Core under test.
    pub core: CoreId,
}

/// Policy deciding which run outcomes count as "safe" when searching for
/// Vmin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum SafePolicy {
    /// Only fully correct runs are safe (conservative).
    StrictCorrect,
    /// Corrected errors are tolerated — the hardware masked them and the
    /// output was correct (the paper's operational definition: "without
    /// any disruption").
    #[default]
    AllowCorrected,
}

impl SafePolicy {
    /// Whether `outcome` is acceptable under this policy.
    pub fn accepts(self, outcome: xgene_sim::fault::RunOutcome) -> bool {
        use xgene_sim::fault::RunOutcome;
        match self {
            SafePolicy::StrictCorrect => outcome == RunOutcome::Correct,
            SafePolicy::AllowCorrected => outcome.is_usable(),
        }
    }

    /// Whether the execution loop should power-cycle the board after
    /// `outcome` even though the run completed without the watchdog.
    ///
    /// An uncorrectable error means the hardware knows state was
    /// corrupted; under the strict policy the board is considered suspect
    /// and gets a precautionary reset before anything else runs. The
    /// default [`SafePolicy::AllowCorrected`] never asks for one, so
    /// legacy campaigns behave exactly as before.
    pub fn precautionary_reset(self, outcome: xgene_sim::fault::RunOutcome) -> bool {
        use xgene_sim::fault::RunOutcome;
        self == SafePolicy::StrictCorrect && outcome == RunOutcome::UncorrectableError
    }
}

/// An undervolting campaign for a list of benchmarks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VminCampaign {
    /// Benchmarks to characterize.
    pub benchmarks: Vec<WorkloadProfile>,
    /// Cores to characterize individually.
    pub cores: Vec<CoreId>,
    /// Frequency of the runs.
    pub frequency: Megahertz,
    /// Starting (highest) voltage.
    pub start: Millivolts,
    /// Search floor — the campaign never goes below this.
    pub floor: Millivolts,
    /// Voltage decrement per step, in mV.
    pub step_mv: u32,
    /// Repeated runs per setup (the paper repeats each experiment 10×).
    pub repetitions: u32,
    /// What counts as safe.
    pub policy: SafePolicy,
}

impl VminCampaign {
    /// The paper's campaign shape: from nominal down in 5 mV steps with 10
    /// repetitions per setup at 2.4 GHz.
    pub fn dsn18(benchmarks: Vec<WorkloadProfile>, cores: Vec<CoreId>) -> Self {
        VminCampaign {
            benchmarks,
            cores,
            frequency: Megahertz::XGENE2_NOMINAL,
            start: Millivolts::XGENE2_NOMINAL,
            floor: Millivolts::new(700),
            step_mv: 5,
            repetitions: 10,
            policy: SafePolicy::AllowCorrected,
        }
    }

    /// The descending voltage schedule of this campaign.
    pub fn voltage_schedule(&self) -> Vec<Millivolts> {
        let mut schedule = Vec::new();
        let mut v = self.start;
        while v >= self.floor && v.as_u32() > 0 {
            schedule.push(v);
            v = v.step_down(self.step_mv);
        }
        schedule
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xgene_sim::fault::RunOutcome;

    #[test]
    fn voltage_schedule_descends_to_floor() {
        let campaign = VminCampaign::dsn18(vec![], vec![]);
        let schedule = campaign.voltage_schedule();
        assert_eq!(schedule.first().copied(), Some(Millivolts::new(980)));
        assert_eq!(schedule.last().copied(), Some(Millivolts::new(700)));
        for w in schedule.windows(2) {
            assert_eq!(w[0].as_u32() - w[1].as_u32(), 5);
        }
    }

    #[test]
    fn only_strict_policy_asks_for_precautionary_resets() {
        assert!(SafePolicy::StrictCorrect.precautionary_reset(RunOutcome::UncorrectableError));
        for outcome in [
            RunOutcome::Correct,
            RunOutcome::CorrectableError,
            RunOutcome::SilentDataCorruption,
            RunOutcome::Crash,
        ] {
            assert!(
                !SafePolicy::StrictCorrect.precautionary_reset(outcome),
                "{outcome}"
            );
        }
        assert!(!SafePolicy::AllowCorrected.precautionary_reset(RunOutcome::UncorrectableError));
    }

    #[test]
    fn policies_differ_on_corrected_errors() {
        assert!(SafePolicy::AllowCorrected.accepts(RunOutcome::CorrectableError));
        assert!(!SafePolicy::StrictCorrect.accepts(RunOutcome::CorrectableError));
        for policy in [SafePolicy::StrictCorrect, SafePolicy::AllowCorrected] {
            assert!(policy.accepts(RunOutcome::Correct));
            assert!(!policy.accepts(RunOutcome::SilentDataCorruption));
            assert!(!policy.accepts(RunOutcome::Crash));
        }
    }
}
