//! Warm-start re-characterization: re-walking Vmin from the previous
//! epoch's safe point instead of from nominal.
//!
//! The first characterization of a board has no choice but to walk the
//! full schedule — nominal down to the floor, 5 mV at a time, ten
//! repetitions per setup. A *re*-characterization knows where the Vmin
//! was last epoch and that silicon only drifts upward a few mV per
//! year, so it can walk a narrow window around the prior instead:
//! start a small headroom above it (covering any upward drift since),
//! stop a small slack below it (no point confirming territory the
//! board already left behind). That cuts the steps per (benchmark,
//! core) point from dozens to a handful — the difference between a
//! maintenance campaign a scheduler can afford monthly and one it
//! cannot.
//!
//! The narrowing is **conservative, never optimistic**: the warm
//! window is a sub-range of the cold schedule on the same voltage
//! grid, so a warm walk can only report a Vmin equal to or *higher*
//! than the cold walk would (higher = more margin kept in hand). If
//! even the top of the window fails — the board aged past the headroom
//! — the walk **escalates** to the full cold schedule rather than
//! declare the point dead, so a surprise drift costs time, not
//! correctness.

use crate::resilience::ResilienceConfig;
use crate::runner::{CampaignResult, ResilientRunner};
use crate::setup::VminCampaign;
use power_model::units::Millivolts;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use telemetry::Level;
use xgene_sim::server::XGene2Server;
use xgene_sim::topology::CoreId;

/// How far around the prior Vmin the warm window reaches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WarmStartConfig {
    /// mV above the prior Vmin the walk starts at — the drift budget a
    /// window absorbs before escalating to a cold walk.
    pub headroom_mv: u32,
    /// mV below the prior Vmin the walk gives up at. Silicon does not
    /// un-age, so anything found below the prior is measurement grace,
    /// not margin to chase.
    pub floor_slack_mv: u32,
}

impl WarmStartConfig {
    /// The lifetime subsystem's defaults: 40 mV of drift budget (a few
    /// years of median aging between epochs), 25 mV of downward slack.
    pub fn dsn18() -> Self {
        WarmStartConfig {
            headroom_mv: 40,
            floor_slack_mv: 25,
        }
    }
}

impl Default for WarmStartConfig {
    fn default() -> Self {
        WarmStartConfig::dsn18()
    }
}

/// What a warm-start campaign did, beyond the plain result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WarmStartOutcome {
    /// The merged campaign result, shaped exactly like a cold
    /// [`ResilientRunner`] result (same walk order, one
    /// [`VminResult`](crate::runner::VminResult) per (benchmark, core)).
    pub result: CampaignResult,
    /// Distinct (benchmark, core, voltage) setups actually visited —
    /// the cost metric the warm window exists to shrink.
    pub walked_setups: u64,
    /// Points walked inside a warm window.
    pub warm_points: u64,
    /// Points with no usable prior, walked cold from the start.
    pub cold_points: u64,
    /// Points whose warm window missed (the board drifted past the
    /// headroom) and were re-walked cold.
    pub escalations: u64,
}

/// Runs `campaign` with per-core priors from a previous epoch.
///
/// `priors[core.index()]` is the core's Vmin (mV) from the last
/// characterization, `None` where that epoch found no safe setup (or
/// the slice is simply shorter). Walk order matches the cold runner —
/// benchmarks outer, cores inner — so downstream parsing is oblivious
/// to how the result was produced.
pub fn run_warm_start(
    server: &mut XGene2Server,
    campaign: &VminCampaign,
    priors: &[Option<u32>],
    config: WarmStartConfig,
    resilience: ResilienceConfig,
) -> WarmStartOutcome {
    let _span = telemetry::span!(
        Level::Info,
        "warm_start",
        benchmarks = campaign.benchmarks.len(),
        cores = campaign.cores.len(),
        headroom_mv = config.headroom_mv,
    );
    let mut outcome = WarmStartOutcome {
        result: CampaignResult::default(),
        walked_setups: 0,
        warm_points: 0,
        cold_points: 0,
        escalations: 0,
    };
    for benchmark in &campaign.benchmarks {
        for &core in &campaign.cores {
            let prior = priors.get(core.index()).copied().flatten();
            let (mini, warm) = match prior {
                Some(p) => (narrowed(campaign, benchmark.clone(), core, p, config), true),
                None => (point_campaign(campaign, benchmark.clone(), core), false),
            };
            let sub = ResilientRunner::new(server, mini, resilience).run_to_completion();
            let missed = warm && sub.vmins.iter().all(|v| v.vmin.is_none());
            if missed {
                // The whole window failed: drift outran the headroom.
                // Keep the window's records (those runs happened) but
                // take the authoritative Vmin from a full cold walk.
                telemetry::counter!("warmstart_escalations_total");
                telemetry::event!(
                    Level::Warn,
                    "warmstart_escalated",
                    benchmark = benchmark.name(),
                    core = core.index(),
                    prior_mv = i64::from(prior.unwrap_or(0)),
                );
                outcome.escalations += 1;
                merge(&mut outcome.result, sub, false);
                let cold = point_campaign(campaign, benchmark.clone(), core);
                let redo = ResilientRunner::new(server, cold, resilience).run_to_completion();
                merge(&mut outcome.result, redo, true);
            } else {
                if warm {
                    outcome.warm_points += 1;
                } else {
                    outcome.cold_points += 1;
                }
                merge(&mut outcome.result, sub, true);
            }
        }
    }
    outcome.walked_setups = distinct_setups(&outcome.result);
    telemetry::counter!("warmstart_points_total", outcome.warm_points);
    telemetry::counter!("warmstart_setups_total", outcome.walked_setups);
    telemetry::event!(
        Level::Info,
        "warm_start_complete",
        walked_setups = outcome.walked_setups,
        warm_points = outcome.warm_points,
        cold_points = outcome.cold_points,
        escalations = outcome.escalations,
    );
    outcome
}

/// Number of distinct setups a cold walk of `campaign` would visit in
/// the worst case (full schedule for every point) — the denominator of
/// the warm-start savings claim.
pub fn cold_walk_setups(campaign: &VminCampaign) -> u64 {
    (campaign.voltage_schedule().len() * campaign.benchmarks.len() * campaign.cores.len()) as u64
}

/// The single-point cold campaign: the full schedule, one benchmark,
/// one core.
fn point_campaign(
    campaign: &VminCampaign,
    benchmark: xgene_sim::workload::WorkloadProfile,
    core: CoreId,
) -> VminCampaign {
    VminCampaign {
        benchmarks: vec![benchmark],
        cores: vec![core],
        ..campaign.clone()
    }
}

/// The warm window for one point: the largest cold-schedule grid point
/// at or below `prior + headroom` down to `prior − slack`, never wider
/// than the cold campaign itself.
fn narrowed(
    campaign: &VminCampaign,
    benchmark: xgene_sim::workload::WorkloadProfile,
    core: CoreId,
    prior_mv: u32,
    config: WarmStartConfig,
) -> VminCampaign {
    let step = campaign.step_mv.max(1);
    let top = prior_mv.saturating_add(config.headroom_mv);
    // Stay on the cold schedule's grid (start − k·step) so a warm Vmin
    // is always a voltage the cold walk could have reported.
    let start = if top >= campaign.start.as_u32() {
        campaign.start
    } else {
        let k = (campaign.start.as_u32() - top).div_ceil(step);
        Millivolts::new(campaign.start.as_u32() - k * step)
    };
    let floor = Millivolts::new(
        prior_mv
            .saturating_sub(config.floor_slack_mv)
            .max(campaign.floor.as_u32()),
    );
    VminCampaign {
        benchmarks: vec![benchmark],
        cores: vec![core],
        start,
        floor,
        ..campaign.clone()
    }
}

/// Folds one mini-campaign into the aggregate: records always append
/// (they ran); Vmin rows only from the authoritative walk.
fn merge(aggregate: &mut CampaignResult, sub: CampaignResult, keep_vmins: bool) {
    aggregate.records.extend(sub.records);
    if keep_vmins {
        aggregate.vmins.extend(sub.vmins);
    }
    aggregate.quarantined.extend(sub.quarantined);
    aggregate.watchdog_resets += sub.watchdog_resets;
    let r = &mut aggregate.recovery;
    r.failed_power_cycles += sub.recovery.failed_power_cycles;
    r.reset_retries += sub.recovery.reset_retries;
    r.total_backoff_ms += sub.recovery.total_backoff_ms;
    r.setup_restores += sub.recovery.setup_restores;
    r.quarantined_points += sub.recovery.quarantined_points;
    r.precautionary_resets += sub.recovery.precautionary_resets;
    let s = &mut aggregate.safety;
    s.breaker_trips += sub.safety.breaker_trips;
    if sub.safety.last_trip_reason.is_some() {
        s.last_trip_reason = sub.safety.last_trip_reason;
    }
    s.breaker_state = sub.safety.breaker_state;
    s.sentinel.checks += sub.safety.sentinel.checks;
    s.sentinel.detected_by_checksum += sub.safety.sentinel.detected_by_checksum;
    s.sentinel.detected_by_vote += sub.safety.sentinel.detected_by_vote;
    s.sentinel.timeouts += sub.safety.sentinel.timeouts;
    s.sentinel.hw_errors += sub.safety.sentinel.hw_errors;
    s.sentinel.true_sdcs += sub.safety.sentinel.true_sdcs;
    s.sentinel.undetected_sdcs += sub.safety.sentinel.undetected_sdcs;
}

/// Distinct (benchmark, core, voltage) setups across a result's
/// records — the per-job walk-cost metric, comparable between cold and
/// warm-started campaigns.
pub fn distinct_setups(result: &CampaignResult) -> u64 {
    let mut seen: HashSet<(&str, u8, u32)> = HashSet::new();
    for record in &result.records {
        seen.insert((
            record.benchmark.as_str(),
            record.setup.core.index() as u8,
            record.setup.voltage.as_u32(),
        ));
    }
    seen.len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::CampaignRunner;
    use workload_sim::spec::by_name;
    use xgene_sim::sigma::SigmaBin;
    use xgene_sim::topology::CORE_COUNT;

    fn campaign(cores: Vec<CoreId>) -> VminCampaign {
        VminCampaign::dsn18(vec![by_name("mcf").unwrap().profile()], cores)
    }

    fn priors_from(result: &CampaignResult) -> Vec<Option<u32>> {
        let mut priors = vec![None; CORE_COUNT];
        for v in &result.vmins {
            if let Some(mv) = v.vmin {
                priors[v.core.index()] = Some(mv.as_u32());
            }
        }
        priors
    }

    #[test]
    fn warm_start_matches_the_cold_vmin_with_far_fewer_setups() {
        let cores: Vec<CoreId> = CoreId::all().collect();
        let cold = {
            let mut server = XGene2Server::new(SigmaBin::Ttt, 31);
            CampaignRunner::new(&mut server).run(&campaign(cores.clone()))
        };
        let priors = priors_from(&cold);

        let mut server = XGene2Server::new(SigmaBin::Ttt, 31);
        let warm = run_warm_start(
            &mut server,
            &campaign(cores.clone()),
            &priors,
            WarmStartConfig::dsn18(),
            ResilienceConfig::legacy(),
        );
        assert_eq!(warm.escalations, 0);
        assert_eq!(warm.warm_points as usize, cores.len());
        for core in &cores {
            assert_eq!(
                warm.result.vmin("mcf", *core),
                cold.vmin("mcf", *core),
                "core {core:?}"
            );
        }
        let cold_setups = distinct_setups(&cold);
        assert!(
            warm.walked_setups * 2 <= cold_setups,
            "warm {} vs cold {cold_setups}",
            warm.walked_setups
        );
    }

    #[test]
    fn missing_priors_walk_cold_and_agree_with_the_plain_runner() {
        let cores = vec![CoreId::new(2), CoreId::new(5)];
        let cold = {
            let mut server = XGene2Server::new(SigmaBin::Tff, 33);
            CampaignRunner::new(&mut server).run(&campaign(cores.clone()))
        };
        let mut server = XGene2Server::new(SigmaBin::Tff, 33);
        let warm = run_warm_start(
            &mut server,
            &campaign(cores.clone()),
            &[],
            WarmStartConfig::dsn18(),
            ResilienceConfig::legacy(),
        );
        assert_eq!(warm.cold_points, 2);
        assert_eq!(warm.warm_points, 0);
        assert_eq!(warm.result.vmins, cold.vmins);
    }

    #[test]
    fn stale_priors_escalate_to_a_cold_walk() {
        // Feed priors far below any real Vmin: the whole warm window
        // sits in crash territory, so the walk must escalate and still
        // find the true Vmin.
        let cores = vec![CoreId::new(0)];
        let cold = {
            let mut server = XGene2Server::new(SigmaBin::Tss, 35);
            CampaignRunner::new(&mut server).run(&campaign(cores.clone()))
        };
        let mut server = XGene2Server::new(SigmaBin::Tss, 35);
        let mut priors = vec![None; CORE_COUNT];
        priors[0] = Some(710); // decades out of date
        let warm = run_warm_start(
            &mut server,
            &campaign(cores.clone()),
            &priors,
            WarmStartConfig::dsn18(),
            ResilienceConfig::legacy(),
        );
        assert_eq!(warm.escalations, 1);
        assert_eq!(
            warm.result.vmin("mcf", cores[0]),
            cold.vmin("mcf", cores[0])
        );
        // Exactly one authoritative Vmin row per point, escalation or not.
        assert_eq!(warm.result.vmins.len(), 1);
    }

    #[test]
    fn warm_window_stays_on_the_cold_grid() {
        let base = campaign(vec![CoreId::new(1)]);
        let mini = narrowed(
            &base,
            base.benchmarks[0].clone(),
            CoreId::new(1),
            903, // off-grid prior
            WarmStartConfig::dsn18(),
        );
        // 903 + 40 = 943 → largest grid point ≤ 943 on the 980 − 5k grid
        // is 940; floor is prior − 25 = 878 (off-grid is fine, it is
        // only a bound).
        assert_eq!(mini.start, Millivolts::new(940));
        assert_eq!(mini.floor, Millivolts::new(878));
        let schedule = mini.voltage_schedule();
        assert!(schedule.iter().all(|v| (980 - v.as_u32()) % 5 == 0));
        // Saturating cases: a prior near nominal keeps the cold start…
        let high = narrowed(
            &base,
            base.benchmarks[0].clone(),
            CoreId::new(1),
            975,
            WarmStartConfig::dsn18(),
        );
        assert_eq!(high.start, base.start);
        // …and a prior near the floor keeps the cold floor.
        let low = narrowed(
            &base,
            base.benchmarks[0].clone(),
            CoreId::new(1),
            705,
            WarmStartConfig::dsn18(),
        );
        assert_eq!(low.floor, base.floor);
    }
}
