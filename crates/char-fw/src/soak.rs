//! Safe-point soak testing: the pre-deployment validation that an
//! operating point chosen from characterization really runs "without any
//! disruption" (§IV.D) over long, mixed-workload operation.
//!
//! A soak drives the server at the candidate point through many epochs of
//! a workload schedule — CPU runs plus DRAM scrubs — and renders a
//! verdict: accepted only if zero disruptions occurred, every output
//! matched its golden reference, and no uncorrectable memory error was
//! reported.

use crate::resilience::{recover_board, set_pmd_voltage_verified, ResilienceConfig};
use power_model::server::OperatingPoint;
use serde::{Deserialize, Serialize};
use xgene_sim::fault::RunOutcome;
use xgene_sim::server::XGene2Server;
use xgene_sim::topology::CoreId;
use xgene_sim::workload::WorkloadProfile;

/// Soak-test configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SoakConfig {
    /// Multi-core epochs to run.
    pub epochs: u32,
    /// Simulated milliseconds of DRAM residency per epoch.
    pub epoch_ms: u32,
    /// DRAM scrub every this many epochs.
    pub scrub_interval: u32,
}

impl SoakConfig {
    /// A deployment-qualification soak: 200 epochs of ~1 s each with a
    /// memory scrub every 4 epochs.
    pub fn qualification() -> Self {
        SoakConfig {
            epochs: 200,
            epoch_ms: 1000,
            scrub_interval: 4,
        }
    }
}

/// Soak verdict and statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SoakReport {
    /// Epochs completed.
    pub epochs: u32,
    /// Correctable errors observed (CPU-side CE runs + DRAM CEs).
    pub correctable: u64,
    /// Disruptions: SDC, UE or crash anywhere.
    pub disruptions: u64,
    /// Watchdog resets.
    pub watchdog_resets: u64,
}

impl SoakReport {
    /// Whether the point qualifies for deployment.
    pub fn accepted(&self) -> bool {
        self.disruptions == 0 && self.watchdog_resets == 0
    }
}

/// Soaks `point` under a rotating multi-core schedule.
///
/// # Panics
///
/// Panics if the schedule is empty or larger than 8 workloads.
pub fn soak(
    server: &mut XGene2Server,
    point: &OperatingPoint,
    schedule: &[WorkloadProfile],
    config: &SoakConfig,
) -> SoakReport {
    assert!(
        (1..=8).contains(&schedule.len()),
        "schedule must hold 1..=8 simultaneous workloads"
    );
    let resilience = ResilienceConfig::default();
    let resets_before = server.reset_count();
    let mut report = SoakReport {
        epochs: 0,
        correctable: 0,
        disruptions: 0,
        watchdog_resets: 0,
    };

    for epoch in 0..config.epochs {
        // (Re-)apply the point — a watchdog reset would have cleared it.
        set_pmd_voltage_verified(server, point.pmd_voltage, resilience.setup_restore_attempts);
        server
            .set_soc_voltage(point.soc_voltage)
            .expect("point is in range");
        server
            .set_trefp(point.trefp)
            .expect("point TREFP is positive");

        // Rotate the schedule across the cores each epoch.
        let n = schedule.len();
        let assignments: Vec<(CoreId, &WorkloadProfile)> = (0..n)
            .map(|i| {
                let w = &schedule[(i + epoch as usize) % n];
                (CoreId::new(i as u8), w)
            })
            .collect();
        for result in server.run_many(&assignments) {
            match result.outcome {
                RunOutcome::Correct => {}
                RunOutcome::CorrectableError => report.correctable += 1,
                _ => report.disruptions += 1,
            }
        }
        // A watchdog reset may have left the board hung: a soak must keep
        // going (and count the recovery cycles in its watchdog tally).
        recover_board(server, &resilience.retry);
        server.dram_mut().advance(f64::from(config.epoch_ms));
        if config.scrub_interval > 0 && epoch % config.scrub_interval == 0 {
            let scrub = server.dram_mut().scrub();
            report.correctable += scrub.ce_events;
            report.disruptions += scrub.ue_events;
        }
        report.epochs += 1;
    }
    report.watchdog_resets = server.reset_count() - resets_before;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use power_model::tradeoff::FrequencyPlan;
    use power_model::units::{Milliseconds, Millivolts};
    use workload_sim::jammer;
    use xgene_sim::sigma::SigmaBin;

    fn jammer_schedule() -> Vec<WorkloadProfile> {
        vec![jammer::profile(); 8]
    }

    #[test]
    fn papers_safe_point_passes_qualification() {
        let mut server = XGene2Server::new(SigmaBin::Ttt, 131);
        let report = soak(
            &mut server,
            &OperatingPoint::dsn18_safe_point(),
            &jammer_schedule(),
            &SoakConfig::qualification(),
        );
        assert!(report.accepted(), "{report:?}");
        assert_eq!(report.epochs, 200);
    }

    #[test]
    fn an_over_aggressive_point_is_rejected() {
        let mut server = XGene2Server::new(SigmaBin::Ttt, 132);
        let reckless = OperatingPoint {
            pmd_voltage: Millivolts::new(880), // below the 8-core jammer rail Vmin
            soc_voltage: Millivolts::new(920),
            plan: FrequencyPlan::all_nominal(),
            trefp: Milliseconds::DSN18_RELAXED_TREFP,
        };
        let report = soak(
            &mut server,
            &reckless,
            &jammer_schedule(),
            &SoakConfig {
                epochs: 50,
                epoch_ms: 500,
                scrub_interval: 0,
            },
        );
        assert!(!report.accepted(), "{report:?}");
        assert!(report.disruptions > 0);
    }

    #[test]
    fn soak_survives_a_board_that_hangs_mid_run() {
        let mut server = XGene2Server::new(SigmaBin::Ttt, 134);
        server.install_fault_plan(xgene_sim::fault::FaultPlan::quiet(10).force_hang_at(0));
        let reckless = OperatingPoint {
            pmd_voltage: Millivolts::new(880),
            soc_voltage: Millivolts::new(920),
            plan: FrequencyPlan::all_nominal(),
            trefp: Milliseconds::DSN18_RELAXED_TREFP,
        };
        let config = SoakConfig {
            epochs: 50,
            epoch_ms: 500,
            scrub_interval: 0,
        };
        let report = soak(&mut server, &reckless, &jammer_schedule(), &config);
        assert_eq!(
            report.epochs, config.epochs,
            "a hung board must not end the soak"
        );
        assert!(!server.is_hung(), "recovery must leave the board up");
        assert!(report.disruptions > 0);
        assert!(report.watchdog_resets > 0);
        assert!(!report.accepted());
    }

    #[test]
    fn relaxed_refresh_soak_logs_correctable_memory_errors_only() {
        let mut server = XGene2Server::new(SigmaBin::Ttt, 133);
        server.set_dram_temperature(power_model::units::Celsius::new(60.0));
        let config = SoakConfig {
            epochs: 20,
            epoch_ms: 2500,
            scrub_interval: 2,
        };
        let report = soak(
            &mut server,
            &OperatingPoint::dsn18_safe_point(),
            &jammer_schedule(),
            &config,
        );
        assert!(report.accepted(), "{report:?}");
        assert!(report.correctable > 0, "hot relaxed DRAM must show CEs");
    }
}
