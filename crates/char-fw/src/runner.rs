//! The execution phase: run campaigns against the server with watchdog
//! recovery, producing raw run records.
//!
//! The framework's execution loop (paper Fig. 2) drives each setup,
//! monitors for hangs/crashes through a watchdog, power-cycles the board
//! when needed, restores the characterization setup after reboot (the
//! firmware boots at nominal V/F), and logs everything for the parsing
//! phase.

use crate::setup::{SafePolicy, Setup, VminCampaign};
use power_model::units::Millivolts;
use serde::{Deserialize, Serialize};
use xgene_sim::fault::RunOutcome;
use xgene_sim::server::XGene2Server;
use xgene_sim::topology::CoreId;
use xgene_sim::workload::WorkloadProfile;

/// One raw run record, as written to the framework's logs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunRecord {
    /// Benchmark name.
    pub benchmark: String,
    /// The setup of this run.
    pub setup: Setup,
    /// Repetition index within the setup.
    pub repetition: u32,
    /// Classified outcome.
    pub outcome: RunOutcome,
    /// Whether the watchdog had to power-cycle the board.
    pub watchdog_reset: bool,
}

/// Vmin search result for one (benchmark, core).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VminResult {
    /// Benchmark name.
    pub benchmark: String,
    /// Core under test.
    pub core: CoreId,
    /// Lowest voltage at which every repetition was safe, if any setup
    /// was safe at all.
    pub vmin: Option<Millivolts>,
    /// First (highest) voltage at which a repetition failed.
    pub first_failure: Option<Millivolts>,
}

/// Result of a whole campaign.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CampaignResult {
    /// Every raw record in execution order.
    pub records: Vec<RunRecord>,
    /// Per-(benchmark, core) Vmin results.
    pub vmins: Vec<VminResult>,
    /// Total watchdog resets during the campaign.
    pub watchdog_resets: u64,
}

impl CampaignResult {
    /// Looks up the Vmin for a benchmark on a core.
    pub fn vmin(&self, benchmark: &str, core: CoreId) -> Option<Millivolts> {
        self.vmins
            .iter()
            .find(|r| r.benchmark == benchmark && r.core == core)
            .and_then(|r| r.vmin)
    }

    /// The most robust core for a benchmark (lowest Vmin).
    pub fn most_robust_core(&self, benchmark: &str) -> Option<(CoreId, Millivolts)> {
        self.vmins
            .iter()
            .filter(|r| r.benchmark == benchmark)
            .filter_map(|r| r.vmin.map(|v| (r.core, v)))
            .min_by_key(|(_, v)| *v)
    }
}

/// Runs campaigns against a server, owning watchdog bookkeeping.
#[derive(Debug)]
pub struct CampaignRunner<'a> {
    server: &'a mut XGene2Server,
}

impl<'a> CampaignRunner<'a> {
    /// Creates a runner over a booted server.
    pub fn new(server: &'a mut XGene2Server) -> Self {
        CampaignRunner { server }
    }

    /// Executes the campaign: for every (benchmark, core), walk the
    /// voltage schedule downward, run `repetitions` runs per setup, and
    /// stop the walk at the first unsafe setup (the runs below it would
    /// only crash the board repeatedly).
    pub fn run(&mut self, campaign: &VminCampaign) -> CampaignResult {
        let mut result = CampaignResult::default();
        let resets_before = self.server.reset_count();
        for benchmark in &campaign.benchmarks {
            for &core in &campaign.cores {
                let vmin = self.search_vmin(campaign, benchmark, core, &mut result);
                result.vmins.push(vmin);
            }
        }
        result.watchdog_resets = self.server.reset_count() - resets_before;
        result
    }

    fn search_vmin(
        &mut self,
        campaign: &VminCampaign,
        benchmark: &WorkloadProfile,
        core: CoreId,
        result: &mut CampaignResult,
    ) -> VminResult {
        let mut last_safe: Option<Millivolts> = None;
        let mut first_failure: Option<Millivolts> = None;
        'schedule: for voltage in campaign.voltage_schedule() {
            let setup = Setup { voltage, frequency: campaign.frequency, core };
            let mut all_safe = true;
            for repetition in 0..campaign.repetitions {
                let outcome = self.run_once(&setup, benchmark);
                let watchdog_reset = outcome.needs_reset();
                result.records.push(RunRecord {
                    benchmark: benchmark.name().to_owned(),
                    setup,
                    repetition,
                    outcome,
                    watchdog_reset,
                });
                if !campaign.policy.accepts(outcome) {
                    all_safe = false;
                    // No point repeating a setup that already failed.
                    break;
                }
            }
            if all_safe {
                last_safe = Some(voltage);
            } else {
                first_failure = Some(voltage);
                break 'schedule;
            }
        }
        VminResult {
            benchmark: benchmark.name().to_owned(),
            core,
            vmin: last_safe,
            first_failure,
        }
    }

    /// Applies a setup and runs the benchmark once. Restores the setup if
    /// the watchdog had to power-cycle the board mid-run.
    fn run_once(&mut self, setup: &Setup, benchmark: &WorkloadProfile) -> RunOutcome {
        // (Re-)apply the characterization setup; the board may have
        // rebooted at nominal after a previous crash.
        self.server
            .set_pmd_voltage(setup.voltage)
            .expect("campaign schedules stay within regulator range");
        self.server
            .set_pmd_frequency(setup.core.pmd(), setup.frequency)
            .expect("campaign frequencies are valid DVFS steps");
        self.server.run_on_core(setup.core, benchmark).outcome
    }
}

/// Policy helper: the classification the parsing phase attaches to a whole
/// setup from its repetition outcomes.
pub fn classify_setup(outcomes: &[RunOutcome], policy: SafePolicy) -> RunOutcome {
    let mut worst = RunOutcome::Correct;
    for &o in outcomes {
        let severity = |x: RunOutcome| match x {
            RunOutcome::Correct => 0,
            RunOutcome::CorrectableError => 1,
            RunOutcome::UncorrectableError => 2,
            RunOutcome::SilentDataCorruption => 3,
            RunOutcome::Crash => 4,
        };
        if severity(o) > severity(worst) {
            worst = o;
        }
    }
    let _ = policy;
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use power_model::units::Megahertz;
    use workload_sim::spec::SPEC_SUITE;
    use xgene_sim::sigma::SigmaBin;

    fn campaign_for(names: &[&str], cores: Vec<CoreId>) -> VminCampaign {
        let benchmarks = SPEC_SUITE
            .iter()
            .filter(|b| names.contains(&b.name))
            .map(|b| b.profile())
            .collect();
        VminCampaign::dsn18(benchmarks, cores)
    }

    #[test]
    fn vmin_search_finds_model_vmin() {
        let mut server = XGene2Server::new(SigmaBin::Ttt, 17);
        let chip = server.chip().clone();
        let core = chip.most_robust_core();
        let campaign = campaign_for(&["mcf"], vec![core]);
        let mut runner = CampaignRunner::new(&mut server);
        let result = runner.run(&campaign);
        let found = result.vmin("mcf", core).expect("campaign found a Vmin");
        let model = chip.vmin(
            core,
            &SPEC_SUITE.iter().find(|b| b.name == "mcf").unwrap().profile(),
            Megahertz::XGENE2_NOMINAL,
        );
        // The campaign's safe Vmin sits within one marginal band (the CE
        // zone is probabilistic) above the model Vmin.
        let delta = i64::from(found.as_u32()) - i64::from(model.as_u32());
        assert!((0..=10).contains(&delta), "found {found}, model {model}");
    }

    #[test]
    fn campaign_records_cover_the_walk() {
        let mut server = XGene2Server::new(SigmaBin::Ttt, 18);
        let core = server.chip().most_robust_core();
        let campaign = campaign_for(&["milc"], vec![core]);
        let mut runner = CampaignRunner::new(&mut server);
        let result = runner.run(&campaign);
        assert!(!result.records.is_empty());
        // Records walk downward in voltage.
        let voltages: Vec<u32> =
            result.records.iter().map(|r| r.setup.voltage.as_u32()).collect();
        assert!(voltages.windows(2).all(|w| w[1] <= w[0]));
        // The walk stopped at a failure.
        let last = result.records.last().unwrap();
        assert!(!campaign.policy.accepts(last.outcome));
    }

    #[test]
    fn watchdog_recovers_from_crashes() {
        let mut server = XGene2Server::new(SigmaBin::Tss, 19);
        let core = server.chip().weakest_core();
        // Coarse 150 mV steps jump straight from safe territory deep into
        // the crash zone, so the first failure is a guaranteed lockup.
        let mut campaign = campaign_for(&["milc", "mcf"], vec![core]);
        campaign.step_mv = 150;
        let mut runner = CampaignRunner::new(&mut server);
        let result = runner.run(&campaign);
        // Walking to the floor guarantees crashes; the campaign still
        // completes both benchmarks.
        assert!(result.watchdog_resets >= 1);
        assert_eq!(result.vmins.len(), 2);
        assert!(result.vmins.iter().all(|v| v.vmin.is_some()));
    }

    #[test]
    fn most_robust_core_matches_chip_profile() {
        let mut server = XGene2Server::new(SigmaBin::Ttt, 20);
        let chip = server.chip().clone();
        let cores: Vec<CoreId> = CoreId::all().collect();
        let campaign = campaign_for(&["namd"], cores);
        let mut runner = CampaignRunner::new(&mut server);
        let result = runner.run(&campaign);
        let (best_core, _) = result.most_robust_core("namd").unwrap();
        assert_eq!(best_core, chip.most_robust_core());
    }

    #[test]
    fn classify_setup_takes_worst() {
        use RunOutcome::*;
        assert_eq!(
            classify_setup(&[Correct, CorrectableError, Crash], SafePolicy::AllowCorrected),
            Crash
        );
        assert_eq!(classify_setup(&[Correct], SafePolicy::StrictCorrect), Correct);
    }
}
