//! The execution phase: run campaigns against the server with watchdog
//! recovery, producing raw run records.
//!
//! The framework's execution loop (paper Fig. 2) drives each setup,
//! monitors for hangs/crashes through a watchdog, power-cycles the board
//! when needed, restores the characterization setup after reboot (the
//! firmware boots at nominal V/F), and logs everything for the parsing
//! phase.
//!
//! Execution is resilient to the harness's own failures
//! ([`ResilientRunner`]): power cycles that leave the board hung are
//! retried with exponential backoff, V/F restores the firmware silently
//! drops are detected by read-back and re-issued, setups that crash the
//! board repeatedly are quarantined, and the whole campaign state can be
//! checkpointed at any run boundary and resumed bit-identically. The
//! legacy [`CampaignRunner`] wraps all of this with the non-resilient
//! configuration the seed framework used.

use crate::resilience::{
    recover_board, set_pmd_voltage_verified, CampaignCheckpoint, Cursor, QuarantineRecord,
    QuarantineTracker, RecoveryStats, ResilienceConfig, SearchState,
};
use crate::safety::{
    BreakerState, CampaignSafetyState, HealthSignal, SafetySummary, SentinelVerdict,
    TenantAttribution,
};
use crate::setup::{SafePolicy, Setup, VminCampaign};
use power_model::units::Millivolts;
use serde::{Deserialize, Serialize};
use telemetry::Level;
use xgene_sim::fault::RunOutcome;
use xgene_sim::server::XGene2Server;
use xgene_sim::topology::CoreId;
use xgene_sim::workload::WorkloadProfile;

/// One raw run record, as written to the framework's logs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunRecord {
    /// Benchmark name.
    pub benchmark: String,
    /// The setup of this run.
    pub setup: Setup,
    /// Repetition index within the setup.
    pub repetition: u32,
    /// Classified outcome.
    pub outcome: RunOutcome,
    /// Whether the watchdog had to power-cycle the board.
    pub watchdog_reset: bool,
    /// Extra power-cycle attempts the recovery loop needed after this run
    /// (0 when the first cycle worked or none was needed).
    pub reset_retries: u32,
}

/// Vmin search result for one (benchmark, core).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VminResult {
    /// Benchmark name.
    pub benchmark: String,
    /// Core under test.
    pub core: CoreId,
    /// Lowest voltage at which every repetition was safe, if any setup
    /// was safe at all.
    pub vmin: Option<Millivolts>,
    /// First (highest) voltage at which a repetition failed.
    pub first_failure: Option<Millivolts>,
}

/// Result of a whole campaign.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CampaignResult {
    /// Every raw record in execution order.
    pub records: Vec<RunRecord>,
    /// Per-(benchmark, core) Vmin results.
    pub vmins: Vec<VminResult>,
    /// Total watchdog resets during the campaign.
    pub watchdog_resets: u64,
    /// Setups pulled from the walk for crashing the board repeatedly.
    pub quarantined: Vec<QuarantineRecord>,
    /// What the recovery machinery had to do.
    pub recovery: RecoveryStats,
    /// Safety-net summary: breaker trips and sentinel bookkeeping (all
    /// zero when sentinels were disabled). Defaults keep results from
    /// before this field decodable.
    #[serde(default)]
    pub safety: SafetySummary,
}

impl CampaignResult {
    /// Looks up the Vmin for a benchmark on a core.
    pub fn vmin(&self, benchmark: &str, core: CoreId) -> Option<Millivolts> {
        self.vmins
            .iter()
            .find(|r| r.benchmark == benchmark && r.core == core)
            .and_then(|r| r.vmin)
    }

    /// The most robust core for a benchmark (lowest Vmin).
    pub fn most_robust_core(&self, benchmark: &str) -> Option<(CoreId, Millivolts)> {
        self.vmins
            .iter()
            .filter(|r| r.benchmark == benchmark)
            .filter_map(|r| r.vmin.map(|v| (r.core, v)))
            .min_by_key(|(_, v)| *v)
    }
}

/// Runs campaigns against a server, owning watchdog bookkeeping.
#[derive(Debug)]
pub struct CampaignRunner<'a> {
    server: &'a mut XGene2Server,
}

impl<'a> CampaignRunner<'a> {
    /// Creates a runner over a booted server.
    pub fn new(server: &'a mut XGene2Server) -> Self {
        CampaignRunner { server }
    }

    /// Executes the campaign: for every (benchmark, core), walk the
    /// voltage schedule downward, run `repetitions` runs per setup, and
    /// stop the walk at the first unsafe setup (the runs below it would
    /// only crash the board repeatedly).
    ///
    /// This is the [`ResilientRunner`] under
    /// [`ResilienceConfig::legacy`]: without an installed fault plan the
    /// behavior is identical to the original non-resilient loop.
    pub fn run(&mut self, campaign: &VminCampaign) -> CampaignResult {
        ResilientRunner::new(self.server, campaign.clone(), ResilienceConfig::legacy())
            .run_to_completion()
    }
}

/// The resilient execution loop, advanced one run at a time.
///
/// Each [`Self::step`] executes exactly one benchmark run (plus whatever
/// recovery it entails) and advances the walk, so a campaign can be
/// checkpointed between any two runs with [`Self::checkpoint`] and later
/// resumed bit-identically with [`Self::resume`].
#[derive(Debug)]
pub struct ResilientRunner<'a> {
    server: &'a mut XGene2Server,
    campaign: VminCampaign,
    config: ResilienceConfig,
    cursor: Cursor,
    search: SearchState,
    quarantine: QuarantineTracker,
    result: CampaignResult,
    safety: CampaignSafetyState,
    resets_before: u64,
    done: bool,
    /// Keeps the `campaign` tracing span open for the runner's lifetime.
    _campaign_span: telemetry::SpanGuard,
}

impl<'a> ResilientRunner<'a> {
    /// Starts a campaign on a booted server.
    pub fn new(
        server: &'a mut XGene2Server,
        campaign: VminCampaign,
        config: ResilienceConfig,
    ) -> Self {
        let resets_before = server.reset_count();
        let done = campaign.benchmarks.is_empty() || campaign.cores.is_empty();
        let span = telemetry::span!(
            Level::Info,
            "campaign",
            benchmarks = campaign.benchmarks.len(),
            cores = campaign.cores.len(),
            repetitions = campaign.repetitions,
        );
        ResilientRunner {
            server,
            campaign,
            config,
            cursor: Cursor::default(),
            search: SearchState::default(),
            quarantine: QuarantineTracker::default(),
            result: CampaignResult::default(),
            safety: CampaignSafetyState::default(),
            resets_before,
            done,
            _campaign_span: span,
        }
    }

    /// Snapshots the campaign at the current run boundary. The installed
    /// metrics registry (if any) is embedded as an inert snapshot so a
    /// resumed campaign's report starts from the same numbers.
    pub fn checkpoint(&self) -> CampaignCheckpoint {
        telemetry::event!(
            Level::Info,
            "checkpoint_saved",
            runs = self.result.records.len(),
            bench_idx = self.cursor.bench_idx,
            sched_idx = self.cursor.sched_idx,
        );
        telemetry::counter!("campaign_checkpoints_total");
        CampaignCheckpoint {
            metrics: telemetry::with_registry(telemetry::Registry::snapshot).unwrap_or_default(),
            campaign: self.campaign.clone(),
            config: self.config,
            server: self.server.clone(),
            cursor: self.cursor,
            search: self.search,
            partial: self.result.clone(),
            quarantine: self.quarantine.clone(),
            safety: self.safety.clone(),
            resets_before: self.resets_before,
        }
    }

    /// Resumes a checkpointed campaign. The passed server is overwritten
    /// with the snapshot (RNG and fault-plan state included), so the
    /// continuation reproduces the uninterrupted campaign bit-for-bit.
    pub fn resume(server: &'a mut XGene2Server, checkpoint: CampaignCheckpoint) -> Self {
        *server = checkpoint.server;
        let done = checkpoint.cursor.bench_idx >= checkpoint.campaign.benchmarks.len()
            || checkpoint.campaign.cores.is_empty();
        let span = telemetry::span!(
            Level::Info,
            "campaign",
            benchmarks = checkpoint.campaign.benchmarks.len(),
            cores = checkpoint.campaign.cores.len(),
            resumed_runs = checkpoint.partial.records.len(),
        );
        telemetry::event!(
            Level::Info,
            "campaign_resumed",
            runs = checkpoint.partial.records.len(),
            bench_idx = checkpoint.cursor.bench_idx,
        );
        ResilientRunner {
            server,
            campaign: checkpoint.campaign,
            config: checkpoint.config,
            cursor: checkpoint.cursor,
            search: checkpoint.search,
            quarantine: checkpoint.quarantine,
            result: checkpoint.partial,
            safety: checkpoint.safety,
            resets_before: checkpoint.resets_before,
            done,
            _campaign_span: span,
        }
    }

    /// Whether the campaign has finished.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// The results accumulated so far (complete once [`Self::is_done`]).
    pub fn result(&self) -> &CampaignResult {
        &self.result
    }

    /// Finishes the campaign and returns the result.
    pub fn run_to_completion(mut self) -> CampaignResult {
        while self.step() {}
        self.into_result()
    }

    /// Consumes the runner, returning the (possibly partial) result.
    pub fn into_result(self) -> CampaignResult {
        self.result
    }

    /// Executes one run (plus any recovery it entails) and advances the
    /// walk. Returns `false` once the campaign is finished.
    pub fn step(&mut self) -> bool {
        if self.done {
            return false;
        }
        telemetry::time_scope!("step_wall_seconds");
        let schedule = self.campaign.voltage_schedule();
        if self.cursor.sched_idx >= schedule.len() {
            // Empty or fully traversed schedule: the walk reached the
            // floor without a failure.
            self.finish_point(None);
            return !self.done;
        }
        let voltage = schedule[self.cursor.sched_idx];
        if self.campaign.repetitions == 0 {
            // Degenerate campaign: every setup is vacuously safe.
            self.search.last_safe = Some(voltage);
            self.advance_schedule(&schedule);
            return !self.done;
        }
        let benchmark = self.campaign.benchmarks[self.cursor.bench_idx].clone();
        let core = self.campaign.cores[self.cursor.core_idx];
        let setup = Setup {
            voltage,
            frequency: self.campaign.frequency,
            core,
        };

        let (outcome, reset_retries) = self.run_once(&setup, &benchmark);
        self.result.records.push(RunRecord {
            benchmark: benchmark.name().to_owned(),
            setup,
            repetition: self.cursor.repetition,
            outcome,
            watchdog_reset: outcome.needs_reset(),
            reset_retries,
        });

        if self.campaign.policy.precautionary_reset(outcome) {
            // The board completed the run but reported uncorrectable
            // errors; under the strict policy its state is suspect and it
            // gets power-cycled before anything else runs.
            telemetry::event!(
                Level::Info,
                "precautionary_reset",
                outcome = outcome.to_string(),
            );
            self.server.reset();
            self.result.recovery.precautionary_resets += 1;
            self.recover_if_hung();
        }

        if self.campaign.policy.accepts(outcome) {
            self.quarantine.record_ok(setup);
            self.search.consecutive_crashes = 0;
            self.cursor.repetition += 1;
            if self.cursor.repetition >= self.campaign.repetitions {
                self.cursor.repetition = 0;
                self.search.last_safe = Some(voltage);
                self.advance_schedule(&schedule);
            }
        } else if outcome == RunOutcome::Crash && self.config.crash_retries > 0 {
            let streak = self.quarantine.record_crash(setup);
            self.search.consecutive_crashes = streak;
            if streak > self.config.crash_retries {
                // Error level: this is the post-mortem trigger a flight
                // recorder dumps on.
                telemetry::event!(
                    Level::Error,
                    "quarantine",
                    benchmark = benchmark.name(),
                    voltage_mv = voltage.as_u32(),
                    consecutive_crashes = streak,
                );
                telemetry::counter!("campaign_quarantines_total");
                self.quarantine.quarantine(setup);
                self.result.quarantined.push(QuarantineRecord {
                    benchmark: benchmark.name().to_owned(),
                    setup,
                    consecutive_crashes: streak,
                    // Characterization campaigns run single-tenant: the
                    // crashes can only be the board's own.
                    attribution: TenantAttribution::Board,
                });
                self.result.recovery.quarantined_points += 1;
                self.finish_point(Some(voltage));
            } else {
                // Below the threshold the same repetition is simply
                // retried: the cursor does not move.
                telemetry::event!(
                    Level::Warn,
                    "crash_retry",
                    benchmark = benchmark.name(),
                    voltage_mv = voltage.as_u32(),
                    streak = streak,
                    retries_left = self.config.crash_retries - streak + 1,
                );
                telemetry::counter!("campaign_crash_retries_total");
            }
        } else {
            self.finish_point(Some(voltage));
        }
        self.maybe_run_sentinel();
        self.result.safety = self.safety.summary();
        !self.done
    }

    /// Every [`ResilienceConfig::sentinel_every`] campaign runs, executes
    /// one DMR sentinel check on the PMD of the core under test and feeds
    /// the observables (CE reports, checksum/vote detections, timeouts)
    /// into the campaign's circuit breaker. A freshly opened breaker
    /// triggers a precautionary power cycle: the board's state is suspect.
    ///
    /// Disabled (`sentinel_every == 0`) this consumes nothing — no server
    /// runs, no RNG draws — so legacy campaigns are bit-identical.
    fn maybe_run_sentinel(&mut self) {
        if self.config.sentinel_every == 0 || self.done {
            return;
        }
        self.safety.runs_since_sentinel += 1;
        if self.safety.runs_since_sentinel < self.config.sentinel_every {
            return;
        }
        self.safety.runs_since_sentinel = 0;
        let pmd = self.campaign.cores[self.cursor.core_idx].pmd();
        let report = self.safety.sentinel.check(self.server, pmd);
        self.recover_if_hung();
        let signal = HealthSignal {
            ce_events: report.ce_events,
            scrub_ce_rate: 0.0,
            ue: report.verdict == SentinelVerdict::HwError,
            sdc_checksum: report.verdict == SentinelVerdict::ChecksumMismatch,
            sdc_vote: report.verdict == SentinelVerdict::VoteSplit,
            timeout: report.verdict == SentinelVerdict::Timeout,
            droop_mv: 0.0,
        };
        let before = self.safety.breaker.state();
        let after = self.safety.breaker.record_epoch(&signal);
        if after == BreakerState::Tripped && before != BreakerState::Tripped {
            telemetry::event!(
                Level::Warn,
                "campaign_breaker_trip",
                verdict = report.verdict.to_string(),
                pmd = pmd.index(),
            );
            self.server.reset();
            self.result.recovery.precautionary_resets += 1;
            self.recover_if_hung();
        }
    }

    /// Applies the setup (verifying the V/F writes landed), runs the
    /// benchmark once, and recovers the board if the watchdog's own power
    /// cycle left it hung.
    fn run_once(&mut self, setup: &Setup, benchmark: &WorkloadProfile) -> (RunOutcome, u32) {
        {
            let _setup_span = telemetry::span!(
                Level::Debug,
                "setup",
                voltage_mv = setup.voltage.as_u32(),
                freq_mhz = setup.frequency.as_u32(),
                core = setup.core.index(),
            );
            self.apply_setup(setup);
        }
        let _run_span = telemetry::span!(
            Level::Debug,
            "run",
            benchmark = benchmark.name(),
            repetition = self.cursor.repetition,
        );
        let outcome = self.server.run_on_core(setup.core, benchmark).outcome;
        let reset_retries = self.recover_if_hung();
        telemetry::event!(
            Level::Info,
            "run_complete",
            benchmark = benchmark.name(),
            voltage_mv = setup.voltage.as_u32(),
            repetition = self.cursor.repetition,
            outcome = outcome.to_string(),
            reset_retries = reset_retries,
        );
        telemetry::counter!("campaign_runs_total");
        match outcome {
            RunOutcome::Correct => {}
            RunOutcome::CorrectableError => telemetry::counter!("campaign_ce_total"),
            RunOutcome::UncorrectableError => telemetry::counter!("campaign_ue_total"),
            RunOutcome::SilentDataCorruption => telemetry::counter!("campaign_sdc_total"),
            RunOutcome::Crash => telemetry::counter!("campaign_crashes_total"),
        }
        (outcome, reset_retries)
    }

    /// (Re-)applies the characterization setup; the board may have
    /// rebooted at nominal after a previous crash, and a faulty firmware
    /// may silently drop the voltage write — detected by read-back and
    /// re-issued.
    ///
    /// # Panics
    ///
    /// Panics if the firmware drops more consecutive restores than
    /// [`ResilienceConfig::setup_restore_attempts`] allows (a fault plan
    /// with a 100 % loss rate).
    fn apply_setup(&mut self, setup: &Setup) {
        self.result.recovery.setup_restores += set_pmd_voltage_verified(
            self.server,
            setup.voltage,
            self.config.setup_restore_attempts,
        );
        self.server
            .set_pmd_frequency(setup.core.pmd(), setup.frequency)
            .expect("campaign frequencies are valid DVFS steps");
    }

    /// Recovers a hung board with the retry policy, folding the outcome
    /// into the campaign stats. Returns the retry count.
    fn recover_if_hung(&mut self) -> u32 {
        if !self.server.is_hung() {
            return 0;
        }
        let recovery = recover_board(self.server, &self.config.retry);
        self.result.recovery.absorb(&recovery);
        recovery.retries
    }

    /// Moves to the next voltage, finishing the point if the schedule is
    /// exhausted.
    fn advance_schedule(&mut self, schedule: &[Millivolts]) {
        self.cursor.sched_idx += 1;
        if self.cursor.sched_idx >= schedule.len() {
            self.finish_point(None);
        }
    }

    /// Emits the VminResult of the current (benchmark, core) and advances
    /// to the next point, finishing the campaign after the last one.
    fn finish_point(&mut self, first_failure: Option<Millivolts>) {
        let benchmark = self.campaign.benchmarks[self.cursor.bench_idx]
            .name()
            .to_owned();
        let core = self.campaign.cores[self.cursor.core_idx];
        telemetry::event!(
            Level::Info,
            "point_complete",
            benchmark = benchmark.as_str(),
            core = core.index(),
            vmin_mv = self
                .search
                .last_safe
                .map(|v| i64::from(v.as_u32()))
                .unwrap_or(-1),
            first_failure_mv = first_failure.map(|v| i64::from(v.as_u32())).unwrap_or(-1),
        );
        self.result.vmins.push(VminResult {
            benchmark,
            core,
            vmin: self.search.last_safe,
            first_failure,
        });
        self.search = SearchState::default();
        self.cursor.sched_idx = 0;
        self.cursor.repetition = 0;
        self.cursor.core_idx += 1;
        if self.cursor.core_idx >= self.campaign.cores.len() {
            self.cursor.core_idx = 0;
            self.cursor.bench_idx += 1;
            if self.cursor.bench_idx >= self.campaign.benchmarks.len() {
                self.result.watchdog_resets = self.server.reset_count() - self.resets_before;
                self.done = true;
                telemetry::event!(
                    Level::Info,
                    "campaign_complete",
                    runs = self.result.records.len(),
                    watchdog_resets = self.result.watchdog_resets,
                    quarantined = self.result.quarantined.len(),
                );
            }
        }
    }
}

/// Policy helper: the classification the parsing phase attaches to a whole
/// setup from its repetition outcomes.
pub fn classify_setup(outcomes: &[RunOutcome], policy: SafePolicy) -> RunOutcome {
    let mut worst = RunOutcome::Correct;
    for &o in outcomes {
        let severity = |x: RunOutcome| match x {
            RunOutcome::Correct => 0,
            RunOutcome::CorrectableError => 1,
            RunOutcome::UncorrectableError => 2,
            RunOutcome::SilentDataCorruption => 3,
            RunOutcome::Crash => 4,
        };
        if severity(o) > severity(worst) {
            worst = o;
        }
    }
    let _ = policy;
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use power_model::units::Megahertz;
    use workload_sim::spec::SPEC_SUITE;
    use xgene_sim::fault::FaultPlan;
    use xgene_sim::sigma::SigmaBin;

    fn campaign_for(names: &[&str], cores: Vec<CoreId>) -> VminCampaign {
        let benchmarks = SPEC_SUITE
            .iter()
            .filter(|b| names.contains(&b.name))
            .map(|b| b.profile())
            .collect();
        VminCampaign::dsn18(benchmarks, cores)
    }

    #[test]
    fn vmin_search_finds_model_vmin() {
        let mut server = XGene2Server::new(SigmaBin::Ttt, 17);
        let chip = server.chip().clone();
        let core = chip.most_robust_core();
        let campaign = campaign_for(&["mcf"], vec![core]);
        let mut runner = CampaignRunner::new(&mut server);
        let result = runner.run(&campaign);
        let found = result.vmin("mcf", core).expect("campaign found a Vmin");
        let model = chip.vmin(
            core,
            &SPEC_SUITE
                .iter()
                .find(|b| b.name == "mcf")
                .unwrap()
                .profile(),
            Megahertz::XGENE2_NOMINAL,
        );
        // The campaign's safe Vmin sits within one marginal band (the CE
        // zone is probabilistic) above the model Vmin.
        let delta = i64::from(found.as_u32()) - i64::from(model.as_u32());
        assert!((0..=10).contains(&delta), "found {found}, model {model}");
    }

    #[test]
    fn campaign_records_cover_the_walk() {
        let mut server = XGene2Server::new(SigmaBin::Ttt, 18);
        let core = server.chip().most_robust_core();
        let campaign = campaign_for(&["milc"], vec![core]);
        let mut runner = CampaignRunner::new(&mut server);
        let result = runner.run(&campaign);
        assert!(!result.records.is_empty());
        // Records walk downward in voltage.
        let voltages: Vec<u32> = result
            .records
            .iter()
            .map(|r| r.setup.voltage.as_u32())
            .collect();
        assert!(voltages.windows(2).all(|w| w[1] <= w[0]));
        // The walk stopped at a failure.
        let last = result.records.last().unwrap();
        assert!(!campaign.policy.accepts(last.outcome));
        // Without a fault plan the recovery machinery never engages.
        assert!(!result.recovery.any_recovery());
        assert!(result.quarantined.is_empty());
    }

    #[test]
    fn watchdog_recovers_from_crashes() {
        let mut server = XGene2Server::new(SigmaBin::Tss, 19);
        let core = server.chip().weakest_core();
        // Coarse 150 mV steps jump straight from safe territory deep into
        // the crash zone, so the first failure is a guaranteed lockup.
        let mut campaign = campaign_for(&["milc", "mcf"], vec![core]);
        campaign.step_mv = 150;
        let mut runner = CampaignRunner::new(&mut server);
        let result = runner.run(&campaign);
        // Walking to the floor guarantees crashes; the campaign still
        // completes both benchmarks.
        assert!(result.watchdog_resets >= 1);
        assert_eq!(result.vmins.len(), 2);
        assert!(result.vmins.iter().all(|v| v.vmin.is_some()));
    }

    #[test]
    fn most_robust_core_matches_chip_profile() {
        let mut server = XGene2Server::new(SigmaBin::Ttt, 20);
        let chip = server.chip().clone();
        let cores: Vec<CoreId> = CoreId::all().collect();
        let campaign = campaign_for(&["namd"], cores);
        let mut runner = CampaignRunner::new(&mut server);
        let result = runner.run(&campaign);
        let (best_core, _) = result.most_robust_core("namd").unwrap();
        assert_eq!(best_core, chip.most_robust_core());
    }

    #[test]
    fn classify_setup_takes_worst() {
        use RunOutcome::*;
        assert_eq!(
            classify_setup(
                &[Correct, CorrectableError, Crash],
                SafePolicy::AllowCorrected
            ),
            Crash
        );
        assert_eq!(
            classify_setup(&[Correct], SafePolicy::StrictCorrect),
            Correct
        );
    }

    #[test]
    fn hostile_plan_still_yields_the_same_vmin() {
        // The acceptance scenario: a campaign under an injected fault plan
        // with at least one failed power cycle and one lost setup restore
        // completes with the same Vmin a clean campaign finds. Coarse
        // 150 mV steps guarantee the second setup crashes the board, so
        // reset draws definitely happen; the forced setup loss sits on the
        // first post-recovery voltage write, where the dropped write is
        // actually observable by read-back.
        let core = {
            let server = XGene2Server::new(SigmaBin::Tss, 55);
            server.chip().weakest_core()
        };
        let mut campaign = campaign_for(&["milc"], vec![core]);
        campaign.step_mv = 150;

        let mut clean_server = XGene2Server::new(SigmaBin::Tss, 55);
        let clean = ResilientRunner::new(
            &mut clean_server,
            campaign.clone(),
            ResilienceConfig::dsn18(),
        )
        .run_to_completion();

        let mut faulty_server = XGene2Server::new(SigmaBin::Tss, 55);
        faulty_server.install_fault_plan(
            FaultPlan::quiet(77)
                .with_power_cycle_failure_rate(0.4)
                .with_setup_loss_rate(0.02)
                .force_hang_at(0)
                .force_setup_loss_at(11),
        );
        let faulty = ResilientRunner::new(&mut faulty_server, campaign, ResilienceConfig::dsn18())
            .run_to_completion();

        assert_eq!(
            clean.vmin("milc", core),
            faulty.vmin("milc", core),
            "harness faults must not move the measured Vmin"
        );
        assert!(
            faulty.recovery.failed_power_cycles >= 1,
            "{:?}",
            faulty.recovery
        );
        assert!(faulty.recovery.setup_restores >= 1, "{:?}", faulty.recovery);
        assert!(faulty.recovery.total_backoff_ms > 0);
        assert!(faulty.records.iter().any(|r| r.reset_retries > 0));
    }

    #[test]
    fn repeatedly_crashing_point_is_quarantined() {
        let mut server = XGene2Server::new(SigmaBin::Tss, 56);
        let core = server.chip().weakest_core();
        // 150 mV steps put the second setup deep in the deterministic
        // crash zone: with crash retries on, it crashes K+1 times in a row
        // and gets quarantined.
        let mut campaign = campaign_for(&["milc"], vec![core]);
        campaign.step_mv = 150;
        let config = ResilienceConfig::dsn18();
        let result = ResilientRunner::new(&mut server, campaign, config).run_to_completion();
        assert_eq!(result.quarantined.len(), 1, "{:?}", result.quarantined);
        let q = &result.quarantined[0];
        assert_eq!(q.consecutive_crashes, config.crash_retries + 1);
        assert_eq!(result.recovery.quarantined_points, 1);
        // The walk still produced a Vmin above the quarantined setup.
        let vmin = result.vmins[0].vmin.expect("the first setup was safe");
        assert!(vmin > q.setup.voltage);
        // Every crash retry is in the records: K+1 crashes at the setup.
        let crashes = result
            .records
            .iter()
            .filter(|r| r.setup == q.setup && r.outcome == RunOutcome::Crash)
            .count();
        assert_eq!(crashes as u32, config.crash_retries + 1);
    }

    #[test]
    fn checkpoint_resume_is_bit_identical_mid_campaign() {
        let campaign = {
            let server = XGene2Server::new(SigmaBin::Ttt, 57);
            let core = server.chip().most_robust_core();
            let mut c = campaign_for(&["mcf"], vec![core]);
            c.step_mv = 20;
            c.repetitions = 3;
            c
        };
        let plan = FaultPlan::hostile(58);

        let mut reference_server = XGene2Server::new(SigmaBin::Ttt, 57);
        reference_server.install_fault_plan(plan.clone());
        let reference = ResilientRunner::new(
            &mut reference_server,
            campaign.clone(),
            ResilienceConfig::dsn18(),
        )
        .run_to_completion();

        // Same campaign, interrupted after 7 runs and resumed from JSON.
        let mut server = XGene2Server::new(SigmaBin::Ttt, 57);
        server.install_fault_plan(plan);
        let mut runner = ResilientRunner::new(&mut server, campaign, ResilienceConfig::dsn18());
        for _ in 0..7 {
            if !runner.step() {
                break;
            }
        }
        let json = runner.checkpoint().to_json();
        drop(runner);

        // A completely fresh server is overwritten by the snapshot.
        let mut resumed_server = XGene2Server::new(SigmaBin::Tff, 9999);
        let checkpoint = CampaignCheckpoint::from_json(&json).unwrap();
        let resumed = ResilientRunner::resume(&mut resumed_server, checkpoint).run_to_completion();

        assert_eq!(reference, resumed);
    }

    #[test]
    fn checkpoint_embeds_and_roundtrips_the_metrics_snapshot() {
        let registry = std::rc::Rc::new(telemetry::Registry::new());
        let _guard = telemetry::Telemetry::new()
            .with_registry(registry.clone())
            .install();

        let mut server = XGene2Server::new(SigmaBin::Ttt, 61);
        let core = server.chip().most_robust_core();
        let mut campaign = campaign_for(&["mcf"], vec![core]);
        campaign.step_mv = 20;
        let mut runner = ResilientRunner::new(&mut server, campaign, ResilienceConfig::dsn18());
        for _ in 0..5 {
            assert!(runner.step());
        }
        let checkpoint = runner.checkpoint();
        assert_eq!(checkpoint.metrics, registry.snapshot());
        assert_eq!(checkpoint.metrics.counter("campaign_runs_total"), Some(5));

        // The snapshot survives the JSON round trip bit-for-bit.
        let back = CampaignCheckpoint::from_json(&checkpoint.to_json()).unwrap();
        assert_eq!(back.metrics, checkpoint.metrics);

        // Old checkpoints (no metrics key) still decode, as an empty
        // snapshot.
        let json = checkpoint.to_json();
        let legacy = json.replace(
            &format!(
                ",\"metrics\":{}",
                serde::json::to_string(&checkpoint.metrics)
            ),
            "",
        );
        assert_ne!(legacy, json, "metrics key should have been stripped");
        let old = CampaignCheckpoint::from_json(&legacy).unwrap();
        assert_eq!(old.metrics, telemetry::MetricsSnapshot::default());
    }

    #[test]
    fn guarded_campaign_runs_sentinels_and_stays_healthy_without_faults() {
        let mut server = XGene2Server::new(SigmaBin::Ttt, 71);
        let core = server.chip().most_robust_core();
        let profile = SPEC_SUITE
            .iter()
            .find(|b| b.name == "mcf")
            .unwrap()
            .profile();
        let vmin = server
            .chip()
            .vmin(core, &profile, Megahertz::XGENE2_NOMINAL);
        let mut campaign = campaign_for(&["mcf"], vec![core]);
        campaign.step_mv = 5;
        // Keep the whole schedule above Vmin: with no setup in the danger
        // zone, every canary must come back clean.
        campaign.floor = Millivolts::new(vmin.as_u32() + 20);
        let config = ResilienceConfig {
            sentinel_every: 4,
            ..ResilienceConfig::guarded()
        };
        let result = ResilientRunner::new(&mut server, campaign, config).run_to_completion();
        assert!(
            result.safety.sentinel.checks >= 2,
            "{:?}",
            result.safety.sentinel
        );
        assert_eq!(result.safety.breaker_trips, 0);
        assert_eq!(result.safety.sentinel.undetected_sdcs, 0);
        assert_eq!(result.safety.last_trip_reason, None);
    }

    #[test]
    fn sub_vmin_sdc_in_a_canary_is_detected_and_trips_the_breaker() {
        // Force every completed sub-Vmin run silent: once the walk dips
        // below Vmin, the sentinel's canaries corrupt too — and the
        // checksum/vote machinery must catch every single one.
        let mut server = XGene2Server::new(SigmaBin::Tss, 72);
        server.install_fault_plan(FaultPlan::quiet(72).with_sub_vmin_sdc());
        let core = server.chip().weakest_core();
        let mut campaign = campaign_for(&["milc"], vec![core]);
        campaign.step_mv = 10;
        let config = ResilienceConfig {
            sentinel_every: 2,
            crash_retries: 6,
            ..ResilienceConfig::guarded()
        };
        let result = ResilientRunner::new(&mut server, campaign, config).run_to_completion();
        let s = result.safety;
        assert!(s.sentinel.checks >= 1, "{s:?}");
        assert_eq!(s.sentinel.undetected_sdcs, 0, "zero misses: {s:?}");
        if s.sentinel.true_sdcs > 0 {
            assert!(s.sentinel.detections() > 0, "{s:?}");
            assert!(s.breaker_trips >= 1, "{s:?}");
        }
    }

    #[test]
    fn checkpoint_resume_is_bit_identical_with_sentinels_enabled() {
        let campaign = {
            let server = XGene2Server::new(SigmaBin::Ttt, 73);
            let core = server.chip().most_robust_core();
            let mut c = campaign_for(&["mcf"], vec![core]);
            c.step_mv = 20;
            c.repetitions = 3;
            c
        };
        let plan = FaultPlan::hostile(74).with_sub_vmin_sdc();
        let config = ResilienceConfig {
            sentinel_every: 3,
            ..ResilienceConfig::guarded()
        };

        let mut reference_server = XGene2Server::new(SigmaBin::Ttt, 73);
        reference_server.install_fault_plan(plan.clone());
        let reference = ResilientRunner::new(&mut reference_server, campaign.clone(), config)
            .run_to_completion();

        let mut server = XGene2Server::new(SigmaBin::Ttt, 73);
        server.install_fault_plan(plan);
        let mut runner = ResilientRunner::new(&mut server, campaign, config);
        for _ in 0..9 {
            if !runner.step() {
                break;
            }
        }
        let json = runner.checkpoint().to_json();
        drop(runner);

        let mut resumed_server = XGene2Server::new(SigmaBin::Tff, 31337);
        let checkpoint = CampaignCheckpoint::from_json(&json).unwrap();
        let resumed = ResilientRunner::resume(&mut resumed_server, checkpoint).run_to_completion();

        assert_eq!(reference, resumed, "safety state must resume seamlessly");
        assert!(reference.safety.sentinel.checks >= 1);
    }

    #[test]
    fn strict_policy_issues_precautionary_reset_on_ue() {
        // Pin a single setup inside the failure band, where completed runs
        // report UEs. Under StrictCorrect every UE must power-cycle the
        // board even though the run finished without the watchdog; under
        // the default policy none do.
        let run_with = |policy: SafePolicy| {
            let mut server = XGene2Server::new(SigmaBin::Tss, 52);
            let core = server.chip().weakest_core();
            let profile = SPEC_SUITE
                .iter()
                .find(|b| b.name == "milc")
                .unwrap()
                .profile();
            let vmin = server
                .chip()
                .vmin(core, &profile, Megahertz::XGENE2_NOMINAL);
            let mut campaign = campaign_for(&["milc"], vec![core]);
            campaign.start = Millivolts::new(vmin.as_u32() - 6);
            campaign.floor = campaign.start;
            campaign.policy = policy;
            // Generous crash retries keep the walk alive until a
            // completed-but-failing run (CE/SDC/UE) ends it.
            let config = ResilienceConfig {
                crash_retries: 100,
                ..ResilienceConfig::dsn18()
            };
            ResilientRunner::new(&mut server, campaign, config).run_to_completion()
        };

        let strict = run_with(SafePolicy::StrictCorrect);
        let ue_runs = strict
            .records
            .iter()
            .filter(|r| r.outcome == RunOutcome::UncorrectableError)
            .count() as u64;
        assert!(ue_runs >= 1, "the failure band must have produced a UE");
        assert_eq!(strict.recovery.precautionary_resets, ue_runs);

        let lenient = run_with(SafePolicy::AllowCorrected);
        assert_eq!(lenient.recovery.precautionary_resets, 0);
    }
}
