//! Multi-process characterization (§III: "single-process and
//! multi-process setups").
//!
//! Running N program instances simultaneously raises the shared rail's
//! Vmin — both because more cores switch at once and because the weakest
//! loaded core sets the requirement. This campaign measures the rail Vmin
//! as a function of instance count, which is what connects the
//! single-program Fig. 4 numbers to the Fig. 5 mix voltage (915 mV for
//! 8 instances on TTT).

use crate::resilience::{recover_board, set_pmd_voltage_verified, ResilienceConfig};
use crate::setup::SafePolicy;
use power_model::units::{Megahertz, Millivolts};
use serde::{Deserialize, Serialize};
use xgene_sim::server::XGene2Server;
use xgene_sim::topology::CoreId;
use xgene_sim::workload::WorkloadProfile;

/// A multi-process rail-Vmin campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiProcessCampaign {
    /// One workload per instance, pinned to cores 0..N in order.
    pub workloads: Vec<WorkloadProfile>,
    /// Starting voltage.
    pub start: Millivolts,
    /// Search floor.
    pub floor: Millivolts,
    /// Step in mV.
    pub step_mv: u32,
    /// Repetitions per setup.
    pub repetitions: u32,
    /// Safe-outcome policy.
    pub policy: SafePolicy,
}

impl MultiProcessCampaign {
    /// The standard shape: 5 mV steps from nominal, 10 repetitions.
    pub fn dsn18(workloads: Vec<WorkloadProfile>) -> Self {
        MultiProcessCampaign {
            workloads,
            start: Millivolts::XGENE2_NOMINAL,
            floor: Millivolts::new(700),
            step_mv: 5,
            repetitions: 10,
            policy: SafePolicy::AllowCorrected,
        }
    }
}

/// Result: the lowest rail voltage at which all instances stayed safe.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RailVminResult {
    /// Number of simultaneous instances.
    pub instances: usize,
    /// The measured rail Vmin, if any setup was safe.
    pub rail_vmin: Option<Millivolts>,
}

/// Runs the campaign: walks the rail down until any instance fails.
///
/// # Panics
///
/// Panics if the campaign has no workloads or more than 8.
pub fn run_multiprocess_campaign(
    server: &mut XGene2Server,
    campaign: &MultiProcessCampaign,
) -> RailVminResult {
    let n = campaign.workloads.len();
    assert!((1..=8).contains(&n), "1..=8 instances");
    let resilience = ResilienceConfig::default();
    let cores: Vec<CoreId> = (0..n as u8).map(CoreId::new).collect();
    let mut last_safe = None;
    let mut v = campaign.start;
    while v >= campaign.floor {
        let mut all_safe = true;
        'reps: for _ in 0..campaign.repetitions {
            set_pmd_voltage_verified(server, v, resilience.setup_restore_attempts);
            for (core, _) in cores.iter().zip(&campaign.workloads) {
                server
                    .set_pmd_frequency(core.pmd(), Megahertz::XGENE2_NOMINAL)
                    .expect("nominal frequency is a DVFS step");
            }
            let assignments: Vec<(CoreId, &WorkloadProfile)> = cores
                .iter()
                .copied()
                .zip(campaign.workloads.iter())
                .collect();
            let results = server.run_many(&assignments);
            if results
                .iter()
                .any(|r| campaign.policy.precautionary_reset(r.outcome))
            {
                server.reset();
            }
            recover_board(server, &resilience.retry);
            if results.iter().any(|r| !campaign.policy.accepts(r.outcome)) {
                all_safe = false;
                break 'reps;
            }
        }
        if all_safe {
            last_safe = Some(v);
        } else {
            break;
        }
        v = v.step_down(campaign.step_mv);
    }
    RailVminResult {
        instances: n,
        rail_vmin: last_safe,
    }
}

/// The rail-Vmin scaling curve: instance counts 1..=8 of the same
/// workload replicated, one fresh board per count supplied by
/// `provider` (configuration index `n − 1` for `n` instances).
pub fn rail_scaling_with(
    provider: &mut dyn crate::board::BoardProvider,
    workload: &WorkloadProfile,
) -> Vec<RailVminResult> {
    (1..=8)
        .map(|n| {
            let mut server = provider.board(n - 1);
            let campaign = MultiProcessCampaign::dsn18(vec![workload.clone(); n]);
            run_multiprocess_campaign(&mut server, &campaign)
        })
        .collect()
}

/// [`rail_scaling_with`] on identical seeded boards — the single-board
/// legacy entry point.
pub fn rail_scaling(
    server_seed: u64,
    corner: xgene_sim::sigma::SigmaBin,
    workload: &WorkloadProfile,
) -> Vec<RailVminResult> {
    let mut provider = crate::board::SeededBoards {
        corner,
        seed: server_seed,
    };
    rail_scaling_with(&mut provider, workload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload_sim::spec::{by_name, fig5_mix};
    use xgene_sim::sigma::SigmaBin;

    #[test]
    fn rail_vmin_rises_with_instance_count() {
        let w = by_name("milc").unwrap().profile();
        let curve = rail_scaling(91, SigmaBin::Ttt, &w);
        assert_eq!(curve.len(), 8);
        let vmins: Vec<u32> = curve
            .iter()
            .map(|r| r.rail_vmin.expect("safe point exists").as_u32())
            .collect();
        for w in vmins.windows(2) {
            assert!(w[1] >= w[0], "{vmins:?}");
        }
        assert!(vmins[7] > vmins[0], "{vmins:?}");
    }

    #[test]
    fn injected_boards_reproduce_the_seeded_curve() {
        // The provider-based entry point with a closure handing out the
        // same seeded boards must match the legacy constructor path.
        let w = by_name("milc").unwrap().profile();
        let legacy = rail_scaling(91, SigmaBin::Ttt, &w);
        let mut provider = |_i: usize| XGene2Server::new(SigmaBin::Ttt, 91);
        let injected = rail_scaling_with(&mut provider, &w);
        assert_eq!(legacy, injected);
    }

    #[test]
    fn forced_setup_loss_does_not_corrupt_the_rail_walk() {
        let w = by_name("milc").unwrap().profile();
        let campaign = MultiProcessCampaign::dsn18(vec![w; 4]);
        let mut clean = XGene2Server::new(SigmaBin::Ttt, 93);
        let reference = run_multiprocess_campaign(&mut clean, &campaign);

        // Draw 10 is the first write at the second voltage step — the
        // first write whose loss is visible to read-back.
        let mut faulty = XGene2Server::new(SigmaBin::Ttt, 93);
        faulty.install_fault_plan(xgene_sim::fault::FaultPlan::quiet(7).force_setup_loss_at(10));
        let measured = run_multiprocess_campaign(&mut faulty, &campaign);
        assert_eq!(
            reference, measured,
            "a dropped V restore must not move the rail Vmin"
        );
    }

    #[test]
    fn hung_board_is_recovered_and_the_walk_ends_clean() {
        let w = by_name("milc").unwrap().profile();
        let mut campaign = MultiProcessCampaign::dsn18(vec![w; 2]);
        // 150 mV steps make the second setup crash deterministically, so
        // the forced hang at the first watchdog reset actually fires.
        campaign.step_mv = 150;
        let mut server = XGene2Server::new(SigmaBin::Ttt, 94);
        server.install_fault_plan(xgene_sim::fault::FaultPlan::quiet(8).force_hang_at(0));
        let result = run_multiprocess_campaign(&mut server, &campaign);
        assert_eq!(result.rail_vmin, Some(Millivolts::new(980)));
        assert!(!server.is_hung(), "recovery must leave the board up");
    }

    #[test]
    fn eight_instance_mix_needs_about_915mv_on_ttt() {
        // The Fig. 5 first rung, measured through the framework this time.
        let mut server = XGene2Server::new(SigmaBin::Ttt, 92);
        let mix: Vec<WorkloadProfile> = fig5_mix().iter().map(|b| b.profile()).collect();
        // Worst-case placement: heaviest instance on the weakest core —
        // replicate the paper by pinning in droop order onto cores 0..8.
        let mut ordered = mix.clone();
        ordered.sort_by(|a, b| b.droop_score().total_cmp(&a.droop_score()));
        let campaign = MultiProcessCampaign::dsn18(ordered);
        let result = run_multiprocess_campaign(&mut server, &campaign);
        let v = result.rail_vmin.expect("the mix has a safe point").as_u32();
        assert!((910..=925).contains(&v), "rail Vmin {v}");
    }
}
