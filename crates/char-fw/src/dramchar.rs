//! DRAM characterization campaigns: thermal testbed + DPBenches + HPC
//! workloads under relaxed refresh (paper §III.B/IV.C).
//!
//! A DRAM campaign regulates the DIMMs to a temperature set point with the
//! PID testbed, relaxes the refresh period through SLIMpro, then runs
//! data-pattern benchmarks and the Rodinia applications while collecting
//! CE/UE reports and unique error locations.

use dram_sim::geometry::BANKS_PER_CHIP;
use power_model::units::{Celsius, Milliseconds, Watts};
use serde::{Deserialize, Serialize};
use thermal_sim::sensor::SensorFaultModel;
use thermal_sim::testbed::ThermalTestbed;
use workload_sim::dpbench;
use workload_sim::rodinia::{DynKernel, KernelConfig};
use xgene_sim::server::XGene2Server;

/// Configuration of one DRAM characterization campaign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramCampaignConfig {
    /// Regulated DIMM temperature.
    pub temperature: Celsius,
    /// Relaxed refresh period.
    pub trefp: Milliseconds,
    /// Random-pattern rounds (unique-location coverage).
    pub random_rounds: u64,
    /// Wait factor (in refresh periods) between fill and scrub.
    pub wait_factor: f64,
}

impl DramCampaignConfig {
    /// The paper's 60 °C / 2.283 s configuration.
    pub fn dsn18_60c() -> Self {
        DramCampaignConfig {
            temperature: Celsius::new(60.0),
            trefp: Milliseconds::DSN18_RELAXED_TREFP,
            random_rounds: 6,
            wait_factor: 1.5,
        }
    }

    /// The paper's 50 °C configuration.
    pub fn dsn18_50c() -> Self {
        DramCampaignConfig {
            temperature: Celsius::new(50.0),
            ..Self::dsn18_60c()
        }
    }
}

/// Result of one DRAM campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DramCampaignReport {
    /// The regulated temperature actually reached (true plant value).
    pub settled_temperature: Celsius,
    /// Worst regulation deviation during the campaign window, °C.
    pub regulation_deviation: f64,
    /// Unique error locations per bank (the Table I row).
    pub unique_per_bank: [u64; BANKS_PER_CHIP],
    /// Total corrected errors.
    pub ce_total: u64,
    /// Total uncorrectable errors.
    pub ue_total: u64,
    /// Per-pattern BER of the final verification round.
    pub pattern_bers: Vec<(String, f64)>,
}

impl DramCampaignReport {
    /// Bank-to-bank spread `(max − min) / min` of unique error locations.
    pub fn bank_spread(&self) -> f64 {
        let max = *self.unique_per_bank.iter().max().unwrap_or(&0) as f64;
        let min = *self.unique_per_bank.iter().min().unwrap_or(&0) as f64;
        if min == 0.0 {
            0.0
        } else {
            (max - min) / min
        }
    }
}

/// Runs a full DRAM characterization campaign: thermal settling, refresh
/// relaxation, DPBench rounds, error accounting.
pub fn run_dram_campaign(
    server: &mut XGene2Server,
    testbed: &mut ThermalTestbed,
    config: &DramCampaignConfig,
) -> DramCampaignReport {
    // A fault plan on the server also degrades the testbed's sensors:
    // thermocouples and SPD reads share the harness, so stuck/dropout
    // rates propagate before regulation starts.
    if let Some(plan) = server.fault_plan() {
        let (stuck, dropout) = plan.sensor_fault_rates();
        if stuck > 0.0 || dropout > 0.0 {
            testbed.inject_sensor_faults(Some(SensorFaultModel::new(stuck, dropout)));
        }
    }
    // Regulate all DIMMs to the set point and verify the 1 °C claim.
    testbed.set_all_targets(config.temperature);
    testbed.run(3600.0);
    let regulation_deviation = testbed.max_deviation_over(600.0);
    let settled = testbed.temperature(thermal_sim::testbed::ChannelId::new(0, 0));
    server.set_dram_temperature(settled);
    server
        .set_trefp(config.trefp)
        .expect("campaign refresh periods are positive");

    let campaign =
        dpbench::run_campaign(server.dram_mut(), config.random_rounds, config.wait_factor);
    let pattern_bers = dpbench::pattern_bers(server.dram_mut(), 0xBEEF)
        .into_iter()
        .map(|(p, ber)| (p.to_string(), ber))
        .collect();

    DramCampaignReport {
        settled_temperature: settled,
        regulation_deviation,
        unique_per_bank: campaign.unique_per_bank,
        ce_total: campaign.ce_total,
        ue_total: campaign.ue_total,
        pattern_bers,
    }
}

/// BER and correctness of the four Rodinia applications under the
/// campaign's conditions (Fig. 8a), as `(name, ber, correct)`.
pub fn rodinia_bers(
    server: &mut XGene2Server,
    kernels: &[Box<dyn DynKernel>],
    cfg: &KernelConfig,
) -> Vec<(String, f64, bool)> {
    kernels
        .iter()
        .map(|k| {
            let report = k.characterize_dyn(server.dram_mut(), cfg);
            (report.name.clone(), report.ber(), report.is_correct())
        })
        .collect()
}

/// DRAM-rail power savings from refresh relaxation for a set of workloads
/// (Fig. 8b), as `(name, fractional saving)`.
pub fn refresh_savings(
    kernels: &[Box<dyn DynKernel>],
    trefp: Milliseconds,
    reference_power: Watts,
) -> Vec<(String, f64)> {
    let dram = power_model::domain::DramDomain::xgene2(reference_power);
    kernels
        .iter()
        .map(|k| {
            let s = dram.refresh_relaxation_savings(trefp, k.bandwidth_utilization());
            (k.name().to_owned(), s)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::retention::{TABLE1_50C, TABLE1_60C};
    use workload_sim::rodinia;
    use xgene_sim::sigma::SigmaBin;

    #[test]
    fn campaign_at_60c_reproduces_table1_row() {
        let mut server = XGene2Server::new(SigmaBin::Ttt, 23);
        let mut testbed = ThermalTestbed::new(Celsius::new(25.0), 23);
        let report = run_dram_campaign(&mut server, &mut testbed, &DramCampaignConfig::dsn18_60c());
        assert!(
            report.regulation_deviation < 1.0,
            "{}",
            report.regulation_deviation
        );
        assert_eq!(report.ue_total, 0);
        let total: u64 = report.unique_per_bank.iter().sum();
        let expect: f64 = TABLE1_60C.iter().sum();
        assert!(
            (total as f64 - expect).abs() / expect < 0.10,
            "total {total} vs {expect}"
        );
    }

    #[test]
    fn campaign_regulates_through_flaky_sensors() {
        let mut server = XGene2Server::new(SigmaBin::Ttt, 26);
        server.install_fault_plan(
            xgene_sim::fault::FaultPlan::quiet(11).with_sensor_fault_rates(0.03, 0.03),
        );
        let mut testbed = ThermalTestbed::new(Celsius::new(25.0), 26);
        let report = run_dram_campaign(&mut server, &mut testbed, &DramCampaignConfig::dsn18_60c());
        // Degraded sensors cost some regulation quality but the PID loop
        // must still hold the DIMMs close enough for Table I numbers.
        assert!(
            report.regulation_deviation < 1.5,
            "{}",
            report.regulation_deviation
        );
        assert_eq!(report.ue_total, 0);
        let total: u64 = report.unique_per_bank.iter().sum();
        let expect: f64 = TABLE1_60C.iter().sum();
        assert!(
            (total as f64 - expect).abs() / expect < 0.25,
            "total {total} vs {expect}"
        );
    }

    #[test]
    fn bank_spread_compresses_from_50c_to_60c() {
        let mut s50 = XGene2Server::new(SigmaBin::Ttt, 24);
        let mut t50 = ThermalTestbed::new(Celsius::new(25.0), 24);
        let r50 = run_dram_campaign(&mut s50, &mut t50, &DramCampaignConfig::dsn18_50c());
        let mut s60 = XGene2Server::new(SigmaBin::Ttt, 24);
        let mut t60 = ThermalTestbed::new(Celsius::new(25.0), 24);
        let r60 = run_dram_campaign(&mut s60, &mut t60, &DramCampaignConfig::dsn18_60c());
        assert!(
            r50.bank_spread() > r60.bank_spread(),
            "{} vs {}",
            r50.bank_spread(),
            r60.bank_spread()
        );
        let total50: u64 = r50.unique_per_bank.iter().sum();
        let expect50: f64 = TABLE1_50C.iter().sum();
        assert!((total50 as f64 - expect50).abs() / expect50 < 0.25);
    }

    #[test]
    fn rodinia_ber_below_random_dpbench() {
        let mut server = XGene2Server::new(SigmaBin::Ttt, 25);
        server.set_dram_temperature(Celsius::new(60.0));
        server.set_trefp(Milliseconds::DSN18_RELAXED_TREFP).unwrap();
        let random_ber = dpbench::pattern_bers(server.dram_mut(), 5)
            .into_iter()
            .find(|(p, _)| matches!(p, dram_sim::patterns::DataPattern::Random { .. }))
            .unwrap()
            .1;
        let kernels = rodinia::suite();
        let cfg = KernelConfig {
            scale: 96,
            iterations: 6,
            seed: 9,
            runtime_ms: 5000.0,
        };
        let results = rodinia_bers(&mut server, &kernels, &cfg);
        for (name, ber, correct) in results {
            assert!(correct, "{name} corrupted");
            assert!(ber < random_ber, "{name}: {ber} vs random {random_ber}");
        }
    }

    #[test]
    fn fig8b_savings_ordering_and_extremes() {
        let kernels = rodinia::suite();
        let savings = refresh_savings(&kernels, Milliseconds::DSN18_RELAXED_TREFP, Watts::new(9.0));
        let get = |n: &str| savings.iter().find(|(k, _)| k == n).unwrap().1;
        assert!((get("nw") - 0.273).abs() < 0.02, "nw {}", get("nw"));
        assert!(
            (get("kmeans") - 0.094).abs() < 0.02,
            "kmeans {}",
            get("kmeans")
        );
        assert!(get("nw") > get("srad"));
        assert!(get("srad") > get("backprop"));
        assert!(get("backprop") > get("kmeans"));
    }
}
