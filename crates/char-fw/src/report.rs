//! The parsing phase: raw run records → fine-grained classification and
//! the final CSV the framework emits.

use crate::runner::{CampaignResult, RunRecord};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use xgene_sim::fault::RunOutcome;

/// Aggregate outcome counts of one group of runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutcomeCounts {
    /// Correct completions.
    pub correct: u64,
    /// Runs with corrected errors.
    pub ce: u64,
    /// Runs with uncorrectable errors.
    pub ue: u64,
    /// Silent data corruptions.
    pub sdc: u64,
    /// Crashes / hangs.
    pub crash: u64,
}

impl OutcomeCounts {
    /// Adds one outcome.
    pub fn record(&mut self, outcome: RunOutcome) {
        match outcome {
            RunOutcome::Correct => self.correct += 1,
            RunOutcome::CorrectableError => self.ce += 1,
            RunOutcome::UncorrectableError => self.ue += 1,
            RunOutcome::SilentDataCorruption => self.sdc += 1,
            RunOutcome::Crash => self.crash += 1,
        }
    }

    /// Total runs.
    pub fn total(&self) -> u64 {
        self.correct + self.ce + self.ue + self.sdc + self.crash
    }
}

/// Per-(benchmark, voltage) classification table.
pub fn classify(records: &[RunRecord]) -> BTreeMap<(String, u32), OutcomeCounts> {
    let mut table: BTreeMap<(String, u32), OutcomeCounts> = BTreeMap::new();
    for r in records {
        table
            .entry((r.benchmark.clone(), r.setup.voltage.as_u32()))
            .or_default()
            .record(r.outcome);
    }
    table
}

/// Renders the raw records as the framework's final CSV.
pub fn records_to_csv(records: &[RunRecord]) -> String {
    let mut csv = String::from(
        "benchmark,core,voltage_mv,frequency_mhz,repetition,outcome,watchdog_reset,reset_retries\n",
    );
    for r in records {
        let _ = writeln!(
            csv,
            "{},{},{},{},{},{},{},{}",
            r.benchmark,
            r.setup.core.index(),
            r.setup.voltage.as_u32(),
            r.setup.frequency.as_u32(),
            r.repetition,
            r.outcome,
            r.watchdog_reset,
            r.reset_retries
        );
    }
    csv
}

/// Renders the quarantined setups of a campaign as CSV (empty list →
/// header only).
pub fn quarantine_to_csv(result: &CampaignResult) -> String {
    let mut csv =
        String::from("benchmark,core,voltage_mv,frequency_mhz,consecutive_crashes,attribution\n");
    for q in &result.quarantined {
        let _ = writeln!(
            csv,
            "{},{},{},{},{},{}",
            q.benchmark,
            q.setup.core.index(),
            q.setup.voltage.as_u32(),
            q.setup.frequency.as_u32(),
            q.consecutive_crashes,
            q.attribution
        );
    }
    csv
}

/// Builds a metrics registry summarizing a finished campaign: run and
/// outcome counters, recovery work (retries, backoff, setup restores),
/// quarantine totals and a per-run reset-retry histogram.
///
/// This is the post-hoc counterpart to the live counters the runner
/// emits while a campaign executes: it derives the same families of
/// numbers from the final [`CampaignResult`], so reports can be
/// rendered (Prometheus text or JSON) without having had a telemetry
/// context installed during the run.
pub fn campaign_metrics(result: &CampaignResult) -> telemetry::Registry {
    let reg = telemetry::Registry::new();
    reg.counter_add("campaign_runs_total", result.records.len() as u64);
    let mut counts = OutcomeCounts::default();
    reg.register_histogram("run_reset_retries", &[0.0, 1.0, 2.0, 4.0, 8.0]);
    for r in &result.records {
        counts.record(r.outcome);
        reg.observe("run_reset_retries", f64::from(r.reset_retries));
    }
    reg.counter_add("campaign_correct_total", counts.correct);
    reg.counter_add("campaign_ce_total", counts.ce);
    reg.counter_add("campaign_ue_total", counts.ue);
    reg.counter_add("campaign_sdc_total", counts.sdc);
    reg.counter_add("campaign_crashes_total", counts.crash);
    reg.counter_add("campaign_watchdog_resets_total", result.watchdog_resets);
    reg.counter_add(
        "campaign_quarantines_total",
        result.quarantined.len() as u64,
    );
    reg.counter_add("campaign_vmin_points_total", result.vmins.len() as u64);
    reg.counter_add("recovery_retries_total", result.recovery.reset_retries);
    reg.counter_add(
        "recovery_backoff_ms_total",
        result.recovery.total_backoff_ms,
    );
    reg.counter_add(
        "recovery_failed_power_cycles_total",
        result.recovery.failed_power_cycles,
    );
    reg.counter_add("setup_restores_total", result.recovery.setup_restores);
    reg.counter_add(
        "precautionary_resets_total",
        result.recovery.precautionary_resets,
    );
    reg.counter_add("breaker_trips_total", result.safety.breaker_trips);
    reg.counter_add("sentinel_checks_total", result.safety.sentinel.checks);
    reg.counter_add(
        "sentinel_detections_total",
        result.safety.sentinel.detections(),
    );
    reg.counter_add(
        "sentinel_undetected_sdcs_total",
        result.safety.sentinel.undetected_sdcs,
    );
    reg
}

/// Renders the campaign's safety-net summary as a one-row CSV: breaker
/// trips and final state, the reason of the last trip, and the sentinel
/// tallies (checks, detections split by mechanism, timeouts, hardware
/// errors, and the audit-only miss count).
pub fn safety_to_csv(result: &CampaignResult) -> String {
    let s = &result.safety;
    let mut csv = String::from(
        "breaker_trips,last_trip_reason,breaker_state,sentinel_checks,\
         detected_by_checksum,detected_by_vote,sentinel_timeouts,sentinel_hw_errors,\
         true_sdcs,undetected_sdcs\n",
    );
    let _ = writeln!(
        csv,
        "{},{},{},{},{},{},{},{},{},{}",
        s.breaker_trips,
        s.last_trip_reason
            .map(|r| r.to_string())
            .unwrap_or_else(|| "-".into()),
        s.breaker_state,
        s.sentinel.checks,
        s.sentinel.detected_by_checksum,
        s.sentinel.detected_by_vote,
        s.sentinel.timeouts,
        s.sentinel.hw_errors,
        s.sentinel.true_sdcs,
        s.sentinel.undetected_sdcs,
    );
    csv
}

/// Renders the per-(benchmark, core) Vmin summary as CSV.
pub fn vmins_to_csv(result: &CampaignResult) -> String {
    let mut csv = String::from("benchmark,core,vmin_mv,first_failure_mv\n");
    for v in &result.vmins {
        let _ = writeln!(
            csv,
            "{},{},{},{}",
            v.benchmark,
            v.core.index(),
            v.vmin
                .map(|m| m.as_u32().to_string())
                .unwrap_or_else(|| "-".into()),
            v.first_failure
                .map(|m| m.as_u32().to_string())
                .unwrap_or_else(|| "-".into()),
        );
    }
    csv
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::Setup;
    use power_model::units::{Megahertz, Millivolts};
    use xgene_sim::topology::CoreId;

    fn record(bench: &str, mv: u32, outcome: RunOutcome) -> RunRecord {
        RunRecord {
            benchmark: bench.into(),
            setup: Setup {
                voltage: Millivolts::new(mv),
                frequency: Megahertz::XGENE2_NOMINAL,
                core: CoreId::new(0),
            },
            repetition: 0,
            outcome,
            watchdog_reset: outcome.needs_reset(),
            reset_retries: 0,
        }
    }

    #[test]
    fn classification_groups_by_benchmark_and_voltage() {
        let records = vec![
            record("mcf", 900, RunOutcome::Correct),
            record("mcf", 900, RunOutcome::CorrectableError),
            record("mcf", 895, RunOutcome::Crash),
            record("milc", 900, RunOutcome::Correct),
        ];
        let table = classify(&records);
        let mcf_900 = table.get(&("mcf".into(), 900)).unwrap();
        assert_eq!(mcf_900.correct, 1);
        assert_eq!(mcf_900.ce, 1);
        assert_eq!(mcf_900.total(), 2);
        assert_eq!(table.get(&("mcf".into(), 895)).unwrap().crash, 1);
        assert_eq!(table.len(), 3);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let records = vec![record("mcf", 900, RunOutcome::Correct)];
        let csv = records_to_csv(&records);
        let mut lines = csv.lines();
        assert!(lines
            .next()
            .unwrap()
            .starts_with("benchmark,core,voltage_mv"));
        assert_eq!(lines.next().unwrap(), "mcf,0,900,2400,0,correct,false,0");
    }

    #[test]
    fn quarantine_csv_lists_pulled_setups() {
        let result = CampaignResult {
            quarantined: vec![crate::resilience::QuarantineRecord {
                benchmark: "milc".into(),
                setup: Setup {
                    voltage: Millivolts::new(830),
                    frequency: Megahertz::XGENE2_NOMINAL,
                    core: CoreId::new(5),
                },
                consecutive_crashes: 3,
                attribution: crate::safety::TenantAttribution::default(),
            }],
            ..CampaignResult::default()
        };
        let csv = quarantine_to_csv(&result);
        let mut lines = csv.lines();
        assert!(lines.next().unwrap().starts_with("benchmark,core"));
        assert_eq!(lines.next().unwrap(), "milc,5,830,2400,3,board");
        assert!(
            quarantine_to_csv(&CampaignResult::default())
                .lines()
                .count()
                == 1
        );
    }

    #[test]
    fn campaign_metrics_summarize_the_result() {
        let mut crash = record("mcf", 880, RunOutcome::Crash);
        crash.reset_retries = 2;
        let result = CampaignResult {
            records: vec![
                record("mcf", 900, RunOutcome::Correct),
                record("mcf", 890, RunOutcome::CorrectableError),
                record("mcf", 885, RunOutcome::SilentDataCorruption),
                crash,
            ],
            watchdog_resets: 3,
            recovery: crate::resilience::RecoveryStats {
                failed_power_cycles: 1,
                reset_retries: 2,
                total_backoff_ms: 300,
                setup_restores: 1,
                quarantined_points: 0,
                precautionary_resets: 1,
            },
            ..CampaignResult::default()
        };
        let reg = campaign_metrics(&result);
        assert_eq!(reg.counter("campaign_runs_total"), 4);
        assert_eq!(reg.counter("campaign_correct_total"), 1);
        assert_eq!(reg.counter("campaign_ce_total"), 1);
        assert_eq!(reg.counter("campaign_sdc_total"), 1);
        assert_eq!(reg.counter("campaign_crashes_total"), 1);
        assert_eq!(reg.counter("campaign_ue_total"), 0);
        assert_eq!(reg.counter("campaign_watchdog_resets_total"), 3);
        assert_eq!(reg.counter("recovery_retries_total"), 2);
        assert_eq!(reg.counter("recovery_backoff_ms_total"), 300);
        let retries = reg.histogram("run_reset_retries").unwrap();
        assert_eq!(retries.count, 4);
        assert_eq!(retries.counts[0], 3); // three runs with zero retries
        let text = reg.prometheus();
        assert!(text.contains("# TYPE campaign_runs_total counter"));
        assert!(text.contains("campaign_runs_total 4"));
        assert!(text.contains("run_reset_retries_bucket{le=\"2\"} 4"));
    }

    #[test]
    fn safety_csv_renders_trips_and_sentinel_tallies() {
        use crate::safety::{SafetySummary, SentinelStats, TripReason};
        let result = CampaignResult {
            safety: SafetySummary {
                breaker_trips: 2,
                last_trip_reason: Some(TripReason::SdcVote),
                breaker_state: crate::safety::BreakerState::Cooldown,
                sentinel: SentinelStats {
                    checks: 40,
                    detected_by_checksum: 1,
                    detected_by_vote: 2,
                    timeouts: 1,
                    hw_errors: 0,
                    true_sdcs: 3,
                    undetected_sdcs: 0,
                },
            },
            ..CampaignResult::default()
        };
        let csv = safety_to_csv(&result);
        let mut lines = csv.lines();
        assert!(lines.next().unwrap().starts_with("breaker_trips,"));
        assert_eq!(lines.next().unwrap(), "2,sdc-vote,cooldown,40,1,2,1,0,3,0");
        // No trips: the reason renders as a dash.
        let quiet = safety_to_csv(&CampaignResult::default());
        assert!(quiet.lines().nth(1).unwrap().starts_with("0,-,healthy,0,"));
        let reg = campaign_metrics(&result);
        assert_eq!(reg.counter("breaker_trips_total"), 2);
        assert_eq!(reg.counter("sentinel_checks_total"), 40);
        assert_eq!(reg.counter("sentinel_detections_total"), 3);
        assert_eq!(reg.counter("sentinel_undetected_sdcs_total"), 0);
    }

    #[test]
    fn vmin_csv_handles_missing_values() {
        let result = CampaignResult {
            vmins: vec![crate::runner::VminResult {
                benchmark: "mcf".into(),
                core: CoreId::new(3),
                vmin: Some(Millivolts::new(860)),
                first_failure: None,
            }],
            ..CampaignResult::default()
        };
        let csv = vmins_to_csv(&result);
        assert!(csv.contains("mcf,3,860,-"));
    }
}
