//! Criterion timing of the Fig. 8 workload-over-DRAM pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use dram_sim::array::DramArray;
use dram_sim::retention::{PopulationSpec, RetentionModel, WeakCellPopulation};
use power_model::units::{Celsius, Milliseconds};
use workload_sim::rodinia::{suite, KernelConfig};

fn relaxed_dram(seed: u64) -> DramArray {
    let pop = WeakCellPopulation::generate(
        &RetentionModel::xgene2_micron(),
        PopulationSpec::dsn18(),
        seed,
    );
    DramArray::new(pop, Milliseconds::DSN18_RELAXED_TREFP, Celsius::new(60.0))
}

fn bench_fig8(c: &mut Criterion) {
    let cfg = KernelConfig {
        scale: 32,
        iterations: 3,
        seed: 5,
        runtime_ms: 3000.0,
    };
    for kernel in suite() {
        c.bench_function(&format!("fig8/{}", kernel.name()), |b| {
            b.iter(|| {
                let mut dram = relaxed_dram(5);
                kernel.characterize_dyn(&mut dram, &cfg)
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(4)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_fig8
}
criterion_main!(benches);
