//! Criterion timing of the Table I DRAM retention pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use dram_sim::array::DramArray;
use dram_sim::patterns::DataPattern;
use dram_sim::retention::{PopulationSpec, RetentionModel, WeakCellPopulation};
use power_model::units::{Celsius, Milliseconds};

fn bench_table1(c: &mut Criterion) {
    let model = RetentionModel::xgene2_micron();
    c.bench_function("table1/population_generation", |b| {
        b.iter(|| WeakCellPopulation::generate(&model, PopulationSpec::dsn18(), 7))
    });
    let pop = WeakCellPopulation::generate(&model, PopulationSpec::dsn18(), 7);
    c.bench_function("table1/dpbench_round", |b| {
        b.iter(|| {
            let mut dram = DramArray::new(
                pop.clone(),
                Milliseconds::DSN18_RELAXED_TREFP,
                Celsius::new(60.0),
            );
            dram.fill_pattern(DataPattern::Random { seed: 1 });
            dram.advance(Milliseconds::DSN18_RELAXED_TREFP.as_f64() * 1.5);
            dram.scrub()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(4)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_table1
}
criterion_main!(benches);
