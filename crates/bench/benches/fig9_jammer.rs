//! Criterion timing of the Fig. 9 jammer detector and server power model.

use criterion::{criterion_group, criterion_main, Criterion};
use power_model::server::{OperatingPoint, ServerLoad, ServerPowerModel};
use workload_sim::jammer::{run_instance, JammerConfig};

fn bench_fig9(c: &mut Criterion) {
    let mut cfg = JammerConfig::dsn18();
    cfg.blocks = 80;
    c.bench_function("fig9/jammer_instance_80blocks", |b| {
        b.iter(|| run_instance(&cfg, 0))
    });
    let server = ServerPowerModel::xgene2();
    let load = ServerLoad::jammer_detector();
    c.bench_function("fig9/server_power_eval", |b| {
        b.iter(|| server.power(&OperatingPoint::dsn18_safe_point(), &load))
    });
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
