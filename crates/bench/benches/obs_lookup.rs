//! Criterion guard for the indexed telemetry lookups the observatory
//! leans on: `CaptureSink::named` (per-name index, O(matches)) and the
//! binary-searched `MetricsSnapshot` series lookups. Both must stay
//! cheap however large the capture or registry grows — observatory
//! runs funnel hundreds of thousands of events through one sink and
//! query a handful of names afterwards.

use criterion::{criterion_group, criterion_main, Criterion};
use telemetry::event::EventKind;
use telemetry::{series_name, CaptureSink, Event, Level, Registry, Sink};

const EVENTS: usize = 100_000;
const NAMES: usize = 1_000;
const SERIES: usize = 1_000;

fn loaded_sink() -> CaptureSink {
    let sink = CaptureSink::new();
    for i in 0..EVENTS {
        sink.record(&Event {
            seq: i as u64,
            kind: EventKind::Event,
            level: Level::Info,
            target: "bench".to_owned(),
            name: format!("event_{}", i % NAMES),
            span_path: Vec::new(),
            fields: vec![("i".to_owned(), (i as u64).into())],
        });
    }
    sink
}

fn loaded_registry() -> Registry {
    let reg = Registry::new();
    for i in 0..SERIES {
        let board = format!("{i}");
        reg.counter_add_labeled("fleet_events_total", &[("board", &board)], i as u64);
        reg.gauge_set_labeled("fleet_board_margin_mv", &[("board", &board)], i as f64);
    }
    reg
}

fn bench_lookups(c: &mut Criterion) {
    let sink = loaded_sink();
    c.bench_function("capture_sink_named_100k_events", |b| {
        b.iter(|| {
            let hits = sink.named("event_500");
            assert_eq!(hits.len(), EVENTS / NAMES);
            hits
        })
    });
    c.bench_function("capture_sink_named_miss_100k_events", |b| {
        b.iter(|| sink.named("no_such_event"))
    });

    let snapshot = loaded_registry().snapshot();
    let gauge_series = series_name("fleet_board_margin_mv", &[("board", "500")]);
    let counter_series = series_name("fleet_events_total", &[("board", "500")]);
    c.bench_function("snapshot_gauge_lookup_1k_series", |b| {
        b.iter(|| snapshot.gauge(&gauge_series).expect("series present"))
    });
    c.bench_function("snapshot_counter_lookup_1k_series", |b| {
        b.iter(|| snapshot.counter(&counter_series).expect("series present"))
    });
}

criterion_group!(benches, bench_lookups);
criterion_main!(benches);
