//! Criterion timing of the Fig. 5 ladder derivation and trade-off model.

use criterion::{criterion_group, criterion_main, Criterion};
use guardband_core::energy::{derive_ladder, ladder_tradeoff};
use power_model::tradeoff::TradeoffCurve;
use workload_sim::spec::fig5_mix;
use xgene_sim::sigma::{ChipProfile, SigmaBin};

fn bench_fig5(c: &mut Criterion) {
    let chip = ChipProfile::corner(SigmaBin::Ttt);
    let mix: Vec<_> = fig5_mix().iter().map(|b| b.profile()).collect();
    c.bench_function("fig5/derive_ladder", |b| {
        b.iter(|| derive_ladder(&chip, &mix))
    });
    let ladder = derive_ladder(&chip, &mix);
    c.bench_function("fig5/ladder_tradeoff", |b| {
        b.iter(|| ladder_tradeoff(&ladder))
    });
    c.bench_function("fig5/published_curve", |b| {
        b.iter(|| TradeoffCurve::xgene2_fig5().points())
    });
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
