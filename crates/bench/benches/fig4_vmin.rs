//! Criterion timing of the Fig. 4 undervolting campaign components.

use criterion::{criterion_group, criterion_main, Criterion};
use guardband_core::vmin::characterize_chip;
use power_model::units::Megahertz;
use workload_sim::spec::SPEC_SUITE;
use xgene_sim::sigma::{ChipProfile, SigmaBin};

fn bench_fig4(c: &mut Criterion) {
    let suite: Vec<_> = SPEC_SUITE.iter().take(3).map(|b| b.profile()).collect();
    c.bench_function("fig4/vmin_campaign_3bench_ttt", |b| {
        b.iter(|| characterize_chip(SigmaBin::Ttt, &suite, 7))
    });
    let chip = ChipProfile::corner(SigmaBin::Ttt);
    let core = chip.most_robust_core();
    let profile = SPEC_SUITE[0].profile();
    c.bench_function("fig4/single_vmin_eval", |b| {
        b.iter(|| chip.vmin(core, &profile, Megahertz::XGENE2_NOMINAL))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(4)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_fig4
}
criterion_main!(benches);
