//! Criterion timing of the GA virus evolution (Figs. 6/7).

use criterion::{criterion_group, criterion_main, Criterion};
use stress_gen::ga::{evolve, fitness, GaConfig};
use stress_gen::isa::{InstrClass, VirusGenome};
use xgene_sim::em::EmProbe;
use xgene_sim::pdn::PdnModel;

fn bench_virus(c: &mut Criterion) {
    let pdn = PdnModel::xgene2();
    c.bench_function("fig6/ga_evolution_small", |b| {
        b.iter(|| {
            let mut probe = EmProbe::new(pdn, 1);
            let config = GaConfig {
                population: 16,
                generations: 12,
                ..GaConfig::dsn18()
            };
            evolve(&config, &mut probe)
        })
    });
    let genome = VirusGenome::new([InstrClass::SimdFma, InstrClass::Nop].repeat(24));
    c.bench_function("fig6/fitness_eval", |b| {
        let mut probe = EmProbe::new(pdn, 1);
        b.iter(|| fitness(&genome, &mut probe))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(4)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_virus
}
criterion_main!(benches);
