//! Serving benchmark: the control plane under seeded open-loop load.
//!
//! Four claims are checked at once and serialized to
//! `BENCH_serving.json` via `experiments serving`:
//!
//! 1. **Throughput** — dispatching the generated diurnal trace through
//!    the *same* [`control_plane::Router`] the TCP path uses sustains at
//!    least 100 k requests/second in-process (`meets_qps_floor`).
//! 2. **Tail latency** — safe-point lookup p50/p95/p99 come from the
//!    server's own exponential-bucket latency histogram; CI gates p99
//!    under a generous 1 ms ceiling (`p99_under_ceiling`).
//! 3. **Zero stale reads** — a reader hammering lookups across epoch
//!    rollovers never observes a snapshot older than the last rollover
//!    it has been told about (`stale_reads == 0`): the Arc-swap
//!    publication is visible to every lookup that starts after
//!    `roll_epoch` returns.
//! 4. **Reproducibility** — the same seed generates the byte-identical
//!    trace (equal fingerprints) and the byte-identical deterministic
//!    response summary across two independent runs (`reproducible`).
//!
//! Latency and wall-clock numbers vary with the host and are NOT part
//! of the reproducibility fingerprint — only deterministic response
//! data (statuses, routes, bodies of lookups) is hashed.

use control_plane::http::{Method, Request};
use control_plane::loadgen::LoadProfile;
use control_plane::metrics::Route;
use control_plane::{
    CampaignRunner, CampaignSpec, CampaignState, ControlState, Router, ServerMetrics,
};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Boards the warm-up campaign characterizes (also the served set).
pub const BOARDS: u32 = 24;

/// The in-process sustained-QPS floor the dataset gates on.
pub const QPS_FLOOR: f64 = 100_000.0;

/// The lookup p99 ceiling, microseconds.
pub const P99_CEILING_US: f64 = 1_000.0;

/// The benchmark dataset — the schema of `BENCH_serving.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingData {
    /// Master seed of campaign and load trace.
    pub seed: u64,
    /// Boards characterized and served.
    pub boards: u32,
    /// Requests dispatched from the generated trace.
    pub requests: u64,
    /// Safe-point lookups among them.
    pub lookups: u64,
    /// Lookups answering 404 (boards outside the characterized set —
    /// the trace deliberately asks for a wider id space).
    pub lookup_misses: u64,
    /// Responses with a 5xx status (must be zero).
    pub server_errors: u64,
    /// Sustained dispatch throughput, requests/second.
    pub sustained_qps: f64,
    /// Lookup latency quantiles from the serving histogram, µs.
    pub lookup_p50_us: f64,
    /// 95th percentile, µs.
    pub lookup_p95_us: f64,
    /// 99th percentile, µs.
    pub lookup_p99_us: f64,
    /// Epoch rollovers performed during the stale-read audit.
    pub rollovers: u64,
    /// Lookup probes raced against those rollovers.
    pub stale_read_probes: u64,
    /// Probes that observed a pre-rollover snapshot after the rollover
    /// had returned (must be zero).
    pub stale_reads: u64,
    /// FNV-1a fingerprint of the generated trace (hex).
    pub trace_fingerprint: String,
    /// FNV-1a fingerprint of the deterministic response summary (hex).
    pub summary_fingerprint: String,
    /// Same seed ⇒ identical trace and summary fingerprints.
    pub reproducible: bool,
    /// `sustained_qps >= QPS_FLOOR`.
    pub meets_qps_floor: bool,
    /// `lookup_p99_us <= P99_CEILING_US`.
    pub p99_under_ceiling: bool,
    /// Host wall-clock of the whole benchmark, seconds (informational).
    pub host_wall_seconds: f64,
}

/// The deterministic outcome of one dispatch run: everything a second
/// same-seed run must reproduce byte-for-byte.
struct DispatchOutcome {
    requests: u64,
    lookups: u64,
    lookup_misses: u64,
    server_errors: u64,
    sustained_qps: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    trace_fingerprint: u64,
    summary_fingerprint: u64,
}

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

/// Boots a control plane, runs one campaign to completion, and returns
/// the router serving its results.
fn warmed_router(seed: u64) -> Router {
    let state = Arc::new(ControlState::new());
    let runner = CampaignRunner::in_memory(state.clone());
    let id = runner
        .submit(CampaignSpec::new(BOARDS, seed))
        .expect("fresh runner accepts");
    let deadline = Instant::now() + std::time::Duration::from_secs(120);
    while runner.record(id).expect("submitted").state != CampaignState::Completed {
        assert!(Instant::now() < deadline, "warm-up campaign stuck");
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    Router::new(state, runner, Arc::new(ServerMetrics::new()))
}

/// Dispatches the seeded trace through the router and distills the
/// deterministic summary.
fn dispatch(seed: u64) -> DispatchOutcome {
    let router = warmed_router(seed);
    let profile = LoadProfile {
        seed,
        duration_s: 600.0,
        base_qps: 500.0,
        clients: 16,
        board_space: BOARDS + 8,
        ..LoadProfile::default()
    };
    let trace = profile.generate();

    let mut summary: u64 = 0xcbf2_9ce4_8422_2325;
    let mut lookups = 0u64;
    let mut lookup_misses = 0u64;
    let mut server_errors = 0u64;
    let started = Instant::now();
    for event in &trace.events {
        let request = Request {
            method: match event.method.as_str() {
                "POST" => Method::Post,
                _ => Method::Get,
            },
            target: event.target.clone(),
            headers: Vec::new(),
            body: Vec::new(),
        };
        let route = Router::route_of(&request);
        let req_started = Instant::now();
        let response = router.handle(&request);
        router
            .metrics()
            .observe(route, response.status, req_started.elapsed().as_secs_f64());
        if route == Route::SafePoint {
            lookups += 1;
            if response.status == 404 {
                lookup_misses += 1;
            }
            // Lookup bodies are deterministic: same store, same epoch,
            // same snapshot version (exactly one campaign published).
            fnv1a(&mut summary, &response.body);
        }
        if response.status >= 500 {
            server_errors += 1;
        }
        fnv1a(&mut summary, &response.status.to_le_bytes());
        fnv1a(&mut summary, event.target.as_bytes());
    }
    let elapsed = started.elapsed().as_secs_f64();

    let latency = router.metrics().latency_snapshot(Route::SafePoint);
    let quantile_us = |q: f64| latency.quantile(q).unwrap_or(0.0) * 1e6;
    let outcome = DispatchOutcome {
        requests: trace.events.len() as u64,
        lookups,
        lookup_misses,
        server_errors,
        sustained_qps: trace.events.len() as f64 / elapsed,
        p50_us: quantile_us(0.50),
        p95_us: quantile_us(0.95),
        p99_us: quantile_us(0.99),
        trace_fingerprint: trace.fingerprint(),
        summary_fingerprint: summary,
    };
    router.runner().drain();
    outcome
}

/// Races a lookup reader against epoch rollovers: after `roll_epoch`
/// returns and publishes its version, every subsequent lookup must see
/// that version or newer. Returns `(rollovers, probes, stale_reads)`.
fn stale_read_audit(seed: u64) -> (u64, u64, u64) {
    let router = warmed_router(seed);
    let state = router.state().clone();
    let published = Arc::new(AtomicU64::new(state.snapshot().version));
    let stop = Arc::new(AtomicBool::new(false));
    let probes = Arc::new(AtomicU64::new(0));
    let stale = Arc::new(AtomicU64::new(0));

    let readers: Vec<_> = (0..2)
        .map(|_| {
            let state = state.clone();
            let published = published.clone();
            let stop = stop.clone();
            let probes = probes.clone();
            let stale = stale.clone();
            std::thread::spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    // Load the floor FIRST: any snapshot read after this
                    // point must be at least this fresh.
                    let floor = published.load(Ordering::Acquire);
                    let version = state.snapshot().version;
                    probes.fetch_add(1, Ordering::Relaxed);
                    if version < floor {
                        stale.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
        })
        .collect();

    // Republish the served store under successive epochs. The store
    // contents are irrelevant to the audit — only version visibility.
    let base = state.snapshot();
    let record_store = {
        let mut store = guardband_core::safepoint::SafePointStore::new();
        for board in base.index.boards() {
            store.insert(base.index.entry(board).expect("indexed").point.clone());
        }
        store
    };
    let rollovers = 64u64;
    for i in 0..rollovers {
        let version = state.roll_epoch(1 + i as u32, &record_store);
        // The contract under test: publish the floor only after
        // roll_epoch returned. A reader that then sees an older
        // version caught a stale read.
        published.store(version, Ordering::Release);
        std::thread::sleep(std::time::Duration::from_micros(200));
    }
    stop.store(true, Ordering::Release);
    for reader in readers {
        reader.join().expect("reader thread");
    }
    router.runner().drain();
    (
        rollovers,
        probes.load(Ordering::Relaxed),
        stale.load(Ordering::Relaxed),
    )
}

/// Runs the full serving benchmark.
pub fn run(seed: u64) -> ServingData {
    let started = Instant::now();
    let first = dispatch(seed);
    let second = dispatch(seed);
    let reproducible = first.trace_fingerprint == second.trace_fingerprint
        && first.summary_fingerprint == second.summary_fingerprint
        && first.requests == second.requests
        && first.lookup_misses == second.lookup_misses;
    let (rollovers, stale_read_probes, stale_reads) = stale_read_audit(seed);
    // Report the faster of the two runs: the second typically has warm
    // caches; both must clear the floor on a healthy host, but gating on
    // max() keeps CI robust to one-off scheduler noise.
    let sustained_qps = first.sustained_qps.max(second.sustained_qps);
    ServingData {
        seed,
        boards: BOARDS,
        requests: first.requests,
        lookups: first.lookups,
        lookup_misses: first.lookup_misses,
        server_errors: first.server_errors + second.server_errors,
        sustained_qps,
        lookup_p50_us: first.p50_us,
        lookup_p95_us: first.p95_us,
        lookup_p99_us: first.p99_us,
        rollovers,
        stale_read_probes,
        stale_reads,
        trace_fingerprint: format!("{:016x}", first.trace_fingerprint),
        summary_fingerprint: format!("{:016x}", first.summary_fingerprint),
        reproducible,
        meets_qps_floor: sustained_qps >= QPS_FLOOR,
        p99_under_ceiling: first.p99_us <= P99_CEILING_US,
        host_wall_seconds: started.elapsed().as_secs_f64(),
    }
}

/// Renders the dataset as a report table.
pub fn render(data: &ServingData) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Control-plane serving benchmark (seed {})", data.seed);
    let _ = writeln!(
        out,
        "  {} requests over {} boards — sustained {:.0} req/s (floor {:.0}: {})",
        data.requests,
        data.boards,
        data.sustained_qps,
        QPS_FLOOR,
        verdict(data.meets_qps_floor),
    );
    let _ = writeln!(
        out,
        "  lookup latency p50 {:.1} µs · p95 {:.1} µs · p99 {:.1} µs (ceiling {:.0} µs: {})",
        data.lookup_p50_us,
        data.lookup_p95_us,
        data.lookup_p99_us,
        P99_CEILING_US,
        verdict(data.p99_under_ceiling),
    );
    let _ = writeln!(
        out,
        "  {} lookups, {} misses, {} server errors",
        data.lookups, data.lookup_misses, data.server_errors,
    );
    let _ = writeln!(
        out,
        "  stale-read audit: {} probes across {} rollovers — {} stale ({})",
        data.stale_read_probes,
        data.rollovers,
        data.stale_reads,
        verdict(data.stale_reads == 0),
    );
    let _ = writeln!(
        out,
        "  trace {} · summary {} — reproducible: {}",
        data.trace_fingerprint,
        data.summary_fingerprint,
        verdict(data.reproducible),
    );
    out
}

fn verdict(ok: bool) -> &'static str {
    if ok {
        "PASS"
    } else {
        "FAIL"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_serving_benchmark_meets_its_gates() {
        let data = run(2018);
        assert!(data.reproducible, "seeded runs diverged: {data:?}");
        assert_eq!(data.stale_reads, 0, "stale reads observed: {data:?}");
        assert_eq!(data.server_errors, 0);
        assert!(
            data.requests > 100_000,
            "trace too small: {}",
            data.requests
        );
        assert!(data.lookups > 0 && data.lookup_p99_us > 0.0);
        // Throughput is host-dependent; the committed JSON is gated in
        // CI, here we only require the measurement to be sane.
        assert!(data.sustained_qps > 0.0);
        let text = render(&data);
        assert!(text.contains("reproducible: PASS"));
    }
}
