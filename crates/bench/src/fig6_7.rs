//! Fig. 6: EM-virus Vmin vs the NAS suite; Fig. 7: inter-chip process
//! variation exposed by the virus.

use guardband_core::vmin::{characterize_chip, virus_margins};
use power_model::units::Millivolts;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use stress_gen::ga::{evolve, GaConfig};
use workload_sim::nas::NAS_SUITE;
use xgene_sim::em::EmProbe;
use xgene_sim::pdn::PdnModel;
use xgene_sim::sigma::SigmaBin;
use xgene_sim::workload::WorkloadProfile;

/// The combined Fig. 6/7 dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig67 {
    /// The GA-evolved virus profile.
    pub virus: WorkloadProfile,
    /// Fitness trajectory of the evolution (best EM amplitude per
    /// generation).
    pub fitness_trajectory: Vec<f64>,
    /// NAS Vmins on the TTT chip `(name, vmin)`.
    pub nas_vmins: Vec<(String, Millivolts)>,
    /// Virus Vmin per corner `(corner, vmin, margin to nominal in mV)`.
    pub virus_margins: Vec<(SigmaBin, Millivolts, i64)>,
}

/// Published Fig. 7 margins in mV.
pub const PAPER_MARGINS: [(SigmaBin, i64); 3] = [
    (SigmaBin::Ttt, 60),
    (SigmaBin::Tff, 20),
    (SigmaBin::Tss, 10),
];

/// Evolves the virus and measures Figs. 6 and 7.
pub fn run(seed: u64) -> Fig67 {
    let pdn = PdnModel::xgene2();
    let mut probe = EmProbe::new(pdn, seed);
    let mut config = GaConfig::dsn18();
    config.seed = seed;
    let evolution = evolve(&config, &mut probe);
    let virus = evolution.champion_profile(&pdn);

    let nas_profiles: Vec<_> = NAS_SUITE.iter().map(|k| k.profile()).collect();
    let nas_series = characterize_chip(SigmaBin::Ttt, &nas_profiles, seed);
    Fig67 {
        virus: virus.clone(),
        fitness_trajectory: evolution.best_per_generation,
        nas_vmins: nas_series.vmins,
        virus_margins: virus_margins(&virus, seed),
    }
}

/// Renders both figures.
pub fn render(fig: &Fig67) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Fig. 6 — Vmin of EM virus vs NAS benchmarks (TTT)");
    let virus_ttt = fig
        .virus_margins
        .iter()
        .find(|(b, _, _)| *b == SigmaBin::Ttt)
        .map(|(_, v, _)| *v)
        .unwrap_or(Millivolts::new(0));
    let _ = writeln!(out, "{:<12}{:>8}", "em-virus", virus_ttt.as_u32());
    for (name, v) in &fig.nas_vmins {
        let _ = writeln!(out, "{name:<12}{:>8}", v.as_u32());
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "Fig. 7 — inter-chip variation under the EM virus");
    for (bin, vmin, margin) in &fig.virus_margins {
        let paper = PAPER_MARGINS.iter().find(|(b, _)| b == bin).unwrap().1;
        let _ = writeln!(
            out,
            "{bin}: virus Vmin {} mV, margin {margin} mV (paper ~{paper} mV)",
            vmin.as_u32()
        );
    }
    let _ = writeln!(
        out,
        "GA: EM amplitude improved {:.2} -> {:.2} over {} generations",
        fig.fitness_trajectory.first().copied().unwrap_or(0.0),
        fig.fitness_trajectory.last().copied().unwrap_or(0.0),
        fig.fitness_trajectory.len()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virus_dominates_every_nas_kernel() {
        let fig = run(7);
        let virus_ttt = fig
            .virus_margins
            .iter()
            .find(|(b, _, _)| *b == SigmaBin::Ttt)
            .unwrap()
            .1;
        for (name, v) in &fig.nas_vmins {
            assert!(virus_ttt > *v, "{name}: {v} vs virus {virus_ttt}");
        }
    }

    #[test]
    fn margins_match_fig7() {
        let fig = run(7);
        for (bin, paper) in PAPER_MARGINS {
            let got = fig
                .virus_margins
                .iter()
                .find(|(b, _, _)| *b == bin)
                .unwrap()
                .2;
            assert!((got - paper).abs() <= 12, "{bin}: {got} vs {paper}");
        }
    }

    #[test]
    fn tss_has_essentially_no_margin() {
        let fig = run(8);
        let tss = fig
            .virus_margins
            .iter()
            .find(|(b, _, _)| *b == SigmaBin::Tss)
            .unwrap();
        assert!(tss.2 <= 15, "TSS margin {}", tss.2);
    }
}
