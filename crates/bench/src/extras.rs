//! Experiments beyond the numbered figures: the §IV.C stencil access-
//! pattern scheduling study and the §IV.D Vmin predictor.

use guardband_core::predictor::VminPredictor;
use power_model::units::{Celsius, Megahertz, Milliseconds, Millivolts};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use workload_sim::nas::NAS_SUITE;
use workload_sim::spec::SPEC_SUITE;
use workload_sim::stencil::{JacobiStencil, StencilReport, SweepSchedule};
use xgene_sim::server::XGene2Server;
use xgene_sim::sigma::{ChipProfile, SigmaBin};

/// The stencil-scheduling dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StencilStudy {
    /// The unscheduled (bursty) run.
    pub bursty: StencilReport,
    /// The paced (access-scheduled) run.
    pub paced: StencilReport,
    /// The refresh period both ran under, ms.
    pub trefp_ms: f64,
}

/// Runs the stencil scheduling comparison at 60 °C / 2.283 s.
pub fn run_stencil(seed: u64) -> StencilStudy {
    let stencil = JacobiStencil::new(320, 6, 9000.0);
    let make_server = || {
        let mut s = XGene2Server::new(SigmaBin::Ttt, seed);
        s.set_dram_temperature(Celsius::new(60.0));
        s.set_trefp(Milliseconds::DSN18_RELAXED_TREFP)
            .expect("valid TREFP");
        s
    };
    let mut s1 = make_server();
    let bursty = stencil.run(s1.dram_mut(), SweepSchedule::Bursty { duty: 0.2 });
    let mut s2 = make_server();
    let paced = stencil.run(s2.dram_mut(), SweepSchedule::Paced);
    StencilStudy {
        bursty,
        paced,
        trefp_ms: Milliseconds::DSN18_RELAXED_TREFP.as_f64(),
    }
}

/// Renders the stencil study.
pub fn render_stencil(study: &StencilStudy) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "§IV.C — stencil access-pattern scheduling (TREFP {} ms)",
        study.trefp_ms
    );
    for (label, r) in [("bursty", &study.bursty), ("paced", &study.paced)] {
        let _ = writeln!(
            out,
            "{label:<8} max row interval {:>8.0} ms, unique failing cells {:>4}, CEs {:>4}",
            r.max_row_interval_ms, r.unique_error_locations, r.corrected_errors
        );
    }
    let _ = writeln!(
        out,
        "paced intervals {} the refresh period — accesses inherently refresh the grid",
        if study.paced.max_row_interval_ms < study.trefp_ms {
            "fit within"
        } else {
            "EXCEED"
        }
    );
    out
}

/// The predictor study: train on SPEC, evaluate on NAS.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictorStudy {
    /// RMSE on the SPEC training set, mV.
    pub train_rmse_mv: f64,
    /// `(kernel, predicted, actual)` on the NAS hold-out set.
    pub nas_eval: Vec<(String, Millivolts, Millivolts)>,
    /// Worst absolute NAS prediction error, mV.
    pub worst_nas_error_mv: i64,
}

/// Trains and evaluates the Vmin predictor on the TTT chip model.
pub fn run_predictor() -> PredictorStudy {
    let chip = ChipProfile::corner(SigmaBin::Ttt);
    let core = chip.most_robust_core();
    let data: Vec<_> = SPEC_SUITE
        .iter()
        .map(|b| {
            let p = b.profile();
            let v = chip.vmin(core, &p, Megahertz::XGENE2_NOMINAL);
            (p, v)
        })
        .collect();
    let model = VminPredictor::train(&data).expect("SPEC training set is well-posed");
    let train_rmse_mv = model.training_rmse_mv(&data);
    let nas_eval: Vec<_> = NAS_SUITE
        .iter()
        .map(|k| {
            let p = k.profile();
            let actual = chip.vmin(core, &p, Megahertz::XGENE2_NOMINAL);
            (k.name.to_owned(), model.predict(&p), actual)
        })
        .collect();
    let worst_nas_error_mv = nas_eval
        .iter()
        .map(|(_, p, a)| (i64::from(p.as_u32()) - i64::from(a.as_u32())).abs())
        .max()
        .unwrap_or(0);
    PredictorStudy {
        train_rmse_mv,
        nas_eval,
        worst_nas_error_mv,
    }
}

/// Renders the predictor study.
pub fn render_predictor(study: &PredictorStudy) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "§IV.D — performance-counter Vmin predictor (train SPEC, test NAS)"
    );
    let _ = writeln!(out, "training RMSE: {:.2} mV", study.train_rmse_mv);
    for (name, predicted, actual) in &study.nas_eval {
        let _ = writeln!(
            out,
            "{name:<6} predicted {:>4} mV, measured {:>4} mV",
            predicted.as_u32(),
            actual.as_u32()
        );
    }
    let _ = writeln!(out, "worst hold-out error: {} mV", study.worst_nas_error_mv);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stencil_scheduling_bounds_intervals() {
        let study = run_stencil(501);
        assert!(study.paced.max_row_interval_ms < study.trefp_ms);
        assert!(study.bursty.max_row_interval_ms > study.paced.max_row_interval_ms);
        assert!(study.bursty.unique_error_locations >= study.paced.unique_error_locations);
    }

    #[test]
    fn predictor_generalizes() {
        let study = run_predictor();
        assert!(study.train_rmse_mv < 2.0);
        assert!(study.worst_nas_error_mv <= 5);
    }
}
