//! Fig. 9: per-domain server power at nominal vs the characterized safe
//! operating point, under the jammer-detector workload.

use guardband_core::safepoint::SafePointPolicy;
use power_model::server::{OperatingPoint, PowerBreakdown, ServerLoad};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use workload_sim::jammer::{self, JammerConfig, JammerReport};
use xgene_sim::server::XGene2Server;
use xgene_sim::sigma::SigmaBin;
use xgene_sim::topology::CoreId;

/// The Fig. 9 dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig9 {
    /// The derived safe operating point.
    pub safe_point: OperatingPoint,
    /// Breakdown at nominal.
    pub nominal: PowerBreakdown,
    /// Breakdown at the safe point.
    pub safe: PowerBreakdown,
    /// Jammer QoS verification at the safe point.
    pub jammer: JammerReport,
    /// Run outcomes at the safe point (all must be usable).
    pub all_runs_usable: bool,
}

/// Published headline numbers.
pub const PAPER_NOMINAL_W: f64 = 31.1;
/// Published safe-point power.
pub const PAPER_SAFE_W: f64 = 24.8;
/// Published total saving.
pub const PAPER_SAVING: f64 = 0.202;

/// Runs the exploitation experiment end to end.
pub fn run(seed: u64) -> Fig9 {
    let mut server = XGene2Server::new(SigmaBin::Ttt, seed);
    let chip = server.chip().clone();
    let cores: Vec<CoreId> = CoreId::all().collect();
    let workloads = vec![jammer::profile(); 8];
    let safe_point = SafePointPolicy::dsn18().derive(&chip, &workloads, &cores);

    let load = ServerLoad::jammer_detector();
    let nominal = server.read_power(&load);

    // Apply the safe point through SLIMpro and run the real detector.
    server
        .set_pmd_voltage(safe_point.pmd_voltage)
        .expect("safe point is in range");
    server
        .set_soc_voltage(safe_point.soc_voltage)
        .expect("safe point is in range");
    server
        .set_trefp(safe_point.trefp)
        .expect("safe TREFP is positive");
    let safe = server.read_power(&load);

    let profile = jammer::profile();
    let assignments: Vec<_> = cores.iter().map(|c| (*c, &profile)).collect();
    let results = server.run_many(&assignments);
    let all_runs_usable = results.iter().all(|r| r.outcome.is_usable());
    let jammer = jammer::run(&JammerConfig::dsn18());

    Fig9 {
        safe_point,
        nominal,
        safe,
        jammer,
        all_runs_usable,
    }
}

/// Renders the per-domain comparison.
pub fn render(fig: &Fig9) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 9 — server power: nominal vs safe point ({})",
        fig.safe_point
    );
    let _ = writeln!(
        out,
        "{:<10}{:>12}{:>12}{:>10}",
        "domain", "nominal W", "safe W", "saving"
    );
    use power_model::domain::DomainKind;
    for kind in DomainKind::ALL {
        let n = fig.nominal.domain(kind);
        let s = fig.safe.domain(kind);
        let _ = writeln!(
            out,
            "{:<10}{:>12.2}{:>12.2}{:>9.1}%",
            kind.to_string(),
            n.as_f64(),
            s.as_f64(),
            n.savings_to(s) * 100.0
        );
    }
    let _ = writeln!(
        out,
        "total: {:.1} W -> {:.1} W ({:.1}% savings; paper 31.1 -> 24.8 W, 20.2%)",
        fig.nominal.total().as_f64(),
        fig.safe.total().as_f64(),
        fig.nominal.total().savings_to(fig.safe.total()) * 100.0
    );
    let _ = writeln!(
        out,
        "jammer QoS at safe point: {} (detection rate {:.1}%), runs usable: {}",
        if fig.jammer.qos_met() {
            "met"
        } else {
            "VIOLATED"
        },
        fig.jammer.detection_rate() * 100.0,
        fig.all_runs_usable
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use power_model::units::Millivolts;

    #[test]
    fn reproduces_headline_numbers() {
        let fig = run(404);
        assert_eq!(fig.safe_point.pmd_voltage, Millivolts::new(930));
        assert_eq!(fig.safe_point.soc_voltage, Millivolts::new(920));
        let total_n = fig.nominal.total().as_f64();
        let total_s = fig.safe.total().as_f64();
        assert!((total_n - PAPER_NOMINAL_W).abs() < 0.2, "nominal {total_n}");
        assert!((total_s - PAPER_SAFE_W).abs() < 0.3, "safe {total_s}");
        let saving = fig.nominal.total().savings_to(fig.safe.total());
        assert!((saving - PAPER_SAVING).abs() < 0.012, "saving {saving}");
    }

    #[test]
    fn qos_and_correctness_hold_at_safe_point() {
        let fig = run(405);
        assert!(fig.jammer.qos_met());
        assert!(fig.all_runs_usable);
    }

    #[test]
    fn per_domain_savings_match_paper() {
        use power_model::domain::DomainKind;
        let fig = run(406);
        let saving = |k| fig.nominal.domain(k).savings_to(fig.safe.domain(k));
        assert!((saving(DomainKind::Pmd) - 0.203).abs() < 0.012);
        assert!((saving(DomainKind::Soc) - 0.069).abs() < 0.012);
        assert!((saving(DomainKind::Dram) - 0.333).abs() < 0.012);
    }
}
