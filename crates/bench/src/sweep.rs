//! Extension sweep: how far can refresh be relaxed as DIMM temperature
//! varies? The paper characterizes two points (50 °C, 60 °C); the model
//! generalizes them into the full safe-operating envelope a deployment
//! would consult.

use dram_sim::retention::RetentionModel;
use guardband_core::refresh_relax::{choose_relaxation, expected_failing, RelaxationPolicy};
use power_model::domain::DramDomain;
use power_model::units::{Celsius, Watts};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One sweep point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// DIMM temperature.
    pub temperature_c: f64,
    /// Largest safe relaxation factor under the policy.
    pub safe_factor: f64,
    /// Expected correctable weak cells at that point.
    pub expected_failing_cells: f64,
    /// DRAM-rail power saving at the jammer's utilization.
    pub power_saving: f64,
}

/// Sweeps 45–70 °C in 5 K steps.
pub fn run() -> Vec<SweepPoint> {
    let model = RetentionModel::xgene2_micron();
    let policy = RelaxationPolicy::dsn18();
    let dram = DramDomain::xgene2(Watts::new(9.0));
    (0..=5)
        .map(|i| {
            let t = Celsius::new(45.0 + 5.0 * f64::from(i));
            let choice = choose_relaxation(&model, t, &policy);
            SweepPoint {
                temperature_c: t.as_f64(),
                safe_factor: choice.factor,
                expected_failing_cells: expected_failing(&model, t, choice.trefp),
                power_saving: dram.refresh_relaxation_savings(choice.trefp, 0.107),
            }
        })
        .collect()
}

/// Renders the envelope.
pub fn render(points: &[SweepPoint]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Extension — safe refresh-relaxation envelope vs DIMM temperature"
    );
    let _ = writeln!(
        out,
        "{:>6}{:>14}{:>18}{:>16}",
        "°C", "safe factor", "expected CEs", "DRAM saving"
    );
    for p in points {
        let _ = writeln!(
            out,
            "{:>6.0}{:>13.1}x{:>18.0}{:>15.1}%",
            p.temperature_c,
            p.safe_factor,
            p.expected_failing_cells,
            p.power_saving * 100.0
        );
    }
    let _ = writeln!(
        out,
        "(the paper's 35x point at 60 °C sits on this envelope; hotter DIMMs force tighter refresh)"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_tightens_with_temperature() {
        let points = run();
        assert_eq!(points.len(), 6);
        for w in points.windows(2) {
            assert!(
                w[1].safe_factor <= w[0].safe_factor,
                "{} °C {}x vs {} °C {}x",
                w[0].temperature_c,
                w[0].safe_factor,
                w[1].temperature_c,
                w[1].safe_factor
            );
        }
    }

    #[test]
    fn paper_point_sits_on_the_envelope() {
        let points = run();
        let at60 = points
            .iter()
            .find(|p| (p.temperature_c - 60.0).abs() < 0.1)
            .unwrap();
        assert!(
            (at60.safe_factor - 35.67).abs() < 1e-9,
            "{}",
            at60.safe_factor
        );
        assert!((at60.power_saving - 0.333).abs() < 0.01);
    }

    #[test]
    fn hotter_than_characterized_forces_tighter_refresh() {
        let points = run();
        let at70 = points
            .iter()
            .find(|p| (p.temperature_c - 70.0).abs() < 0.1)
            .unwrap();
        assert!(
            at70.safe_factor < 35.0,
            "70 °C allows {}x",
            at70.safe_factor
        );
        assert!(at70.safe_factor >= 1.0);
    }
}
