//! Observatory benchmark: the red-team attack and the aging ablation
//! replayed under full observation, plus raw merge throughput.
//!
//! Three claims are checked at once: the observatory report is
//! byte-identical for every worker-pool size (on both the adversarial
//! replay and the lifetime ablation), each seeded scenario yields at
//! least one reconstructed incident, and the droop spike detector's
//! first warning leads the net's quarantine by at least one epoch with
//! zero false alarms on the benign-neighbor control arm. The dataset
//! serializes to `BENCH_obs.json` via the `experiments obs` subcommand,
//! and CI gates on its `"identical": true` flag and the incident
//! counts.

use lifetime::deployment::{
    run_deployment, DeploymentSpec, LifetimeConfig, LIFETIME_MARGIN_METRIC,
};
use observatory::{FleetTimeline, IncidentKind, StreamBuilder};
use redteam::{replay_observatory, AttackScenario, REDTEAM_DROOP_METRIC};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::time::Instant;
use telemetry::Level;
use xgene_sim::workload::WorkloadProfile;

/// Pool sizes the scenarios are replayed with.
pub const POOLS: [usize; 4] = [1, 2, 4, 8];

/// One pool size's record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObsPoint {
    /// Worker threads.
    pub workers: usize,
    /// Events in the merged red-team timeline.
    pub timeline_events: u64,
    /// Host wall-clock of the observed replay, seconds (informational;
    /// varies with the machine and is NOT part of any assertion).
    pub host_wall_seconds: f64,
}

/// The benchmark dataset — the schema of `BENCH_obs.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObsScale {
    /// Fleet size of the red-team scenario.
    pub boards: u32,
    /// Master seed.
    pub seed: u64,
    /// Whether every pool size produced byte-identical observatory
    /// reports, on both scenarios.
    pub identical: bool,
    /// Attacker-quarantine incidents reconstructed from the red-team
    /// scenario (must be ≥ 1).
    pub redteam_incidents: u64,
    /// Production-SDC incidents reconstructed from the aging ablation
    /// (must be ≥ 1).
    pub aging_incidents: u64,
    /// Mean epochs the droop spike warning led the quarantine by,
    /// across quarantined boards (must be ≥ 1).
    pub mean_warning_lead_epochs: f64,
    /// Mean months the margin-drift warning led the first SDC exposure
    /// by, across exposed boards.
    pub mean_aging_lead_months: f64,
    /// Spurious warnings on the benign-neighbor control arm (must
    /// be 0).
    pub false_alarms: u64,
    /// Events pushed through the pure merge throughput measurement.
    pub merge_events: u64,
    /// Merge throughput, events per second (informational).
    pub merge_events_per_sec: f64,
    /// The headline verdict CI gates on: reports identical, at least
    /// one incident per scenario, warnings lead detection, no false
    /// alarms.
    pub holds: bool,
    /// One record per pool size.
    pub points: Vec<ObsPoint>,
}

fn crafted_virus() -> WorkloadProfile {
    WorkloadProfile::builder("obs-virus")
        .activity(1.0)
        .swing(1.0)
        .resonance_alignment(0.9)
        .build()
}

/// Runs the full-size benchmark: the 6-board red-team fleet (40-epoch
/// episodes, onset at epoch 8) and the 12-board 48-month aging
/// ablation.
pub fn run(seed: u64) -> ObsScale {
    run_with(6, seed, 40, 12, 48, 50_000)
}

/// Runs a scaled-down benchmark (tests use small fleets and short
/// horizons; the `holds` flag is only meaningful at full scale).
pub fn run_sized(boards: u32, seed: u64) -> ObsScale {
    run_with(boards, seed, 25, 3, 12, 2_000)
}

fn run_with(
    boards: u32,
    seed: u64,
    epochs: u32,
    aging_boards: u32,
    months: u32,
    merge_events: u64,
) -> ObsScale {
    let fleet = fleet::population::FleetSpec::new(boards, seed);
    let scenario = AttackScenario::hardened(epochs).with_onset(8);
    let virus = crafted_virus();

    let mut identical = true;
    let mut baseline: Option<String> = None;
    let mut points = Vec::new();
    let mut last = None;
    for workers in POOLS {
        let start = Instant::now();
        let (reports, obs) = replay_observatory(&fleet, Some(&virus), &scenario, workers);
        let host_wall_seconds = start.elapsed().as_secs_f64();
        let json = obs.chronicle_json();
        match &baseline {
            None => baseline = Some(json),
            Some(first) => identical &= *first == json,
        }
        points.push(ObsPoint {
            workers,
            timeline_events: obs.timeline.len() as u64,
            host_wall_seconds,
        });
        last = Some((reports, obs));
    }
    let (reports, obs) = last.expect("POOLS is non-empty");

    let redteam_incidents = obs.incidents_of(IncidentKind::AttackerQuarantine).count() as u64;
    let leads: Vec<f64> = reports
        .iter()
        .filter(|r| r.attacker_quarantined)
        .filter_map(|r| {
            let warning = obs.first_warning(r.board, REDTEAM_DROOP_METRIC)?;
            let detected = r.detection_epoch?;
            Some(detected.saturating_sub(warning.epoch) as f64)
        })
        .collect();
    let mean_warning_lead_epochs = mean(&leads);

    // Control arm: the benign neighbor must raise nothing.
    let benign = workload_sim::tenant::benign_neighbor();
    let (_, benign_obs) = replay_observatory(&fleet, Some(&benign), &scenario, 4);
    let false_alarms = benign_obs.warnings.len() as u64;

    // Aging ablation: serial-vs-pooled identity plus SDC incidents.
    let aging_spec = DeploymentSpec::quick(aging_boards, seed, months).without_maintenance();
    let aging = run_deployment(&aging_spec, &LifetimeConfig::with_workers(4));
    let aging_serial = run_deployment(&aging_spec, &LifetimeConfig::with_workers(1));
    identical &= aging.observatory_json() == aging_serial.observatory_json();
    let aging_incidents = aging
        .observatory
        .incidents_of(IncidentKind::ProductionSdc)
        .count() as u64;
    let mut exposed: Vec<u32> = aging
        .observatory
        .incidents_of(IncidentKind::ProductionSdc)
        .map(|i| i.board)
        .collect();
    exposed.sort_unstable();
    exposed.dedup();
    let aging_leads: Vec<f64> = exposed
        .iter()
        .filter_map(|&board| {
            let warning = aging
                .observatory
                .first_warning(board, LIFETIME_MARGIN_METRIC)?;
            let first_sdc = aging
                .observatory
                .incidents_of(IncidentKind::ProductionSdc)
                .filter(|i| i.board == board)
                .map(|i| i.trigger_epoch)
                .min()?;
            Some(first_sdc.saturating_sub(warning.epoch) as f64)
        })
        .collect();
    let mean_aging_lead_months = mean(&aging_leads);

    // Pure merge throughput: synthetic streams, no campaign noise.
    let (merged, merge_events_per_sec) = merge_throughput(merge_events);

    let holds = identical
        && redteam_incidents >= 1
        && aging_incidents >= 1
        && mean_warning_lead_epochs >= 1.0
        && false_alarms == 0;

    ObsScale {
        boards,
        seed,
        identical,
        redteam_incidents,
        aging_incidents,
        mean_warning_lead_epochs,
        mean_aging_lead_months,
        false_alarms,
        merge_events: merged,
        merge_events_per_sec,
        holds,
        points,
    }
}

fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Builds `total` events spread over 64 board streams and times one
/// merge, returning `(events, events_per_sec)`.
fn merge_throughput(total: u64) -> (u64, f64) {
    const STREAMS: u64 = 64;
    let per_stream = (total / STREAMS).max(1);
    let streams: Vec<_> = (0..STREAMS)
        .map(|s| {
            let mut builder = StreamBuilder::synthetic(s / 8, (s % 8) as u32);
            for i in 0..per_stream {
                builder.push(
                    Level::Info,
                    if i % 2 == 0 { "tick" } else { "tock" },
                    vec![("i".into(), i.into())],
                );
            }
            builder.finish()
        })
        .collect();
    let events = STREAMS * per_stream;
    let start = Instant::now();
    let timeline = FleetTimeline::merge(&streams);
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(timeline.len() as u64, events);
    (events, events as f64 / elapsed.max(1e-9))
}

/// Renders the observatory table.
pub fn render(data: &ObsScale) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fleet observatory — {} boards attacked (seed {}), {} SDC months aged",
        data.boards, data.seed, data.aging_incidents
    );
    let _ = writeln!(
        out,
        "  incidents: {} attacker quarantines, {} production SDCs",
        data.redteam_incidents, data.aging_incidents
    );
    let _ = writeln!(
        out,
        "  early warning: droop spike leads quarantine by {:.1} epochs; margin drift leads SDC by {:.1} months; {} false alarms",
        data.mean_warning_lead_epochs, data.mean_aging_lead_months, data.false_alarms
    );
    // Host wall time and merge throughput vary with the machine and
    // live in the JSON record only; the deterministic columns are the
    // event tallies.
    let _ = writeln!(
        out,
        "  merge: {} events through one timeline",
        data.merge_events
    );
    let _ = writeln!(out, "{:>8}{:>10}", "workers", "events");
    for p in &data.points {
        let _ = writeln!(out, "{:>8}{:>10}", p.workers, p.timeline_events);
    }
    let _ = writeln!(
        out,
        "observatory report {} across pool sizes; early warning {}",
        if data.identical {
            "BYTE-IDENTICAL"
        } else {
            "DIVERGED (BUG)"
        },
        if data.holds { "HOLDS" } else { "FAILS (BUG)" },
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_small_scenario_stays_identical_across_pools() {
        let data = run_sized(3, 2018);
        assert!(data.identical);
        assert_eq!(data.points.len(), POOLS.len());
        assert!(data
            .points
            .windows(2)
            .all(|p| p[0].timeline_events == p[1].timeline_events));
        assert!(data.redteam_incidents >= 1);
        assert_eq!(data.false_alarms, 0);
        assert!(data.merge_events_per_sec > 0.0);
    }

    #[test]
    fn render_reports_the_invariant() {
        let data = run_sized(2, 7);
        assert!(render(&data).contains("BYTE-IDENTICAL"));
    }
}
