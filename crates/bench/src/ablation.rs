//! Ablation studies of the design choices DESIGN.md calls out: what the
//! results lose when one mechanism is removed or replaced.

use dram_sim::array::DramArray;
use dram_sim::patterns::DataPattern;
use dram_sim::retention::{PopulationSpec, RetentionModel, WeakCellPopulation, TABLE1_50C};
use guardband_core::governor::{simulate, GovernorConfig, GovernorStats, OnlineGovernor};
use guardband_core::predictor::VminPredictor;
use power_model::units::{Celsius, Megahertz, Milliseconds};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use stress_gen::ga::{evolve, fitness, GaConfig};
use stress_gen::isa::{InstrClass, VirusGenome};
use workload_sim::spec::SPEC_SUITE;
use xgene_sim::em::EmProbe;
use xgene_sim::pdn::PdnModel;
use xgene_sim::server::XGene2Server;
use xgene_sim::sigma::{ChipProfile, SigmaBin};

/// Ablation 1 — ECC: corrupted words with and without SECDED.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EccAblation {
    /// Flipped-bit events observed by the campaign.
    pub flipped_bits: u64,
    /// Words delivered corrupted *with* SECDED (uncorrectable).
    pub corrupted_with_ecc: u64,
    /// Words that would be delivered corrupted without any ECC.
    pub corrupted_without_ecc: u64,
}

/// Runs the ECC ablation: one relaxed-refresh random DPBench round.
pub fn run_ecc(seed: u64) -> EccAblation {
    let pop = WeakCellPopulation::generate(
        &RetentionModel::xgene2_micron(),
        PopulationSpec::dsn18(),
        seed,
    );
    let mut dram = DramArray::new(pop, Milliseconds::DSN18_RELAXED_TREFP, Celsius::new(60.0));
    dram.fill_pattern(DataPattern::Random { seed });
    dram.advance(Milliseconds::DSN18_RELAXED_TREFP.as_f64() * 1.5);
    let report = dram.scrub();
    EccAblation {
        flipped_bits: report.flipped_bits,
        corrupted_with_ecc: report.ue_events,
        // Without ECC every word containing at least one decayed bit is
        // delivered wrong; with the repair model keeping weak cells
        // isolated, that is exactly the CE count plus the UEs.
        corrupted_without_ecc: report.ce_events + report.ue_events,
    }
}

/// Ablation 2 — virus search strategy: EM amplitude reached by the GA, a
/// random search with the same evaluation budget, and the best steady
/// single-instruction loop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VirusSearchAblation {
    /// GA champion amplitude.
    pub ga: f64,
    /// Random-search best amplitude at equal budget.
    pub random_search: f64,
    /// Best steady loop amplitude.
    pub steady: f64,
}

/// Runs the virus-search ablation.
pub fn run_virus_search(seed: u64) -> VirusSearchAblation {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let pdn = PdnModel::xgene2();
    let config = GaConfig {
        seed,
        ..GaConfig::dsn18()
    };
    let budget = config.population * config.generations;

    let mut probe = EmProbe::new(pdn, seed);
    let ga = evolve(&config, &mut probe).champion_fitness;

    let mut probe = EmProbe::new(pdn, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
    let mut random_best = f64::MIN;
    for _ in 0..budget {
        let slots: Vec<InstrClass> = (0..config.genome_slots)
            .map(|_| InstrClass::ALL[rng.gen_range(0..InstrClass::ALL.len())])
            .collect();
        random_best = random_best.max(fitness(&VirusGenome::new(slots), &mut probe));
    }

    let mut probe = EmProbe::new(pdn, seed);
    let steady = InstrClass::ALL
        .iter()
        .map(|i| fitness(&VirusGenome::new(vec![*i; config.genome_slots]), &mut probe))
        .fold(f64::MIN, f64::max);

    VirusSearchAblation {
        ga,
        random_search: random_best,
        steady,
    }
}

/// Ablation 3 — retention model: Table I 50 °C behaviour with and without
/// the defect tail.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetentionAblation {
    /// Total 50 °C unique locations, two-population model.
    pub full_total_50c: u64,
    /// Total 50 °C unique locations, single-population ablation.
    pub single_total_50c: u64,
    /// Table I's published 50 °C total.
    pub paper_total_50c: f64,
}

/// Runs the retention-model ablation at 50 °C.
pub fn run_retention(seed: u64) -> RetentionAblation {
    let count = |model: &RetentionModel| {
        let pop = WeakCellPopulation::generate(model, PopulationSpec::dsn18(), seed);
        pop.failing_per_bank(
            Celsius::new(50.0),
            Milliseconds::DSN18_RELAXED_TREFP,
            dram_sim::retention::CouplingContext::WorstCase,
        )
        .iter()
        .sum::<u64>()
    };
    RetentionAblation {
        full_total_50c: count(&RetentionModel::xgene2_micron()),
        single_total_50c: count(&RetentionModel::xgene2_micron_no_defect_tail()),
        paper_total_50c: TABLE1_50C.iter().sum(),
    }
}

/// Ablation 4 — governor: predictive vs reactive-only voltage adoption.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GovernorAblation {
    /// Stats with the counter-driven predictor.
    pub predictive: GovernorStats,
    /// Stats with reactive feedback only.
    pub reactive: GovernorStats,
}

/// Runs the governor ablation over the SPEC phase schedule.
pub fn run_governor(seed: u64) -> GovernorAblation {
    let chip = ChipProfile::corner(SigmaBin::Ttt);
    let core = chip.most_robust_core();
    let data: Vec<_> = SPEC_SUITE
        .iter()
        .map(|b| {
            let p = b.profile();
            (p.clone(), chip.vmin(core, &p, Megahertz::XGENE2_NOMINAL))
        })
        .collect();
    let predictor = VminPredictor::train(&data).expect("well-posed");
    let schedule: Vec<_> = SPEC_SUITE.iter().map(|b| b.profile()).collect();
    let run = |predictor: Option<VminPredictor>, seed: u64| {
        let mut server = XGene2Server::new(SigmaBin::Ttt, seed);
        let core = server.chip().most_robust_core();
        let mut gov = OnlineGovernor::new(predictor, None, GovernorConfig::conservative());
        simulate(&mut server, &mut gov, &schedule, core, 600)
    };
    GovernorAblation {
        predictive: run(Some(predictor), seed),
        reactive: run(None, seed),
    }
}

/// Renders all ablations.
pub fn render(seed: u64) -> String {
    let mut out = String::new();
    let ecc = run_ecc(seed);
    let _ = writeln!(
        out,
        "Ablation — SECDED ECC (random DPBench, 60 °C, 2.283 s):"
    );
    let _ = writeln!(
        out,
        "  decayed bits {}; corrupted words with ECC: {}, without ECC: {}",
        ecc.flipped_bits, ecc.corrupted_with_ecc, ecc.corrupted_without_ecc
    );

    let virus = run_virus_search(seed);
    let _ = writeln!(
        out,
        "\nAblation — virus search (EM amplitude, equal budget):"
    );
    let _ = writeln!(
        out,
        "  GA {:.2}  |  random search {:.2}  |  best steady loop {:.2}",
        virus.ga, virus.random_search, virus.steady
    );

    let retention = run_retention(seed);
    let _ = writeln!(
        out,
        "\nAblation — retention model at 50 °C (Table I total {}):",
        retention.paper_total_50c
    );
    let _ = writeln!(
        out,
        "  two-population {}  |  single-population {}",
        retention.full_total_50c, retention.single_total_50c
    );

    let governor = run_governor(seed);
    let _ = writeln!(
        out,
        "\nAblation — online governor (600 epochs over SPEC phases):"
    );
    let _ = writeln!(
        out,
        "  predictive: mean {:.0} mV, {} CE backoffs, {} disruptions, {:.1}% dyn-power savings",
        governor.predictive.mean_voltage_mv(),
        governor.predictive.ce_backoffs,
        governor.predictive.disruptions,
        (1.0 - governor.predictive.mean_power_ratio()) * 100.0
    );
    let _ = writeln!(
        out,
        "  reactive:   mean {:.0} mV, {} CE backoffs, {} disruptions, {:.1}% dyn-power savings",
        governor.reactive.mean_voltage_mv(),
        governor.reactive.ce_backoffs,
        governor.reactive.disruptions,
        (1.0 - governor.reactive.mean_power_ratio()) * 100.0
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecc_is_load_bearing() {
        let a = run_ecc(601);
        assert_eq!(a.corrupted_with_ecc, 0);
        assert!(a.corrupted_without_ecc > 10_000);
    }

    #[test]
    fn ga_beats_random_search_and_steady_loops() {
        let a = run_virus_search(602);
        assert!(
            a.ga > a.random_search,
            "GA {} vs random {}",
            a.ga,
            a.random_search
        );
        assert!(a.ga > 1.5 * a.steady, "GA {} vs steady {}", a.ga, a.steady);
    }

    #[test]
    fn defect_tail_is_needed_for_the_50c_counts() {
        let a = run_retention(603);
        let full_err = (a.full_total_50c as f64 - a.paper_total_50c).abs() / a.paper_total_50c;
        let single_err = (a.single_total_50c as f64 - a.paper_total_50c).abs() / a.paper_total_50c;
        assert!(full_err < 0.25, "full model error {full_err}");
        assert!(
            single_err > full_err + 0.08,
            "single-population error {single_err} should clearly exceed {full_err}"
        );
    }

    #[test]
    fn predictive_governor_dominates_reactive() {
        let a = run_governor(604);
        assert_eq!(a.predictive.disruptions, 0);
        let predictive_savings = 1.0 - a.predictive.mean_power_ratio();
        let reactive_savings = 1.0 - a.reactive.mean_power_ratio();
        let dominated = a.reactive.disruptions > 0
            || reactive_savings < predictive_savings
            || a.reactive.ce_backoffs > a.predictive.ce_backoffs;
        assert!(dominated, "{a:?}");
    }
}
