//! Table I: variation of unique error locations across DRAM banks at
//! 50 °C and 60 °C under the 35× relaxed refresh period.

use char_fw::dramchar::{run_dram_campaign, DramCampaignConfig, DramCampaignReport};
use dram_sim::retention::{TABLE1_50C, TABLE1_60C};
use power_model::units::Celsius;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use thermal_sim::testbed::ThermalTestbed;
use xgene_sim::server::XGene2Server;
use xgene_sim::sigma::SigmaBin;

/// Measured Table I reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1 {
    /// The 50 °C campaign.
    pub at_50c: DramCampaignReport,
    /// The 60 °C campaign.
    pub at_60c: DramCampaignReport,
}

/// Runs both temperature campaigns on fresh (identically seeded) servers.
pub fn run(seed: u64) -> Table1 {
    let mut server50 = XGene2Server::new(SigmaBin::Ttt, seed);
    let mut bed50 = ThermalTestbed::new(Celsius::new(25.0), seed);
    let at_50c = run_dram_campaign(&mut server50, &mut bed50, &DramCampaignConfig::dsn18_50c());
    let mut server60 = XGene2Server::new(SigmaBin::Ttt, seed);
    let mut bed60 = ThermalTestbed::new(Celsius::new(25.0), seed);
    let at_60c = run_dram_campaign(&mut server60, &mut bed60, &DramCampaignConfig::dsn18_60c());
    Table1 { at_50c, at_60c }
}

/// Renders measured vs published rows.
pub fn render(table: &Table1) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table I — unique error locations per bank, TREFP 2.283 s (paper values in parentheses)"
    );
    let _ = write!(out, "{:<10}", "bank");
    for b in 1..=8 {
        let _ = write!(out, "{b:>14}");
    }
    let _ = writeln!(out);
    for (label, report, paper) in [
        ("50 °C", &table.at_50c, &TABLE1_50C),
        ("60 °C", &table.at_60c, &TABLE1_60C),
    ] {
        let _ = write!(out, "{label:<10}");
        for (got, expect) in report.unique_per_bank.iter().zip(paper) {
            let _ = write!(out, "{:>14}", format!("{got} ({expect})"));
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(
        out,
        "bank-to-bank spread: {:.0}% @50 °C (paper 41%), {:.0}% @60 °C (paper 16%)",
        table.at_50c.bank_spread() * 100.0,
        table.at_60c.bank_spread() * 100.0
    );
    let _ = writeln!(
        out,
        "ECC: {} CEs / {} UEs @50 °C, {} CEs / {} UEs @60 °C (paper: all errors corrected)",
        table.at_50c.ce_total, table.at_50c.ue_total, table.at_60c.ce_total, table.at_60c.ue_total
    );
    let _ = writeln!(
        out,
        "thermal regulation deviation: {:.2} °C / {:.2} °C (paper < 1 °C)",
        table.at_50c.regulation_deviation, table.at_60c.regulation_deviation
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_counts_and_spreads_reproduce() {
        let t = run(202);
        let total50: u64 = t.at_50c.unique_per_bank.iter().sum();
        let total60: u64 = t.at_60c.unique_per_bank.iter().sum();
        let paper50: f64 = TABLE1_50C.iter().sum();
        let paper60: f64 = TABLE1_60C.iter().sum();
        assert!(
            (total50 as f64 - paper50).abs() / paper50 < 0.2,
            "{total50} vs {paper50}"
        );
        assert!(
            (total60 as f64 - paper60).abs() / paper60 < 0.1,
            "{total60} vs {paper60}"
        );
        assert!(t.at_50c.bank_spread() > t.at_60c.bank_spread());
        assert_eq!(t.at_50c.ue_total + t.at_60c.ue_total, 0);
    }

    #[test]
    fn render_contains_both_rows() {
        let t = run(203);
        let text = render(&t);
        assert!(text.contains("50 °C") && text.contains("60 °C"));
        assert!(text.contains("(3358)"));
    }
}
