//! Fig. 4: Vmin at 2.4 GHz for 10 SPEC2006 programs on the TTT/TFF/TSS
//! chips (most robust core per chip).

use guardband_core::vmin::{characterize_chip, ChipVminSeries};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use workload_sim::spec::SPEC_SUITE;
use xgene_sim::sigma::SigmaBin;

/// The full Fig. 4 dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4 {
    /// One Vmin series per chip corner.
    pub series: Vec<ChipVminSeries>,
}

/// Published most-robust-core Vmin ranges per corner (min, max), in mV.
pub const PAPER_RANGES: [(SigmaBin, u32, u32); 3] = [
    (SigmaBin::Ttt, 860, 885),
    (SigmaBin::Tff, 870, 885),
    (SigmaBin::Tss, 870, 900),
];

/// Runs the Fig. 4 campaign on all three corners.
pub fn run(seed: u64) -> Fig4 {
    let suite: Vec<_> = SPEC_SUITE.iter().map(|b| b.profile()).collect();
    let series = SigmaBin::ALL
        .iter()
        .map(|&bin| characterize_chip(bin, &suite, seed))
        .collect();
    Fig4 { series }
}

/// Renders the figure as the paper's data table plus the published ranges.
pub fn render(fig: &Fig4) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 4 — Vmin @2.4 GHz, 10 SPEC2006 programs, most robust core"
    );
    let _ = write!(out, "{:<12}", "benchmark");
    for s in &fig.series {
        let _ = write!(out, "{:>8}", s.chip.to_string());
    }
    let _ = writeln!(out);
    for (i, (name, _)) in fig.series[0].vmins.iter().enumerate() {
        let _ = write!(out, "{name:<12}");
        for s in &fig.series {
            let _ = write!(out, "{:>8}", s.vmins[i].1.as_u32());
        }
        let _ = writeln!(out);
    }
    for s in &fig.series {
        if let Some((min, max)) = s.range() {
            let paper = PAPER_RANGES.iter().find(|(b, _, _)| *b == s.chip).unwrap();
            let _ = writeln!(
                out,
                "{}: measured {}..{} mV (paper {}..{} mV); guaranteed power guardband {:.1}%",
                s.chip,
                min.as_u32(),
                max.as_u32(),
                paper.1,
                paper.2,
                s.guardbands()
                    .guaranteed()
                    .map(|g| g.power_fraction() * 100.0)
                    .unwrap_or(0.0),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_ranges_match_paper_within_5mv() {
        let fig = run(101);
        for s in &fig.series {
            let (min, max) = s.range().unwrap();
            let (_, lo, hi) = *PAPER_RANGES.iter().find(|(b, _, _)| *b == s.chip).unwrap();
            assert!(
                (i64::from(min.as_u32()) - i64::from(lo)).abs() <= 5,
                "{}: min {min} vs {lo}",
                s.chip
            );
            assert!(
                (i64::from(max.as_u32()) - i64::from(hi)).abs() <= 5,
                "{}: max {max} vs {hi}",
                s.chip
            );
        }
    }

    #[test]
    fn render_mentions_all_chips_and_benchmarks() {
        let fig = run(102);
        let text = render(&fig);
        for chip in ["TTT", "TFF", "TSS"] {
            assert!(text.contains(chip));
        }
        assert!(text.contains("mcf") && text.contains("milc"));
    }
}
