//! Fig. 8a: BER of DPBenches and Rodinia applications under relaxed
//! refresh; Fig. 8b: DRAM power savings from the 35× relaxation.

use char_fw::dramchar::{refresh_savings, rodinia_bers};
use power_model::units::{Celsius, Milliseconds, Watts};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use workload_sim::dpbench::pattern_bers;
use workload_sim::rodinia::{self, KernelConfig};
use xgene_sim::server::XGene2Server;
use xgene_sim::sigma::SigmaBin;

/// The combined Fig. 8 dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig8 {
    /// `(pattern, BER)` of the four DPBenches (Fig. 8a left).
    pub dpbench_bers: Vec<(String, f64)>,
    /// `(app, BER, correct)` of the Rodinia applications (Fig. 8a right).
    pub rodinia_bers: Vec<(String, f64, bool)>,
    /// `(app, saving)` refresh-relaxation power savings (Fig. 8b).
    pub savings: Vec<(String, f64)>,
}

/// Published Fig. 8b extremes.
pub const PAPER_NW_SAVING: f64 = 0.273;
/// Published minimum saving (kmeans).
pub const PAPER_KMEANS_SAVING: f64 = 0.094;

/// Runs the Fig. 8 measurements at 60 °C under the 35× relaxation.
pub fn run(seed: u64) -> Fig8 {
    let mut server = XGene2Server::new(SigmaBin::Ttt, seed);
    server.set_dram_temperature(Celsius::new(60.0));
    server
        .set_trefp(Milliseconds::DSN18_RELAXED_TREFP)
        .expect("relaxed TREFP is valid");

    let dpbench_bers = pattern_bers(server.dram_mut(), seed)
        .into_iter()
        .map(|(p, b)| (p.to_string(), b))
        .collect();

    // Each application runs at its natural footprint and pacing: kmeans
    // rescans its points many times per refresh period; backprop and srad
    // revisit per epoch / diffusion step; nw fills once and idles. These
    // access cadences are what produce the per-application BER spread.
    let kernels = rodinia::suite();
    let mut rodinia = Vec::new();
    for kernel in &kernels {
        let cfg = match kernel.name() {
            "kmeans" => KernelConfig { scale: 512, iterations: 10, seed, runtime_ms: 7000.0 },
            "backprop" => KernelConfig { scale: 224, iterations: 5, seed, runtime_ms: 7000.0 },
            "srad" => KernelConfig { scale: 288, iterations: 5, seed, runtime_ms: 7000.0 },
            _ /* nw */ => KernelConfig { scale: 448, iterations: 1, seed, runtime_ms: 7000.0 },
        };
        rodinia.extend(rodinia_bers(
            &mut server,
            std::slice::from_ref(kernel),
            &cfg,
        ));
    }
    let savings = refresh_savings(&kernels, Milliseconds::DSN18_RELAXED_TREFP, Watts::new(9.0));
    Fig8 {
        dpbench_bers,
        rodinia_bers: rodinia,
        savings,
    }
}

/// Renders both panels.
pub fn render(fig: &Fig8) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Fig. 8a — BER under TREFP 2.283 s @60 °C");
    for (name, ber) in &fig.dpbench_bers {
        let _ = writeln!(out, "{name:<18}{ber:>12.3e}  (DPBench)");
    }
    for (name, ber, correct) in &fig.rodinia_bers {
        let _ = writeln!(
            out,
            "{name:<18}{ber:>12.3e}  (Rodinia, output {})",
            if *correct { "correct" } else { "CORRUPTED" }
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "Fig. 8b — DRAM power saving from 35x refresh relaxation"
    );
    for (name, s) in &fig.savings {
        let paper = match name.as_str() {
            "nw" => " (paper 27.3%)",
            "kmeans" => " (paper 9.4%)",
            _ => "",
        };
        let _ = writeln!(out, "{name:<18}{:>7.1}%{paper}", s * 100.0);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_dpbench_dominates_and_apps_stay_correct() {
        let fig = run(301);
        let random = fig
            .dpbench_bers
            .iter()
            .find(|(n, _)| n.starts_with("random"))
            .unwrap()
            .1;
        for (name, ber) in &fig.dpbench_bers {
            assert!(random >= *ber, "{name}");
        }
        for (name, ber, correct) in &fig.rodinia_bers {
            assert!(*correct, "{name} corrupted");
            assert!(*ber < random, "{name}: {ber} vs random {random}");
        }
    }

    #[test]
    fn fig8b_extremes_match_paper() {
        let fig = run(302);
        let get = |n: &str| fig.savings.iter().find(|(k, _)| k == n).unwrap().1;
        assert!((get("nw") - PAPER_NW_SAVING).abs() < 0.02);
        assert!((get("kmeans") - PAPER_KMEANS_SAVING).abs() < 0.02);
    }

    #[test]
    fn rodinia_ber_spread_is_significant() {
        // The paper observes up to 2.5× BER variation across the apps.
        let fig = run(303);
        let bers: Vec<f64> = fig
            .rodinia_bers
            .iter()
            .map(|(_, b, _)| *b)
            .filter(|b| *b > 0.0)
            .collect();
        if bers.len() >= 2 {
            let max = bers.iter().cloned().fold(f64::MIN, f64::max);
            let min = bers.iter().cloned().fold(f64::MAX, f64::min);
            assert!(max / min > 1.3, "spread {max}/{min}");
        }
    }
}
