//! Fleet-scale orchestration benchmark: 256 seeded boards characterized
//! by pools of 1/2/4/8 workers.
//!
//! Two claims are checked at once: every pool size produces the *same
//! characterization bytes* (the orchestrator's headline invariant), and
//! the modeled makespan shrinks near-linearly with the pool. Speedup is
//! the deterministic schedule model over per-job simulated
//! board-seconds — the containerized CI host has no 8 real cores to
//! measure, so host wall-clock is recorded as informational only (see
//! `fleet::schedule`). The dataset serializes to `BENCH_fleet.json` via
//! the `experiments fleet` subcommand.

use fleet::{run_fleet, FleetCampaign, FleetConfig, FleetSpec};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::time::Instant;

/// Pool sizes the fleet is re-run with.
pub const POOLS: [usize; 4] = [1, 2, 4, 8];

/// One pool size's record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpeedupPoint {
    /// Worker threads.
    pub workers: usize,
    /// Jobs executed (boards + safety-net requeues).
    pub jobs: u64,
    /// Steal operations between workers.
    pub queue_steals: u64,
    /// Modeled makespan, simulated seconds.
    pub sim_makespan_seconds: f64,
    /// Modeled speedup over serial (deterministic).
    pub speedup: f64,
    /// Host wall-clock of the run, seconds (informational; varies with
    /// the machine and is NOT part of any assertion).
    pub host_wall_seconds: f64,
}

/// The benchmark dataset — the schema of `BENCH_fleet.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetScale {
    /// Fleet size.
    pub boards: u32,
    /// Master seed.
    pub seed: u64,
    /// Whether every pool size produced byte-identical characterization
    /// output.
    pub identical: bool,
    /// Boards with a derived operating point.
    pub characterized: usize,
    /// Fleet-wide projected saving, W.
    pub total_savings_watts: f64,
    /// Total simulated work, seconds.
    pub sim_serial_seconds: f64,
    /// One record per pool size.
    pub points: Vec<SpeedupPoint>,
}

/// Runs the full 256-board benchmark.
pub fn run(seed: u64) -> FleetScale {
    run_sized(256, seed)
}

/// Runs the benchmark at an arbitrary fleet size (tests use small
/// fleets).
pub fn run_sized(boards: u32, seed: u64) -> FleetScale {
    let spec = FleetSpec::new(boards, seed);
    let campaign = FleetCampaign::quick();
    let mut baseline: Option<String> = None;
    let mut identical = true;
    let mut characterized = 0;
    let mut total_savings_watts = 0.0;
    let mut sim_serial_seconds = 0.0;
    let mut points = Vec::new();
    for workers in POOLS {
        let start = Instant::now();
        let report = run_fleet(&spec, &campaign, &FleetConfig::with_workers(workers));
        let host_wall_seconds = start.elapsed().as_secs_f64();
        let json = report.characterization_json();
        match &baseline {
            None => baseline = Some(json),
            Some(first) => identical &= *first == json,
        }
        characterized = report.characterization.stats.characterized;
        total_savings_watts = report.characterization.stats.total_savings_watts;
        sim_serial_seconds = report.characterization.sim_serial_seconds;
        points.push(SpeedupPoint {
            workers,
            jobs: report.execution.jobs,
            queue_steals: report.execution.queue_steals,
            sim_makespan_seconds: report.execution.sim_makespan_seconds,
            speedup: report.execution.speedup,
            host_wall_seconds,
        });
    }
    FleetScale {
        boards,
        seed,
        identical,
        characterized,
        total_savings_watts,
        sim_serial_seconds,
        points,
    }
}

/// Renders the scaling table.
pub fn render(data: &FleetScale) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fleet orchestration — {} boards (seed {}), {} characterized, {:.0} W projected",
        data.boards, data.seed, data.characterized, data.total_savings_watts
    );
    // Only the deterministic columns are rendered: steal counts and host
    // wall time vary with thread timing and live in the JSON record only.
    let _ = writeln!(
        out,
        "{:>8}{:>8}{:>16}{:>10}",
        "workers", "jobs", "makespan (sim)", "speedup"
    );
    for p in &data.points {
        let _ = writeln!(
            out,
            "{:>8}{:>8}{:>14.0} s{:>9.2}x",
            p.workers, p.jobs, p.sim_makespan_seconds, p.speedup
        );
    }
    let _ = writeln!(
        out,
        "characterization output {} across pool sizes ({:.0} s simulated serial work)",
        if data.identical {
            "BYTE-IDENTICAL"
        } else {
            "DIVERGED (BUG)"
        },
        data.sim_serial_seconds
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_fleet_scales_and_stays_identical() {
        let data = run_sized(12, 2018);
        assert!(data.identical);
        assert_eq!(data.characterized, 12);
        assert_eq!(data.points.len(), POOLS.len());
        assert_eq!(data.points[0].speedup, 1.0);
        let eight = data.points.last().unwrap();
        assert!(
            eight.speedup > 2.0,
            "8 workers over 12 boards must beat 2x, got {:.2}",
            eight.speedup
        );
        // Speedup never decreases as the pool grows.
        for pair in data.points.windows(2) {
            assert!(pair[1].speedup >= pair[0].speedup - 1e-12);
        }
    }

    #[test]
    fn render_reports_the_invariant() {
        let data = run_sized(6, 7);
        assert!(render(&data).contains("BYTE-IDENTICAL"));
    }
}
