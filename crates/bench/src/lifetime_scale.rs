//! Lifetime deployment benchmark: a 16-board fleet aged through 60
//! simulated months, replayed by pools of 1/2/4/8 workers and once with
//! maintenance ablated.
//!
//! Three claims are checked at once: every pool size produces the *same
//! chronicle bytes* (the lifetime subsystem's headline invariant), the
//! maintained fleet spends **zero** board-months below its aged Vmin
//! while the ablation demonstrably does not, and warm-started
//! re-characterization costs a fraction of the cold walks it replaces.
//! The dataset serializes to `BENCH_lifetime.json` via the
//! `experiments lifetime` subcommand.

use lifetime::{run_deployment, DeploymentSpec, LifetimeConfig};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::time::Instant;

/// Pool sizes the deployment is replayed with.
pub const POOLS: [usize; 4] = [1, 2, 4, 8];

/// One pool size's record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LifetimePoint {
    /// Worker threads.
    pub workers: usize,
    /// Characterization jobs executed (initial fleet + every epoch).
    pub jobs: u64,
    /// Host wall-clock of the run, seconds (informational; varies with
    /// the machine and is NOT part of any assertion).
    pub host_wall_seconds: f64,
}

/// The benchmark dataset — the schema of `BENCH_lifetime.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LifetimeScale {
    /// Fleet size.
    pub boards: u32,
    /// Master seed.
    pub seed: u64,
    /// Service horizon, months.
    pub months: u32,
    /// Whether every pool size produced byte-identical chronicles.
    pub identical: bool,
    /// Re-characterization campaigns the scheduler ran.
    pub recharacterizations: u64,
    /// Safe-point epochs committed over the horizon.
    pub epochs: usize,
    /// Distinct setups the warm-started re-walks visited.
    pub warm_walked_steps: u64,
    /// Setups the same campaigns would have walked cold.
    pub cold_equivalent_steps: u64,
    /// Board-months below the aged Vmin with maintenance on (the
    /// subsystem exists to keep this zero).
    pub sdc_board_months_maintained: u64,
    /// The same count with maintenance ablated (must be positive, or
    /// the horizon proves nothing).
    pub sdc_board_months_ablation: u64,
    /// Fleet savings at deployment, W.
    pub initial_savings_watts: f64,
    /// Fleet savings at the end of the horizon, W.
    pub final_savings_watts: f64,
    /// One record per pool size.
    pub points: Vec<LifetimePoint>,
}

/// Runs the full 16-board / 60-month benchmark.
pub fn run(seed: u64) -> LifetimeScale {
    run_sized(16, seed, 60)
}

/// Runs the benchmark at an arbitrary scale (tests use small fleets and
/// short horizons).
pub fn run_sized(boards: u32, seed: u64, months: u32) -> LifetimeScale {
    let spec = DeploymentSpec::quick(boards, seed, months);
    let mut baseline: Option<String> = None;
    let mut identical = true;
    let mut chronicle = None;
    let mut points = Vec::new();
    for workers in POOLS {
        let start = Instant::now();
        let report = run_deployment(&spec, &LifetimeConfig::with_workers(workers));
        let host_wall_seconds = start.elapsed().as_secs_f64();
        let json = report.chronicle_json();
        match &baseline {
            None => baseline = Some(json),
            Some(first) => identical &= *first == json,
        }
        points.push(LifetimePoint {
            workers,
            jobs: report.execution.jobs,
            host_wall_seconds,
        });
        chronicle = Some(report.chronicle);
    }
    let chronicle = chronicle.expect("POOLS is non-empty");
    let ablation = run_deployment(
        &spec.without_maintenance(),
        &LifetimeConfig::with_workers(*POOLS.last().expect("POOLS is non-empty")),
    );
    LifetimeScale {
        boards,
        seed,
        months,
        identical,
        recharacterizations: chronicle.recharacterizations,
        epochs: chronicle.epochs.epoch_count(),
        warm_walked_steps: chronicle.warm_walked_steps,
        cold_equivalent_steps: chronicle.cold_equivalent_steps,
        sdc_board_months_maintained: chronicle.production_sdc_board_months,
        sdc_board_months_ablation: ablation.chronicle.production_sdc_board_months,
        initial_savings_watts: chronicle.initial_savings_watts(),
        final_savings_watts: chronicle.final_savings_watts(),
        points,
    }
}

/// Renders the lifetime table.
pub fn render(data: &LifetimeScale) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Lifetime deployment — {} boards aged {} months (seed {})",
        data.boards, data.months, data.seed
    );
    let _ = writeln!(
        out,
        "  {} re-characterizations over {} epochs; warm walks {} steps vs {} cold ({:.0}% saved)",
        data.recharacterizations,
        data.epochs,
        data.warm_walked_steps,
        data.cold_equivalent_steps,
        if data.cold_equivalent_steps == 0 {
            0.0
        } else {
            100.0 * (1.0 - data.warm_walked_steps as f64 / data.cold_equivalent_steps as f64)
        },
    );
    let _ = writeln!(
        out,
        "  SDC board-months: {} maintained vs {} ablated",
        data.sdc_board_months_maintained, data.sdc_board_months_ablation
    );
    let _ = writeln!(
        out,
        "  fleet savings: {:.1} W at deployment -> {:.1} W at month {}",
        data.initial_savings_watts, data.final_savings_watts, data.months
    );
    // Host wall time varies with the machine and lives in the JSON
    // record only; the deterministic column is the job tally.
    let _ = writeln!(out, "{:>8}{:>8}", "workers", "jobs");
    for p in &data.points {
        let _ = writeln!(out, "{:>8}{:>8}", p.workers, p.jobs);
    }
    let _ = writeln!(
        out,
        "chronicle {} across pool sizes",
        if data.identical {
            "BYTE-IDENTICAL"
        } else {
            "DIVERGED (BUG)"
        },
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_short_life_stays_identical_across_pools() {
        let data = run_sized(4, 2018, 8);
        assert!(data.identical);
        assert_eq!(data.points.len(), POOLS.len());
        assert_eq!(data.sdc_board_months_maintained, 0);
        // Every pool replays the same life: same job tally everywhere.
        assert!(data.points.windows(2).all(|p| p[0].jobs == p[1].jobs));
        assert!(data.initial_savings_watts > 0.0);
    }

    #[test]
    fn render_reports_the_invariant() {
        let data = run_sized(3, 7, 6);
        assert!(render(&data).contains("BYTE-IDENTICAL"));
    }
}
