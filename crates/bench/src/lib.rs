//! Benchmark harness regenerating every table and figure of the DSN'18
//! guardband paper.
//!
//! One module per experiment, each exposing `run(..)` (returning the
//! dataset) and `render(..)` (the paper-vs-measured text table):
//!
//! | Module     | Paper artefact |
//! |------------|----------------|
//! | [`fig4`]   | Fig. 4 — SPEC2006 Vmin on TTT/TFF/TSS |
//! | [`fig5`]   | Fig. 5 — power/performance trade-off |
//! | [`fig6_7`] | Fig. 6/7 — EM virus vs NAS, inter-chip margins |
//! | [`table1`] | Table I — unique error locations per bank |
//! | [`fig8`]   | Fig. 8a/8b — BER and refresh power savings |
//! | [`fig9`]   | Fig. 9 — jammer-detector exploitation |
//! | [`extras`] | §IV.C stencil scheduling, §IV.D predictor |
//! | [`ablation`] | ECC / virus-search / retention-model / governor ablations |
//! | [`sweep`]  | extension: safe refresh envelope vs temperature |
//! | [`fleet_scale`] | extension: 256-board fleet orchestration speedup |
//! | [`chaos_scale`] | extension: 64 seeded crash schedules, byte-identical recovery |
//! | [`lifetime_scale`] | extension: 16-board fleet aged 60 months with maintenance |
//! | [`redteam_scale`] | extension: adversarial co-evolution vs the safety net |
//! | [`obs_scale`] | extension: fleet observatory incidents, early warning, merge throughput |
//! | [`serving`] | extension: control-plane serving under seeded diurnal load |
//! | [`dispatch_scale`] | extension: economic dispatch vs nominal-only ablation |
//!
//! The `experiments` binary drives all of them; the `benches/` directory
//! holds criterion timings of the same entry points.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ablation;
pub mod chaos_scale;
pub mod dispatch_scale;
pub mod extras;
pub mod fig4;
pub mod fig5;
pub mod fig6_7;
pub mod fig8;
pub mod fig9;
pub mod fleet_scale;
pub mod lifetime_scale;
pub mod obs_scale;
pub mod redteam_scale;
pub mod serving;
pub mod sweep;
pub mod table1;
