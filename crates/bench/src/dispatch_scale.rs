//! Dispatch benchmark: the economic dispatcher vs the nominal-only
//! ablation, with worker-count byte-identity.
//!
//! Three claims are checked at once and serialized to
//! `BENCH_dispatch.json` via `experiments dispatch`:
//!
//! 1. **Identity** — the dispatch chronicle (and the observatory's
//!    distillation) is byte-identical across 1/2/4/8 workers
//!    (`identical`): workers only parallelize the up-front fleet
//!    characterization and the post-hoc latency statistics, both
//!    pool-independent by construction.
//! 2. **Economics** — against a nominal-only arm routing the identical
//!    trace over the identical fleet, the dispatcher's fleet-wide
//!    watts-per-QPS is strictly lower (`beats_nominal`).
//! 3. **QoS** — the cheaper routing costs nothing: no additional QoS
//!    violations and no rejected requests (`no_extra_violations`).
//!
//! Wall-clock numbers measure the host and are NOT part of the
//! reproducibility fingerprint.

use dispatch::{run_dispatch_with_store, DispatchReport, DispatchSpec};
use fleet::{run_fleet, FleetCampaign, FleetConfig, FleetSpec};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::time::Instant;

/// Fleet size dispatched over.
pub const BOARDS: u32 = 8;

/// Worker pools the identity claim covers.
pub const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// The benchmark dataset — the schema of `BENCH_dispatch.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DispatchScaleData {
    /// Master seed of characterization, trace and placement.
    pub seed: u64,
    /// Fleet size.
    pub boards: u32,
    /// Requests in the dispatched trace.
    pub requests: u64,
    /// Worker pools compared.
    pub worker_counts: Vec<usize>,
    /// Chronicle and observatory JSON byte-identical across all pools.
    pub identical: bool,
    /// FNV-1a fingerprint of the reference chronicle JSON.
    pub chronicle_fingerprint: u64,
    /// Fleet-wide watts per served QPS, economic dispatcher.
    pub dispatcher_watts_per_qps: f64,
    /// Fleet-wide watts per served QPS, nominal-only ablation.
    pub nominal_watts_per_qps: f64,
    /// Dispatcher strictly cheaper than the ablation.
    pub beats_nominal: bool,
    /// Fractional saving over nominal-only.
    pub savings_fraction: f64,
    /// QoS violations, economic arm.
    pub dispatcher_qos_violations: u64,
    /// QoS violations, nominal-only arm.
    pub nominal_qos_violations: u64,
    /// Economic routing costs no additional violations and drops
    /// nothing.
    pub no_extra_violations: bool,
    /// Requests rejected at admission (economic arm; must be 0).
    pub rejected: u64,
    /// Placements steered around unroutable boards.
    pub reroutes: u64,
    /// Maintenance drains the planner ran.
    pub drains: u64,
    /// Re-characterization windows entered.
    pub maintenance_windows: u64,
    /// Host wall clock for the whole benchmark (not reproducible).
    pub host_wall_seconds: f64,
}

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

fn spec(seed: u64) -> DispatchSpec {
    let mut spec = DispatchSpec::quick(BOARDS, seed);
    // Any margin erosion schedules re-characterization (one board per
    // boundary), so the drain/resume path is always part of the run.
    spec.maintenance.margin_threshold_mv = 100;
    spec
}

/// Runs the dispatcher at every worker count plus the nominal arm.
pub fn run(seed: u64) -> DispatchScaleData {
    let started = Instant::now();
    let store = run_fleet(
        &FleetSpec::new(BOARDS, seed),
        &FleetCampaign::quick(),
        &FleetConfig::with_workers(4),
    )
    .characterization
    .store;

    let base = spec(seed);
    let reports: Vec<DispatchReport> = WORKER_COUNTS
        .iter()
        .map(|&workers| run_dispatch_with_store(&base, workers, &store))
        .collect();
    let reference = &reports[0];
    let chronicle = reference.chronicle_json();
    let observatory = reference.observatory_json();
    let identical = reports.iter().all(|report| {
        report.chronicle_json() == chronicle && report.observatory_json() == observatory
    });
    let mut chronicle_fingerprint = 0xcbf2_9ce4_8422_2325;
    fnv1a(&mut chronicle_fingerprint, chronicle.as_bytes());

    let nominal = run_dispatch_with_store(&base.nominal_arm(), 4, &store);
    let dispatcher_watts_per_qps = reference.chronicle.watts_per_qps;
    let nominal_watts_per_qps = nominal.chronicle.watts_per_qps;
    let beats_nominal = dispatcher_watts_per_qps < nominal_watts_per_qps;
    let no_extra_violations = reference.chronicle.qos_violations
        <= nominal.chronicle.qos_violations
        && reference.chronicle.rejected == 0;

    DispatchScaleData {
        seed,
        boards: BOARDS,
        requests: reference.chronicle.requests,
        worker_counts: WORKER_COUNTS.to_vec(),
        identical,
        chronicle_fingerprint,
        dispatcher_watts_per_qps,
        nominal_watts_per_qps,
        beats_nominal,
        savings_fraction: 1.0 - dispatcher_watts_per_qps / nominal_watts_per_qps,
        dispatcher_qos_violations: reference.chronicle.qos_violations,
        nominal_qos_violations: nominal.chronicle.qos_violations,
        no_extra_violations,
        rejected: reference.chronicle.rejected,
        reroutes: reference.chronicle.reroutes,
        drains: reference.chronicle.drains,
        maintenance_windows: reference.chronicle.maintenance_windows,
        host_wall_seconds: started.elapsed().as_secs_f64(),
    }
}

/// Human-readable table of the dataset.
pub fn render(data: &DispatchScaleData) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Economic dispatch over {} boards, seed {} ({} requests)",
        data.boards, data.seed, data.requests
    );
    let _ = writeln!(
        out,
        "  chronicle identical across {:?} workers: {} (fnv {:016x})",
        data.worker_counts, data.identical, data.chronicle_fingerprint
    );
    let _ = writeln!(
        out,
        "  watts/QPS: dispatcher {:.4} vs nominal-only {:.4} ({:.1} % saved, beats: {})",
        data.dispatcher_watts_per_qps,
        data.nominal_watts_per_qps,
        100.0 * data.savings_fraction,
        data.beats_nominal
    );
    let _ = writeln!(
        out,
        "  QoS: {} vs {} violations, {} rejected (no extra: {})",
        data.dispatcher_qos_violations,
        data.nominal_qos_violations,
        data.rejected,
        data.no_extra_violations
    );
    let _ = writeln!(
        out,
        "  churn absorbed: {} reroutes, {} drains, {} maintenance windows",
        data.reroutes, data.drains, data.maintenance_windows
    );
    let _ = writeln!(out, "  host wall: {:.2} s", data.host_wall_seconds);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_dataset_upholds_its_gates() {
        let data = run(2018);
        assert!(data.identical, "chronicles diverged across worker counts");
        assert!(data.beats_nominal);
        assert!(data.no_extra_violations);
        assert!(data.savings_fraction > 0.0);
        assert_eq!(data.rejected, 0);
    }
}
