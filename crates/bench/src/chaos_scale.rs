//! Chaos-recovery benchmark: 64 seeded crash schedules against one
//! durable fleet campaign.
//!
//! Every schedule is a `chaos::ChaosPlan::sampled` draw — coordinator
//! kills, mid-job worker deaths, torn/bit-flipped/deleted checkpoints,
//! torn journal tails, duplicated deliveries — replayed by the chaos
//! harness until a clean incarnation completes. All schedules are judged
//! against one shared uninterrupted baseline; the headline bit,
//! `recovered_identical`, is true only when **every** schedule recovers
//! with zero lost boards, zero double-counted merges and a merged
//! characterization byte-identical to that baseline. The dataset
//! serializes to `BENCH_chaos.json` via the `experiments chaos`
//! subcommand, where CI greps for the bit.

use chaos::{run_chaos_against, ChaosConfig, ChaosFault, ChaosPlan, ChaosRound, CorruptionKind};
use fleet::{run_fleet, FleetCampaign, FleetConfig, FleetSpec, CHECKPOINT_EVERY};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

/// Seeded crash schedules the full benchmark replays.
pub const SCHEDULES: u64 = 64;

/// The benchmark dataset — the schema of `BENCH_chaos.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosScale {
    /// Crash schedules replayed (sampled + directed).
    pub schedules: u64,
    /// Directed checkpoint-corruption schedules among them (one per
    /// `CorruptionKind`; sampled plans only rarely land a corruption
    /// fault after an incarnation that left a checkpoint behind, so
    /// these keep the rejection path exercised every run).
    pub directed_schedules: u64,
    /// Master seed (sampled schedule `i` uses plan seed `seed + i`).
    pub seed: u64,
    /// Fleet size each schedule runs against.
    pub boards: u32,
    /// Worker pool size per incarnation.
    pub workers: usize,
    /// Whether every schedule recovered with all invariants intact:
    /// zero lost boards, zero double-counted merges, store and
    /// observatory byte-identical to the uninterrupted baseline.
    pub recovered_identical: bool,
    /// Schedules that survived (== `schedules` when the bit holds).
    pub survived: u64,
    /// Faults actually injected, by kind label.
    pub injections_by_kind: BTreeMap<String, u64>,
    /// Coordinator incarnations summed over all schedules.
    pub total_incarnations: u64,
    /// Interrupts (crashes observed) summed over all schedules.
    pub total_interrupts: u64,
    /// Most incarnations any single schedule needed.
    pub max_incarnations: u64,
    /// Journaled completions reused instead of re-executed, summed.
    pub total_resumed: u64,
    /// Corrupt checkpoints detected and rejected, summed.
    pub checkpoint_rejections: u64,
    /// Incarnations that finished on a shrunken (but alive) pool.
    pub degraded_pool_incarnations: u64,
    /// Host wall-clock of the whole sweep, seconds (informational;
    /// varies with the machine and is NOT part of any assertion).
    pub host_wall_seconds: f64,
}

/// Runs the full 64-schedule benchmark.
pub fn run(seed: u64) -> ChaosScale {
    run_sized(SCHEDULES, seed)
}

/// Runs the benchmark over an arbitrary number of schedules (tests use
/// a handful).
pub fn run_sized(schedules: u64, seed: u64) -> ChaosScale {
    let config = ChaosConfig::default();
    let spec = FleetSpec::new(config.boards, config.fleet_seed);
    let campaign = FleetCampaign::quick();
    // One uninterrupted baseline shared by every schedule: the recovery
    // invariant compares characterization bytes, so the baseline only
    // depends on the fleet, never on the chaos seed.
    let baseline = run_fleet(&spec, &campaign, &FleetConfig::with_workers(config.workers));

    let start = Instant::now();
    let mut survived = 0u64;
    let mut injections_by_kind: BTreeMap<String, u64> = BTreeMap::new();
    let mut total_incarnations = 0u64;
    let mut total_interrupts = 0u64;
    let mut max_incarnations = 0u64;
    let mut total_resumed = 0u64;
    let mut checkpoint_rejections = 0u64;
    let mut degraded_pool_incarnations = 0u64;
    let sampled = (0..schedules).map(|i| ChaosPlan::sampled(seed.wrapping_add(i), config.workers));
    // Directed schedules: kill the coordinator right after it commits a
    // checkpoint, then damage that checkpoint while it is down — one
    // schedule per corruption kind, so detection (truncate, bit-flip)
    // and fallback-to-journal (drop) run on every benchmark invocation.
    let kinds = [
        CorruptionKind::Truncate,
        CorruptionKind::BitFlip,
        CorruptionKind::Drop,
    ];
    let directed = kinds.iter().enumerate().map(|(i, kind)| ChaosPlan {
        seed: seed.wrapping_add(schedules + i as u64),
        rounds: vec![
            ChaosRound {
                faults: vec![ChaosFault::CoordinatorKill {
                    after_completions: CHECKPOINT_EVERY,
                }],
            },
            ChaosRound {
                faults: vec![ChaosFault::CorruptCheckpoint { kind: *kind }],
            },
        ],
    });
    let directed_schedules = kinds.len() as u64;
    for plan in sampled.chain(directed) {
        let report = run_chaos_against(&plan, &config, &baseline);
        survived += u64::from(report.survived());
        for (kind, count) in &report.injections {
            *injections_by_kind.entry(kind.clone()).or_insert(0) += count;
        }
        total_incarnations += report.incarnations;
        total_interrupts += report.interrupts.len() as u64;
        max_incarnations = max_incarnations.max(report.incarnations);
        total_resumed += report.total_resumed;
        checkpoint_rejections += report.checkpoint_rejections;
        degraded_pool_incarnations += report.degraded_pool_incarnations;
    }
    let schedules = schedules + directed_schedules;
    ChaosScale {
        schedules,
        directed_schedules,
        seed,
        boards: config.boards,
        workers: config.workers,
        recovered_identical: survived == schedules,
        survived,
        injections_by_kind,
        total_incarnations,
        total_interrupts,
        max_incarnations,
        total_resumed,
        checkpoint_rejections,
        degraded_pool_incarnations,
        host_wall_seconds: start.elapsed().as_secs_f64(),
    }
}

/// Renders the recovery summary table.
pub fn render(data: &ChaosScale) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Chaos recovery — {} seeded crash schedules (seed {}) x {} boards / {} workers",
        data.schedules, data.seed, data.boards, data.workers
    );
    let _ = writeln!(out, "{:>24}{:>10}", "schedules survived", "");
    let _ = writeln!(
        out,
        "{:>20}/{}{:>10}",
        data.survived,
        data.schedules,
        if data.recovered_identical {
            "OK"
        } else {
            "BUG"
        }
    );
    for (kind, count) in &data.injections_by_kind {
        let _ = writeln!(out, "  injected {kind:<19} x{count}");
    }
    let _ = writeln!(
        out,
        "  {} incarnations ({} crashes recovered, worst schedule {}), \
         {} journaled completions reused",
        data.total_incarnations, data.total_interrupts, data.max_incarnations, data.total_resumed
    );
    let _ = writeln!(
        out,
        "  {} corrupt checkpoints rejected, {} incarnations finished on a degraded pool",
        data.checkpoint_rejections, data.degraded_pool_incarnations
    );
    let _ = writeln!(
        out,
        "recovered characterization {} across all schedules",
        if data.recovered_identical {
            "BYTE-IDENTICAL"
        } else {
            "DIVERGED (BUG)"
        }
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_small_sweep_recovers_identically() {
        let data = run_sized(6, 2018);
        assert!(data.recovered_identical, "{data:?}");
        assert_eq!(data.schedules, 6 + data.directed_schedules);
        assert_eq!(data.survived, data.schedules);
        assert!(data.total_incarnations >= data.schedules);
        assert!(
            !data.injections_by_kind.is_empty(),
            "sampled plans always inject something"
        );
        // The directed schedules guarantee the corruption path ran:
        // truncate and bit-flip are detected and rejected, drop falls
        // back to the journal silently.
        assert!(data.injections_by_kind["corrupt_checkpoint"] >= 3);
        assert!(data.checkpoint_rejections >= 2, "{data:?}");
    }

    #[test]
    fn render_reports_the_invariant() {
        let data = run_sized(3, 7);
        assert!(render(&data).contains("BYTE-IDENTICAL"));
    }
}
