//! Red-team benchmark: the virus GA co-evolved against the seed safety
//! net, replayed by pools of 1/2/4/8 workers, and the champion scored
//! against both net arms.
//!
//! Three claims are checked at once: every worker count produces the
//! *same campaign chronicle bytes*, the co-evolved champion slips at
//! least one SDC past the pre-hardening seed net, and the hardened net
//! holds — zero escapes, with every board detecting the attack within
//! one relaxed sentinel period. The dataset serializes to
//! `BENCH_redteam.json` via the `experiments redteam` subcommand, and CI
//! gates on its `"holds": true` flag.

use redteam::{replay_fleet, run_campaign, AttackScenario, CampaignConfig};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::time::Instant;

/// Pool sizes the campaign is replayed with.
pub const POOLS: [usize; 4] = [1, 2, 4, 8];

/// One pool size's record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RedteamPoint {
    /// Worker threads.
    pub workers: usize,
    /// Adversarial episodes executed (genomes × boards × generations).
    pub episodes: u64,
    /// Host wall-clock of the run, seconds (informational; varies with
    /// the machine and is NOT part of any assertion).
    pub host_wall_seconds: f64,
}

/// The benchmark dataset — the schema of `BENCH_redteam.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RedteamScale {
    /// Fleet size attacked.
    pub boards: u32,
    /// Master seed.
    pub seed: u64,
    /// GA generations the attacker was budgeted.
    pub generations: usize,
    /// Whether every pool size produced byte-identical chronicles.
    pub identical: bool,
    /// The champion's fitness (escapes + resonance shaping).
    pub champion_fitness: f64,
    /// Champion-replay escapes against the pre-hardening seed net (the
    /// leak the red team exists to demonstrate — must be ≥ 1).
    pub seed_net_escapes: u64,
    /// Champion-replay escapes against the hardened net (must be 0).
    pub hardened_escapes: u64,
    /// Boards whose hardened net quarantined the attacker.
    pub quarantined_boards: u32,
    /// Worst detection latency across hardened boards, in epochs.
    pub max_detection_latency_epochs: u64,
    /// The relaxed sentinel period the latency is measured against.
    pub sentinel_period_epochs: u32,
    /// Whether every hardened board detected the attack within one
    /// relaxed sentinel period.
    pub latency_within_period: bool,
    /// The headline verdict CI gates on: chronicles identical, the seed
    /// net leaks, the hardened net holds, detection within one period.
    pub holds: bool,
    /// One record per pool size.
    pub points: Vec<RedteamPoint>,
}

/// Runs the full-size benchmark: a 6-board fleet, 12 genomes × 8
/// generations, 40-epoch episodes.
pub fn run(seed: u64) -> RedteamScale {
    run_with(CampaignConfig::dsn18(6, seed))
}

/// Runs a scaled-down benchmark (tests use small fleets and short
/// budgets; the `holds` flag is only meaningful at full scale).
pub fn run_sized(boards: u32, seed: u64) -> RedteamScale {
    let mut config = CampaignConfig::dsn18(boards, seed);
    config.ga.population = 6;
    config.ga.generations = 3;
    config.scenario.epochs = 25;
    run_with(config)
}

fn run_with(mut config: CampaignConfig) -> RedteamScale {
    let mut baseline: Option<String> = None;
    let mut identical = true;
    let mut points = Vec::new();
    let mut last_report = None;
    let episodes =
        config.ga.population as u64 * u64::from(config.fleet.boards) * config.ga.generations as u64;
    for workers in POOLS {
        config.workers = workers;
        let start = Instant::now();
        let report = run_campaign(&config);
        let host_wall_seconds = start.elapsed().as_secs_f64();
        let json = report.chronicle_json();
        match &baseline {
            None => baseline = Some(json),
            Some(first) => identical &= *first == json,
        }
        points.push(RedteamPoint {
            workers,
            episodes,
            host_wall_seconds,
        });
        last_report = Some(report);
    }
    let report = last_report.expect("POOLS is non-empty");
    let champion = report.champion_profile();
    let replay_workers = *POOLS.last().expect("POOLS is non-empty");

    let seed_replay = replay_fleet(
        &config.fleet,
        Some(&champion),
        &config.scenario,
        replay_workers,
    );
    // The hardened arm differs from the attacked scenario only in its
    // safety-net config: same victim, governor and episode length.
    let mut hardened_scenario = AttackScenario::hardened(config.scenario.epochs);
    hardened_scenario.victim = config.scenario.victim.clone();
    hardened_scenario.governor = config.scenario.governor;
    let hardened_replay = replay_fleet(
        &config.fleet,
        Some(&champion),
        &hardened_scenario,
        replay_workers,
    );

    let seed_net_escapes: u64 = seed_replay.iter().map(|r| r.escaped_sdcs).sum();
    let hardened_escapes: u64 = hardened_replay.iter().map(|r| r.escaped_sdcs).sum();
    let quarantined_boards = hardened_replay
        .iter()
        .filter(|r| r.attacker_quarantined)
        .count() as u32;
    let all_detected = hardened_replay.iter().all(|r| r.detection_epoch.is_some());
    let max_detection_latency_epochs = hardened_replay
        .iter()
        .filter_map(|r| r.detection_epoch)
        .max()
        .unwrap_or(u64::MAX);
    let sentinel_period_epochs = hardened_scenario.safety.sentinel_every_epochs;
    let latency_within_period =
        all_detected && max_detection_latency_epochs <= u64::from(sentinel_period_epochs);
    let holds =
        identical && seed_net_escapes >= 1 && hardened_escapes == 0 && latency_within_period;

    RedteamScale {
        boards: config.fleet.boards,
        seed: config.fleet.seed,
        generations: config.ga.generations,
        identical,
        champion_fitness: report.champion_fitness,
        seed_net_escapes,
        hardened_escapes,
        quarantined_boards,
        max_detection_latency_epochs,
        sentinel_period_epochs,
        latency_within_period,
        holds,
        points,
    }
}

/// Renders the red-team table.
pub fn render(data: &RedteamScale) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Red-team co-evolution — {} boards, {} GA generations (seed {})",
        data.boards, data.generations, data.seed
    );
    let _ = writeln!(
        out,
        "  champion fitness {:.2}; champion replay: {} escapes past the seed net, {} past the hardened net",
        data.champion_fitness, data.seed_net_escapes, data.hardened_escapes
    );
    let _ = writeln!(
        out,
        "  hardened detection: {}/{} boards quarantined the attacker, worst latency {} epochs (sentinel period {})",
        data.quarantined_boards, data.boards, data.max_detection_latency_epochs, data.sentinel_period_epochs
    );
    // Host wall time varies with the machine and lives in the JSON
    // record only; the deterministic column is the episode tally.
    let _ = writeln!(out, "{:>8}{:>10}", "workers", "episodes");
    for p in &data.points {
        let _ = writeln!(out, "{:>8}{:>10}", p.workers, p.episodes);
    }
    let _ = writeln!(
        out,
        "chronicle {} across pool sizes; hardened net {}",
        if data.identical {
            "BYTE-IDENTICAL"
        } else {
            "DIVERGED (BUG)"
        },
        if data.holds { "HOLDS" } else { "LEAKS (BUG)" },
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_small_campaign_stays_identical_across_pools() {
        let data = run_sized(3, 2018);
        assert!(data.identical);
        assert_eq!(data.points.len(), POOLS.len());
        assert!(data
            .points
            .windows(2)
            .all(|p| p[0].episodes == p[1].episodes));
        assert_eq!(data.hardened_escapes, 0);
        assert!(data.latency_within_period);
    }

    #[test]
    fn render_reports_the_invariant() {
        let data = run_sized(2, 7);
        assert!(render(&data).contains("BYTE-IDENTICAL"));
    }
}
