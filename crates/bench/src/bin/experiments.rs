//! Regenerates the paper's tables and figures.
//!
//! Usage: `experiments [fig4|fig5|fig6|fig7|table1|fig8a|fig8b|fig9|stencil|predictor|ablations|sweep|fleet|chaos|lifetime|redteam|obs|serving|dispatch|all] [seed]`
//!
//! `fleet` additionally writes the speedup record to `BENCH_fleet.json`,
//! `chaos` the crash-recovery record to `BENCH_chaos.json`, `lifetime`
//! the aging record to `BENCH_lifetime.json`, `redteam` the adversarial
//! record to `BENCH_redteam.json`, `obs` the observatory record to
//! `BENCH_obs.json`, `serving` the control-plane record to
//! `BENCH_serving.json`, and `dispatch` the economic-dispatch record to
//! `BENCH_dispatch.json`, all in the current directory.

use guardband_bench as bench;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("all");
    let seed: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(2018);
    println!("DSN'18 guardband reproduction — experiment '{which}', seed {seed}\n");

    let run_fig4 = || println!("{}", bench::fig4::render(&bench::fig4::run(seed)));
    let run_fig5 = || println!("{}", bench::fig5::render(&bench::fig5::run()));
    let run_fig67 = || println!("{}", bench::fig6_7::render(&bench::fig6_7::run(seed)));
    let run_table1 = || println!("{}", bench::table1::render(&bench::table1::run(seed)));
    let run_fig8 = || println!("{}", bench::fig8::render(&bench::fig8::run(seed)));
    let run_fig9 = || println!("{}", bench::fig9::render(&bench::fig9::run(seed)));
    let run_stencil = || {
        println!(
            "{}",
            bench::extras::render_stencil(&bench::extras::run_stencil(seed))
        )
    };
    let run_predictor = || {
        println!(
            "{}",
            bench::extras::render_predictor(&bench::extras::run_predictor())
        )
    };
    let run_ablations = || println!("{}", bench::ablation::render(seed));
    let run_sweep = || println!("{}", bench::sweep::render(&bench::sweep::run()));
    let run_fleet = || {
        let data = bench::fleet_scale::run(seed);
        println!("{}", bench::fleet_scale::render(&data));
        let json = serde::json::to_string(&data);
        match std::fs::write("BENCH_fleet.json", &json) {
            Ok(()) => println!("(speedup record written to BENCH_fleet.json)"),
            Err(err) => eprintln!("could not write BENCH_fleet.json: {err}"),
        }
    };
    let run_chaos = || {
        let data = bench::chaos_scale::run(seed);
        println!("{}", bench::chaos_scale::render(&data));
        let json = serde::json::to_string(&data);
        match std::fs::write("BENCH_chaos.json", &json) {
            Ok(()) => println!("(crash-recovery record written to BENCH_chaos.json)"),
            Err(err) => eprintln!("could not write BENCH_chaos.json: {err}"),
        }
    };
    let run_lifetime = || {
        let data = bench::lifetime_scale::run(seed);
        println!("{}", bench::lifetime_scale::render(&data));
        let json = serde::json::to_string(&data);
        match std::fs::write("BENCH_lifetime.json", &json) {
            Ok(()) => println!("(aging record written to BENCH_lifetime.json)"),
            Err(err) => eprintln!("could not write BENCH_lifetime.json: {err}"),
        }
    };

    let run_redteam = || {
        let data = bench::redteam_scale::run(seed);
        println!("{}", bench::redteam_scale::render(&data));
        let json = serde::json::to_string(&data);
        match std::fs::write("BENCH_redteam.json", &json) {
            Ok(()) => println!("(adversarial record written to BENCH_redteam.json)"),
            Err(err) => eprintln!("could not write BENCH_redteam.json: {err}"),
        }
    };

    let run_obs = || {
        let data = bench::obs_scale::run(seed);
        println!("{}", bench::obs_scale::render(&data));
        let json = serde::json::to_string(&data);
        match std::fs::write("BENCH_obs.json", &json) {
            Ok(()) => println!("(observatory record written to BENCH_obs.json)"),
            Err(err) => eprintln!("could not write BENCH_obs.json: {err}"),
        }
    };

    let run_serving = || {
        let data = bench::serving::run(seed);
        println!("{}", bench::serving::render(&data));
        let json = serde::json::to_string(&data);
        match std::fs::write("BENCH_serving.json", &json) {
            Ok(()) => println!("(serving record written to BENCH_serving.json)"),
            Err(err) => eprintln!("could not write BENCH_serving.json: {err}"),
        }
    };

    let run_dispatch = || {
        let data = bench::dispatch_scale::run(seed);
        println!("{}", bench::dispatch_scale::render(&data));
        let json = serde::json::to_string(&data);
        match std::fs::write("BENCH_dispatch.json", &json) {
            Ok(()) => println!("(dispatch record written to BENCH_dispatch.json)"),
            Err(err) => eprintln!("could not write BENCH_dispatch.json: {err}"),
        }
    };

    match which {
        "fig4" => run_fig4(),
        "fig5" => run_fig5(),
        "fig6" | "fig7" | "fig6_7" => run_fig67(),
        "table1" => run_table1(),
        "fig8" | "fig8a" | "fig8b" => run_fig8(),
        "fig9" => run_fig9(),
        "stencil" => run_stencil(),
        "predictor" => run_predictor(),
        "ablations" => run_ablations(),
        "sweep" => run_sweep(),
        "fleet" => run_fleet(),
        "chaos" => run_chaos(),
        "lifetime" => run_lifetime(),
        "redteam" => run_redteam(),
        "obs" => run_obs(),
        "serving" => run_serving(),
        "dispatch" => run_dispatch(),
        "all" => {
            run_fig4();
            run_fig5();
            run_fig67();
            run_table1();
            run_fig8();
            run_fig9();
            run_stencil();
            run_predictor();
            run_ablations();
            run_sweep();
            run_fleet();
            run_chaos();
            run_lifetime();
            run_redteam();
            run_obs();
            run_serving();
            run_dispatch();
        }
        other => {
            eprintln!(
                "unknown experiment '{other}'; expected one of \
                 fig4|fig5|fig6|fig7|table1|fig8a|fig8b|fig9|stencil|predictor|ablations|sweep|fleet|chaos|lifetime|redteam|obs|serving|dispatch|all"
            );
            std::process::exit(2);
        }
    }
}
