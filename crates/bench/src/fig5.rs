//! Fig. 5: power/performance trade-off of the 8-benchmark SPEC mix.

use guardband_core::energy::{derive_ladder, ladder_tradeoff, LadderRung};
use power_model::tradeoff::{TradeoffCurve, TradeoffPoint};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use workload_sim::spec::fig5_mix;
use xgene_sim::sigma::{ChipProfile, SigmaBin};

/// Model-derived and published trade-off curves.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5 {
    /// The model-derived ladder (via scheduling on the TTT chip model).
    pub ladder: Vec<LadderRung>,
    /// Trade-off points of the derived ladder (includes the 980 mV anchor).
    pub derived: Vec<TradeoffPoint>,
    /// The published measured curve.
    pub published: Vec<TradeoffPoint>,
}

/// Runs the Fig. 5 analysis.
pub fn run() -> Fig5 {
    let chip = ChipProfile::corner(SigmaBin::Ttt);
    let mix: Vec<_> = fig5_mix().iter().map(|b| b.profile()).collect();
    let ladder = derive_ladder(&chip, &mix);
    let derived = ladder_tradeoff(&ladder);
    let published = TradeoffCurve::xgene2_fig5().points();
    Fig5 {
        ladder,
        derived,
        published,
    }
}

/// Renders both curves side by side.
pub fn render(fig: &Fig5) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 5 — power/performance trade-off, 8-benchmark SPEC mix (TTT)"
    );
    let _ = writeln!(
        out,
        "{:<12}{:>12}{:>12}{:>12}   {:>12}{:>12}",
        "slow PMDs", "model mV", "perf %", "power %", "paper mV", "paper power %"
    );
    for (i, p) in fig.published.iter().enumerate() {
        // Derived curve has an extra 980 mV anchor at index 0 matching the
        // published index 0; indices beyond align one-to-one afterwards.
        let derived = fig.derived.get(i);
        let _ = writeln!(
            out,
            "{:<12}{:>12}{:>12.1}{:>12.1}   {:>12}{:>12.1}",
            p.plan.slow_pmd_count(),
            derived.map(|d| d.voltage.as_u32()).unwrap_or(0),
            derived
                .map(|d| d.relative_performance * 100.0)
                .unwrap_or(0.0),
            derived.map(|d| d.relative_power * 100.0).unwrap_or(0.0),
            p.voltage.as_u32(),
            p.relative_power * 100.0,
        );
    }
    let free = fig.derived[1].power_savings();
    let quarter = fig.derived[3].power_savings();
    let _ = writeln!(
        out,
        "headline: {:.1}% savings at no perf loss (paper 12.8%), {:.1}% at 25% loss (paper 38.8%)",
        free * 100.0,
        quarter * 100.0
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_and_published_curves_are_close() {
        let fig = run();
        assert_eq!(fig.derived.len(), fig.published.len());
        for (d, p) in fig.derived.iter().zip(&fig.published) {
            assert!((d.relative_performance - p.relative_performance).abs() < 1e-9);
            assert!(
                (d.relative_power - p.relative_power).abs() < 0.035,
                "model {:.3} vs paper {:.3}",
                d.relative_power,
                p.relative_power
            );
        }
    }

    #[test]
    fn render_includes_headline() {
        let text = render(&run());
        assert!(text.contains("12.8%"));
        assert!(text.contains("38.8%"));
    }
}
