//! Per-board event streams and the Lamport-style causal key.
//!
//! Every telemetry context already assigns deterministic per-context
//! sequence numbers in emission order (see `telemetry::event`). A
//! [`BoardStream`] pins one such context's events to the `(epoch,
//! board)` coordinate it was recorded at, which makes the triple
//! `(epoch, board, seq)` — the [`CausalKey`] — a total causal order
//! *within* a stream and a deterministic tie-broken order *across*
//! streams: epoch is the fleet-wide logical clock, board is the site,
//! and seq is the site-local Lamport counter. Merging streams sorted by
//! this key is therefore a pure function of the set of streams, no
//! matter which worker produced which stream or in what order they
//! arrived.

use serde::{Deserialize, Serialize};
use std::rc::Rc;
use telemetry::event::EventKind;
use telemetry::{CaptureSink, Event, FieldValue, Level, Sink, Telemetry};

/// Sequence-number namespace for events synthesized by a coordinator
/// (the fleet orchestrator, the lifetime scheduler) *about* a board
/// rather than recorded *on* it. Offsetting the coordinator's counter
/// keeps its events ordered after every job-side event of the same
/// `(epoch, board)` — an eviction decision causally follows the whole
/// job trace that provoked it — without ever colliding with job-side
/// sequence numbers.
pub const COORDINATOR_SEQ_BASE: u64 = 1 << 48;

/// The Lamport-style causal coordinate of one event in the fleet
/// timeline. Ordering is lexicographic: epoch, then board, then the
/// per-context sequence number.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct CausalKey {
    /// Fleet-wide logical epoch (a characterization attempt, a lifetime
    /// month, a replay round — whatever the campaign's clock is).
    pub epoch: u64,
    /// The board the event belongs to.
    pub board: u32,
    /// The emission-order sequence number within the board's telemetry
    /// context (coordinator events live in the
    /// [`COORDINATOR_SEQ_BASE`] namespace).
    pub seq: u64,
}

/// One board's events at one epoch, in emission order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct BoardStream {
    /// The logical epoch the stream was recorded at.
    pub epoch: u64,
    /// The board the stream was recorded on.
    pub board: u32,
    /// The captured events, in emission (sequence) order.
    pub events: Vec<Event>,
}

impl BoardStream {
    /// An empty stream at `(epoch, board)`.
    pub fn new(epoch: u64, board: u32) -> Self {
        BoardStream {
            epoch,
            board,
            events: Vec::new(),
        }
    }

    /// Wraps already-captured events (e.g. a `BoardOutcome`'s trace).
    pub fn from_events(epoch: u64, board: u32, events: Vec<Event>) -> Self {
        BoardStream {
            epoch,
            board,
            events,
        }
    }

    /// The causal key of one of this stream's events.
    pub fn key_of(&self, event: &Event) -> CausalKey {
        CausalKey {
            epoch: self.epoch,
            board: self.board,
            seq: event.seq,
        }
    }

    /// Number of events in the stream.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the stream recorded nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Runs `f` under a fresh capture-only telemetry context and returns its
/// result together with everything it emitted at or above `min_level`,
/// wrapped as a [`BoardStream`] at `(epoch, board)`.
///
/// The fresh context restarts the sequence counter at zero, so the
/// captured stream is a pure function of `f` — identical wherever (and
/// on whichever worker thread) it runs. The previous context is
/// restored on return.
pub fn observe<R>(
    epoch: u64,
    board: u32,
    min_level: Level,
    f: impl FnOnce() -> R,
) -> (R, BoardStream) {
    let sink = Rc::new(CaptureSink::new().with_min_level(min_level));
    let guard = Telemetry::new()
        .with_shared_sink(Rc::clone(&sink) as Rc<dyn Sink>)
        .install();
    let result = f();
    drop(guard);
    (
        result,
        BoardStream::from_events(epoch, board, sink.events()),
    )
}

/// Builds a synthetic [`BoardStream`] event by event, assigning
/// deterministic sequence numbers — for coordinators that decide things
/// about boards without running a telemetry context per decision.
#[derive(Debug)]
pub struct StreamBuilder {
    stream: BoardStream,
    next_seq: u64,
}

impl StreamBuilder {
    /// A builder whose sequence numbers start at zero — for sites that
    /// have no captured job trace to coexist with (e.g. the lifetime
    /// drift pass synthesizing per-board health events).
    pub fn synthetic(epoch: u64, board: u32) -> Self {
        StreamBuilder {
            stream: BoardStream::new(epoch, board),
            next_seq: 0,
        }
    }

    /// A builder in the coordinator sequence namespace: its events sort
    /// after every job-side event of the same `(epoch, board)`.
    pub fn coordinator(epoch: u64, board: u32) -> Self {
        StreamBuilder {
            stream: BoardStream::new(epoch, board),
            next_seq: COORDINATOR_SEQ_BASE,
        }
    }

    /// Appends one event with the next sequence number.
    pub fn push(
        &mut self,
        level: Level,
        name: &str,
        fields: Vec<(String, FieldValue)>,
    ) -> &mut Self {
        self.stream.events.push(Event {
            seq: self.next_seq,
            kind: EventKind::Event,
            level,
            target: "observatory::synthetic".to_owned(),
            name: name.to_owned(),
            span_path: Vec::new(),
            fields,
        });
        self.next_seq += 1;
        self
    }

    /// The finished stream.
    pub fn finish(self) -> BoardStream {
        self.stream
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn causal_keys_order_epoch_then_board_then_seq() {
        let a = CausalKey {
            epoch: 1,
            board: 9,
            seq: 100,
        };
        let b = CausalKey {
            epoch: 2,
            board: 0,
            seq: 0,
        };
        let c = CausalKey {
            epoch: 1,
            board: 10,
            seq: 0,
        };
        assert!(a < b);
        assert!(a < c);
        assert!(c < b);
    }

    #[test]
    fn observe_captures_a_fresh_zero_based_stream() {
        let (value, stream) = observe(3, 7, Level::Info, || {
            telemetry::event!(Level::Info, "first", k = 1u64);
            telemetry::event!(Level::Debug, "hidden");
            telemetry::event!(Level::Warn, "second");
            42u32
        });
        assert_eq!(value, 42);
        assert_eq!(stream.epoch, 3);
        assert_eq!(stream.board, 7);
        let names: Vec<&str> = stream.events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["first", "second"]);
        assert_eq!(stream.events[0].seq, 0, "fresh context restarts seq");
        assert_eq!(stream.key_of(&stream.events[1]).board, 7);
    }

    #[test]
    fn observe_is_reentrant_and_restores_the_outer_context() {
        let (inner_stream, outer_stream) = {
            let ((), outer) = observe(0, 1, Level::Trace, || {
                telemetry::event!(Level::Info, "outer_before");
                let ((), inner) = observe(0, 2, Level::Trace, || {
                    telemetry::event!(Level::Info, "inner");
                });
                telemetry::event!(Level::Info, "outer_after");
                assert_eq!(inner.len(), 1);
            });
            let ((), inner) = observe(0, 2, Level::Trace, || {
                telemetry::event!(Level::Info, "inner");
            });
            (inner, outer)
        };
        let names: Vec<&str> = outer_stream
            .events
            .iter()
            .map(|e| e.name.as_str())
            .collect();
        assert_eq!(names, vec!["outer_before", "outer_after"]);
        assert_eq!(inner_stream.events[0].seq, 0);
    }

    #[test]
    fn coordinator_streams_sort_after_job_streams() {
        let mut builder = StreamBuilder::coordinator(5, 3);
        builder.push(Level::Warn, "evicted", vec![("board".into(), 3u32.into())]);
        let stream = builder.finish();
        assert_eq!(stream.events[0].seq, COORDINATOR_SEQ_BASE);
        let job_key = CausalKey {
            epoch: 5,
            board: 3,
            seq: 999_999,
        };
        assert!(stream.key_of(&stream.events[0]) > job_key);
    }
}
