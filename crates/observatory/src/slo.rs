//! Declarative service-level objectives with multi-window burn-rate
//! alerting.
//!
//! Each [`SloMonitor`] owns one objective and is fed one value per
//! epoch. The value is converted into a *burn rate* — how fast the
//! error budget is being consumed, where `1.0` means "exactly at the
//! objective" — and evaluated over two windows: the **fast** window
//! (the current epoch's burn) catches sudden regressions, and the
//! **slow** window (the mean burn over the last
//! [`SLOW_WINDOW_EPOCHS`]) confirms they are sustained. Both windows
//! hot pages the operator; exactly one files a ticket; neither stays
//! silent. The zero-escape invariant short-circuits all of this: a
//! single escaped SDC is a page, no window smoothing applies.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Length of the slow burn-rate window, in epochs.
pub const SLOW_WINDOW_EPOCHS: usize = 10;

/// What an objective bounds and the budget it grants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SloKind {
    /// The per-epoch corrected-error rate must stay at or below the
    /// ceiling. Burn = value / ceiling.
    CeRateCeiling {
        /// Highest acceptable CE rate per epoch.
        max_per_epoch: f64,
    },
    /// Detecting an attack or fault must take no more than the bound.
    /// Burn = value / bound.
    DetectionLatencyBound {
        /// Largest acceptable detection latency, in epochs.
        max_epochs: f64,
    },
    /// The exploited guardband must keep paying: per-epoch power
    /// savings must not drop below the floor. Burn = 0 while at or
    /// above the floor, otherwise 1 plus the relative shortfall.
    PowerSavingsFloor {
        /// Lowest acceptable savings, in watts.
        min_watts: f64,
    },
    /// No silent data corruption may ever escape. Burn = the escape
    /// count itself, and any positive value pages immediately.
    ZeroEscapes,
}

/// A named objective plus its alerting thresholds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloSpec {
    /// Objective name, unique within an observatory.
    pub name: String,
    /// What is being bounded.
    pub kind: SloKind,
    /// Fast-window (1 epoch) burn threshold.
    pub fast_burn_threshold: f64,
    /// Slow-window ([`SLOW_WINDOW_EPOCHS`] epochs) burn threshold.
    pub slow_burn_threshold: f64,
}

impl SloSpec {
    /// An objective with the default thresholds (burn ≥ 1.0 on both
    /// windows pages; on exactly one, tickets).
    pub fn new(name: &str, kind: SloKind) -> Self {
        SloSpec {
            name: name.to_owned(),
            kind,
            fast_burn_threshold: 1.0,
            slow_burn_threshold: 1.0,
        }
    }

    /// A corrected-error-rate ceiling.
    pub fn ce_ceiling(name: &str, max_per_epoch: f64) -> Self {
        SloSpec::new(name, SloKind::CeRateCeiling { max_per_epoch })
    }

    /// A detection-latency bound.
    pub fn detection_latency(name: &str, max_epochs: f64) -> Self {
        SloSpec::new(name, SloKind::DetectionLatencyBound { max_epochs })
    }

    /// A power-savings floor.
    pub fn savings_floor(name: &str, min_watts: f64) -> Self {
        SloSpec::new(name, SloKind::PowerSavingsFloor { min_watts })
    }

    /// The zero-escape invariant.
    pub fn zero_escapes(name: &str) -> Self {
        SloSpec::new(name, SloKind::ZeroEscapes)
    }
}

/// How loudly an alert fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AlertSeverity {
    /// One window is hot: worth a look, not worth a wake-up.
    Ticket,
    /// Both windows are hot (or an invariant broke): act now.
    Page,
}

/// One alert raised by a monitor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloAlert {
    /// Name of the objective that fired.
    pub slo: String,
    /// Epoch the observation landed at.
    pub epoch: u64,
    /// Board the observation was scoped to, if per-board.
    pub board: Option<u32>,
    /// Ticket or page.
    pub severity: AlertSeverity,
    /// The raw observed value.
    pub value: f64,
    /// Burn rate over the fast (1-epoch) window.
    pub fast_burn: f64,
    /// Mean burn rate over the slow window.
    pub slow_burn: f64,
}

/// One objective's evaluator: feed it a value per epoch, collect
/// alerts.
#[derive(Debug, Clone)]
pub struct SloMonitor {
    spec: SloSpec,
    window: VecDeque<f64>,
}

impl SloMonitor {
    /// A monitor with an empty burn history.
    pub fn new(spec: SloSpec) -> Self {
        SloMonitor {
            spec,
            window: VecDeque::with_capacity(SLOW_WINDOW_EPOCHS),
        }
    }

    /// The objective this monitor evaluates.
    pub fn spec(&self) -> &SloSpec {
        &self.spec
    }

    fn burn(&self, value: f64) -> f64 {
        match &self.spec.kind {
            SloKind::CeRateCeiling { max_per_epoch } => value / max_per_epoch,
            SloKind::DetectionLatencyBound { max_epochs } => value / max_epochs,
            SloKind::PowerSavingsFloor { min_watts } => {
                if value >= *min_watts {
                    0.0
                } else {
                    1.0 + (min_watts - value) / min_watts
                }
            }
            SloKind::ZeroEscapes => value,
        }
    }

    /// Feeds one epoch's value; returns an alert if a window is hot.
    pub fn observe(&mut self, epoch: u64, board: Option<u32>, value: f64) -> Option<SloAlert> {
        let fast_burn = self.burn(value);
        self.window.push_back(fast_burn);
        if self.window.len() > SLOW_WINDOW_EPOCHS {
            self.window.pop_front();
        }
        let slow_burn = self.window.iter().sum::<f64>() / self.window.len() as f64;
        let severity = if matches!(self.spec.kind, SloKind::ZeroEscapes) {
            (value > 0.0).then_some(AlertSeverity::Page)
        } else {
            let fast_hot = fast_burn >= self.spec.fast_burn_threshold;
            let slow_hot = slow_burn >= self.spec.slow_burn_threshold;
            match (fast_hot, slow_hot) {
                (true, true) => Some(AlertSeverity::Page),
                (true, false) | (false, true) => Some(AlertSeverity::Ticket),
                (false, false) => None,
            }
        };
        severity.map(|severity| SloAlert {
            slo: self.spec.name.clone(),
            epoch,
            board,
            severity,
            value,
            fast_burn,
            slow_burn,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_healthy_stream_raises_nothing() {
        let mut monitor = SloMonitor::new(SloSpec::ce_ceiling("ce", 10.0));
        for epoch in 0..20 {
            assert!(monitor.observe(epoch, None, 2.0).is_none());
        }
    }

    #[test]
    fn a_spike_tickets_and_a_sustained_breach_pages() {
        let mut monitor = SloMonitor::new(SloSpec::ce_ceiling("ce", 10.0));
        for epoch in 0..SLOW_WINDOW_EPOCHS as u64 {
            assert!(monitor.observe(epoch, Some(3), 1.0).is_none());
        }
        // One hot epoch: fast window trips, slow window still cool.
        let spike = monitor.observe(10, Some(3), 40.0).expect("spike alerts");
        assert_eq!(spike.severity, AlertSeverity::Ticket);
        assert!(spike.fast_burn >= 1.0 && spike.slow_burn < 1.0);
        // Keep burning: the slow window catches up and pages.
        let mut paged = None;
        for epoch in 11..30 {
            if let Some(alert) = monitor.observe(epoch, Some(3), 40.0) {
                if alert.severity == AlertSeverity::Page {
                    paged = Some(alert);
                    break;
                }
            }
        }
        let paged = paged.expect("sustained breach pages");
        assert!(paged.slow_burn >= 1.0);
        assert_eq!(paged.board, Some(3));
    }

    #[test]
    fn the_savings_floor_burns_only_below_the_floor() {
        let mut monitor = SloMonitor::new(SloSpec::savings_floor("watts", 8.0));
        assert!(monitor.observe(0, None, 12.0).is_none());
        let alert = monitor.observe(1, None, 4.0).expect("shortfall alerts");
        assert!(alert.fast_burn > 1.0);
    }

    #[test]
    fn a_single_escape_pages_immediately() {
        let mut monitor = SloMonitor::new(SloSpec::zero_escapes("escapes"));
        for epoch in 0..5 {
            assert!(monitor.observe(epoch, None, 0.0).is_none());
        }
        let alert = monitor.observe(5, Some(0), 1.0).expect("escape pages");
        assert_eq!(alert.severity, AlertSeverity::Page);
    }

    #[test]
    fn detection_latency_over_the_bound_alerts() {
        let mut monitor = SloMonitor::new(SloSpec::detection_latency("latency", 10.0));
        assert!(monitor.observe(0, Some(1), 4.0).is_none());
        assert!(monitor.observe(1, Some(1), 14.0).is_some());
    }
}
