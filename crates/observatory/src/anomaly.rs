//! Streaming early-warning anomaly detection.
//!
//! Each `(board, metric)` pair gets a streaming EWMA baseline with an
//! exponentially weighted variance (West's recurrence). A new value is
//! scored against the baseline *before* being folded in; if its
//! z-score crosses the configured threshold in the configured
//! direction, a [`Warning`] fires and the baseline is **frozen** for
//! that observation — an ongoing excursion keeps warning instead of
//! teaching the detector that anomalous is the new normal. A short
//! warm-up window primes the baseline before any scoring happens.
//!
//! The point of this module is lead time: on the aging and attack
//! scenarios, the first `Warning` lands measurably before the circuit
//! breaker trips, while steady benign streams never warn at all.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Which side of the baseline counts as anomalous.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// Only excursions above the baseline (droop estimates, CE rates).
    High,
    /// Only excursions below the baseline (margins, savings).
    Low,
    /// Either side.
    Both,
}

/// Detector tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// EWMA smoothing factor in `(0, 1]`; higher tracks faster.
    pub alpha: f64,
    /// |z| needed to warn.
    pub z_threshold: f64,
    /// Observations used to prime the baseline before scoring starts.
    pub warmup: u32,
    /// Floor on the estimated standard deviation, so a perfectly flat
    /// warm-up (variance zero) doesn't make the first wiggle infinite.
    pub min_std: f64,
    /// Which excursions count.
    pub direction: Direction,
}

impl DetectorConfig {
    /// A conservative detector for noisy, spiky metrics.
    pub fn spike(direction: Direction) -> Self {
        DetectorConfig {
            alpha: 0.3,
            z_threshold: 4.0,
            warmup: 3,
            min_std: 1.0,
            direction,
        }
    }

    /// A sensitive detector for slow drifts (aging margins).
    pub fn drift(direction: Direction) -> Self {
        DetectorConfig {
            alpha: 0.3,
            z_threshold: 2.0,
            warmup: 2,
            min_std: 1.0,
            direction,
        }
    }
}

/// One early-warning finding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Warning {
    /// The metric stream that warned.
    pub metric: String,
    /// The board it warned on.
    pub board: u32,
    /// The epoch of the anomalous observation.
    pub epoch: u64,
    /// The observed value.
    pub value: f64,
    /// Its z-score against the pre-update baseline.
    pub zscore: f64,
}

/// One stream's EWMA baseline and scorer.
#[derive(Debug, Clone)]
pub struct EwmaDetector {
    config: DetectorConfig,
    mean: f64,
    var: f64,
    seen: u32,
}

impl EwmaDetector {
    /// A detector with an unprimed baseline.
    pub fn new(config: DetectorConfig) -> Self {
        EwmaDetector {
            config,
            mean: 0.0,
            var: 0.0,
            seen: 0,
        }
    }

    fn fold(&mut self, value: f64) {
        let delta = value - self.mean;
        self.mean += self.config.alpha * delta;
        self.var = (1.0 - self.config.alpha) * (self.var + self.config.alpha * delta * delta);
        self.seen += 1;
    }

    /// Scores `value` against the baseline; returns its z-score if it
    /// is anomalous (in which case the baseline is left frozen), else
    /// folds it into the baseline and returns `None`.
    pub fn observe(&mut self, value: f64) -> Option<f64> {
        if self.seen == 0 {
            self.mean = value;
            self.var = 0.0;
            self.seen = 1;
            return None;
        }
        if self.seen < self.config.warmup {
            self.fold(value);
            return None;
        }
        let std = self.var.sqrt().max(self.config.min_std);
        let z = (value - self.mean) / std;
        let anomalous = match self.config.direction {
            Direction::High => z >= self.config.z_threshold,
            Direction::Low => z <= -self.config.z_threshold,
            Direction::Both => z.abs() >= self.config.z_threshold,
        };
        if anomalous {
            return Some(z);
        }
        self.fold(value);
        None
    }
}

/// A fleet of detectors, one per registered metric per board, plus the
/// warnings they raised.
#[derive(Debug, Clone, Default)]
pub struct DetectorBank {
    configs: BTreeMap<String, DetectorConfig>,
    detectors: BTreeMap<(u32, String), EwmaDetector>,
    warnings: Vec<Warning>,
}

impl DetectorBank {
    /// An empty bank.
    pub fn new() -> Self {
        DetectorBank::default()
    }

    /// Registers a metric: boards observed under this name get their
    /// own detector with this config. Observations for unregistered
    /// metrics are ignored.
    pub fn register(&mut self, metric: &str, config: DetectorConfig) {
        self.configs.insert(metric.to_owned(), config);
    }

    /// Feeds one observation; records and returns a warning if the
    /// board's detector finds it anomalous.
    pub fn observe(
        &mut self,
        board: u32,
        metric: &str,
        epoch: u64,
        value: f64,
    ) -> Option<&Warning> {
        let config = *self.configs.get(metric)?;
        let detector = self
            .detectors
            .entry((board, metric.to_owned()))
            .or_insert_with(|| EwmaDetector::new(config));
        let zscore = detector.observe(value)?;
        self.warnings.push(Warning {
            metric: metric.to_owned(),
            board,
            epoch,
            value,
            zscore,
        });
        self.warnings.last()
    }

    /// Every warning raised so far, in observation order.
    pub fn warnings(&self) -> &[Warning] {
        &self.warnings
    }

    /// The earliest warning for `(board, metric)`, by observation
    /// order (callers feed epochs in order, so this is also the
    /// earliest epoch).
    pub fn first_warning(&self, board: u32, metric: &str) -> Option<&Warning> {
        self.warnings
            .iter()
            .find(|w| w.board == board && w.metric == metric)
    }

    /// Consumes the bank, yielding its warnings.
    pub fn into_warnings(self) -> Vec<Warning> {
        self.warnings
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_flat_stream_never_warns() {
        let mut bank = DetectorBank::new();
        bank.register("droop_mv", DetectorConfig::spike(Direction::High));
        for epoch in 0..50 {
            assert!(bank.observe(0, "droop_mv", epoch, 5.0).is_none());
        }
        assert!(bank.warnings().is_empty());
    }

    #[test]
    fn a_step_change_warns_and_keeps_warning_while_elevated() {
        let mut bank = DetectorBank::new();
        bank.register("droop_mv", DetectorConfig::spike(Direction::High));
        for epoch in 0..10 {
            bank.observe(4, "droop_mv", epoch, 2.0);
        }
        let first = bank.observe(4, "droop_mv", 10, 40.0).cloned();
        let first = first.expect("step warns");
        assert_eq!(first.epoch, 10);
        assert!(first.zscore >= 4.0);
        // Frozen baseline: the sustained excursion still warns.
        assert!(bank.observe(4, "droop_mv", 11, 40.0).is_some());
        assert_eq!(bank.first_warning(4, "droop_mv").unwrap().epoch, 10);
    }

    #[test]
    fn direction_low_ignores_upward_spikes() {
        let mut bank = DetectorBank::new();
        bank.register("margin_mv", DetectorConfig::drift(Direction::Low));
        for epoch in 0..10 {
            bank.observe(1, "margin_mv", epoch, 50.0);
        }
        assert!(bank.observe(1, "margin_mv", 10, 60.0).is_none());
        assert!(bank.observe(1, "margin_mv", 11, 30.0).is_some());
    }

    #[test]
    fn a_decaying_margin_warns_before_it_crosses_zero() {
        let mut bank = DetectorBank::new();
        bank.register("margin_mv", DetectorConfig::drift(Direction::Low));
        // t^0.3-style decelerating decay from 40 mV, as the silicon
        // aging model produces: big first steps, then a slow tail.
        let mut warned_at = None;
        let mut crossed_zero_at = None;
        for month in 1u64..=60 {
            let margin = 40.0 - 12.0 * (month as f64).powf(0.3);
            if margin < 0.0 && crossed_zero_at.is_none() {
                crossed_zero_at = Some(month);
            }
            if bank.observe(0, "margin_mv", month, margin).is_some() && warned_at.is_none() {
                warned_at = Some(month);
            }
        }
        let warned_at = warned_at.expect("decay warns");
        let crossed_zero_at = crossed_zero_at.expect("decay crosses zero");
        assert!(
            warned_at < crossed_zero_at,
            "warning month {warned_at} should precede failure month {crossed_zero_at}"
        );
    }

    #[test]
    fn unregistered_metrics_are_ignored() {
        let mut bank = DetectorBank::new();
        assert!(bank.observe(0, "unknown", 0, 1e9).is_none());
        assert!(bank.warnings().is_empty());
    }
}
