//! The merged fleet timeline and its Chrome `trace_event` exporter.
//!
//! [`FleetTimeline::merge`] is a *pure function of the set of input
//! streams*: events are keyed by [`CausalKey`] and sorted under a total
//! order that tie-breaks equal keys on the full event payload, so any
//! permutation of the same streams — any worker count, any completion
//! interleaving — merges to byte-identical output.

use crate::stream::{BoardStream, CausalKey};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt::Write as _;
use telemetry::event::EventKind;
use telemetry::{Event, FieldValue};

/// One event pinned to its causal coordinate in the merged timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimelineEvent {
    /// Where the event sits in the fleet-wide causal order.
    pub key: CausalKey,
    /// The event itself, exactly as captured.
    pub event: Event,
}

/// The fleet-wide merged timeline.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FleetTimeline {
    events: Vec<TimelineEvent>,
}

impl FleetTimeline {
    /// Merges per-board streams into one causally ordered timeline.
    ///
    /// The result is invariant under any permutation of `streams` and
    /// any partition of the same events into streams with the same
    /// `(epoch, board)` coordinates: the sort key is the causal key
    /// followed by a total order over the event payload (with `f64`
    /// fields compared via `total_cmp`), so there are no unstable ties.
    pub fn merge(streams: &[BoardStream]) -> Self {
        let mut events: Vec<TimelineEvent> = streams
            .iter()
            .flat_map(|stream| {
                stream.events.iter().map(|event| TimelineEvent {
                    key: stream.key_of(event),
                    event: event.clone(),
                })
            })
            .collect();
        events.sort_by(|a, b| {
            a.key
                .cmp(&b.key)
                .then_with(|| total_event_cmp(&a.event, &b.event))
        });
        FleetTimeline { events }
    }

    /// The merged events in causal order.
    pub fn events(&self) -> &[TimelineEvent] {
        &self.events
    }

    /// Number of merged events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the timeline is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Canonical JSON of the whole timeline — the byte-identity
    /// artifact compared across worker counts.
    pub fn chronicle_json(&self) -> String {
        serde::json::to_string(self)
    }

    /// Exports the timeline in Chrome `trace_event` JSON (the
    /// "JSON Array Format" with a `traceEvents` wrapper), loadable in
    /// `chrome://tracing` or Perfetto.
    ///
    /// Mapping: `pid` = board, `tid` = epoch, `ts` = the event's merged
    /// index (a deterministic pseudo-microsecond clock — the simulator
    /// has no wall time), span enter/exit become `B`/`E` duration
    /// events and point events become thread-scoped instants (`i`).
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        for (index, te) in self.events.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            let ph = match te.event.kind {
                EventKind::SpanEnter => "B",
                EventKind::SpanExit => "E",
                EventKind::Event => "i",
            };
            let _ = write!(
                out,
                "{{\"name\":{},\"ph\":\"{}\",\"ts\":{},\"pid\":{},\"tid\":{}",
                json_string(&te.event.name),
                ph,
                index,
                te.key.board,
                te.key.epoch
            );
            if te.event.kind == EventKind::Event {
                out.push_str(",\"s\":\"t\"");
            }
            let _ = write!(
                out,
                ",\"args\":{{\"level\":{},\"seq\":{}",
                json_string(te.event.level.label().trim_end()),
                te.key.seq
            );
            for (name, value) in &te.event.fields {
                let _ = write!(out, ",{}:{}", json_string(name), field_json(value));
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }
}

/// A total order over event payloads, used only to tie-break events
/// whose causal keys collide (e.g. two synthetic streams at the same
/// coordinate). Any total order works for determinism; this one is
/// roughly "most significant field first".
fn total_event_cmp(a: &Event, b: &Event) -> Ordering {
    kind_rank(a.kind)
        .cmp(&kind_rank(b.kind))
        .then_with(|| a.level.cmp(&b.level))
        .then_with(|| a.target.cmp(&b.target))
        .then_with(|| a.name.cmp(&b.name))
        .then_with(|| a.span_path.cmp(&b.span_path))
        .then_with(|| fields_cmp(&a.fields, &b.fields))
}

fn kind_rank(kind: EventKind) -> u8 {
    match kind {
        EventKind::SpanEnter => 0,
        EventKind::Event => 1,
        EventKind::SpanExit => 2,
    }
}

fn fields_cmp(a: &[(String, FieldValue)], b: &[(String, FieldValue)]) -> Ordering {
    for ((ka, va), (kb, vb)) in a.iter().zip(b.iter()) {
        let ord = ka.cmp(kb).then_with(|| field_value_cmp(va, vb));
        if ord != Ordering::Equal {
            return ord;
        }
    }
    a.len().cmp(&b.len())
}

fn field_value_cmp(a: &FieldValue, b: &FieldValue) -> Ordering {
    fn rank(v: &FieldValue) -> u8 {
        match v {
            FieldValue::Bool(_) => 0,
            FieldValue::U64(_) => 1,
            FieldValue::I64(_) => 2,
            FieldValue::F64(_) => 3,
            FieldValue::Str(_) => 4,
        }
    }
    match (a, b) {
        (FieldValue::Bool(x), FieldValue::Bool(y)) => x.cmp(y),
        (FieldValue::U64(x), FieldValue::U64(y)) => x.cmp(y),
        (FieldValue::I64(x), FieldValue::I64(y)) => x.cmp(y),
        (FieldValue::F64(x), FieldValue::F64(y)) => x.total_cmp(y),
        (FieldValue::Str(x), FieldValue::Str(y)) => x.cmp(y),
        _ => rank(a).cmp(&rank(b)),
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn field_json(value: &FieldValue) -> String {
    match value {
        FieldValue::Bool(b) => b.to_string(),
        FieldValue::U64(u) => u.to_string(),
        FieldValue::I64(i) => i.to_string(),
        FieldValue::F64(f) if f.is_finite() => format!("{f}"),
        FieldValue::F64(f) => json_string(&f.to_string()),
        FieldValue::Str(s) => json_string(s),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::StreamBuilder;
    use telemetry::Level;

    fn sample_streams() -> Vec<BoardStream> {
        let mut b0 = StreamBuilder::synthetic(1, 0);
        b0.push(Level::Info, "alpha", vec![("v".into(), 1u64.into())]);
        b0.push(Level::Warn, "beta", vec![("v".into(), 2u64.into())]);
        let mut b1 = StreamBuilder::synthetic(0, 1);
        b1.push(Level::Info, "gamma", vec![("f".into(), 1.5f64.into())]);
        let mut coord = StreamBuilder::coordinator(1, 0);
        coord.push(Level::Warn, "evicted", vec![]);
        vec![b0.finish(), b1.finish(), coord.finish()]
    }

    #[test]
    fn merge_orders_by_causal_key() {
        let timeline = FleetTimeline::merge(&sample_streams());
        let names: Vec<&str> = timeline
            .events()
            .iter()
            .map(|te| te.event.name.as_str())
            .collect();
        assert_eq!(names, vec!["gamma", "alpha", "beta", "evicted"]);
    }

    #[test]
    fn merge_is_permutation_invariant() {
        let streams = sample_streams();
        let forward = FleetTimeline::merge(&streams).chronicle_json();
        let mut reversed = streams;
        reversed.reverse();
        let backward = FleetTimeline::merge(&reversed).chronicle_json();
        assert_eq!(forward, backward);
    }

    #[test]
    fn chrome_trace_is_well_formed() {
        let timeline = FleetTimeline::merge(&sample_streams());
        let trace = timeline.to_chrome_trace();
        assert!(trace.starts_with("{\"traceEvents\":["));
        assert!(trace.ends_with("]}"));
        assert!(trace.contains("\"ph\":\"i\""));
        assert!(trace.contains("\"pid\":1"));
        assert!(trace.contains("\"f\":1.5"));
        // Quotes and backslashes in names must be escaped.
        let mut tricky = StreamBuilder::synthetic(0, 0);
        tricky.push(Level::Info, "quote\"back\\slash", vec![]);
        let trace = FleetTimeline::merge(&[tricky.finish()]).to_chrome_trace();
        assert!(trace.contains("quote\\\"back\\\\slash"));
    }
}
