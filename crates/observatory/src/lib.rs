//! Fleet-wide observability for exploited-guardband campaigns.
//!
//! The campaigns in this workspace run per-board jobs on worker pools,
//! and each job's telemetry dies in its own thread-local context. This
//! crate is the layer that puts the pieces back together,
//! deterministically:
//!
//! - [`stream`] — per-board event streams pinned to a Lamport-style
//!   `(epoch, board, seq)` [`CausalKey`], captured with [`observe`] or
//!   synthesized with [`StreamBuilder`];
//! - [`timeline`] — [`FleetTimeline::merge`] folds any number of
//!   streams into one causally ordered timeline, byte-identical across
//!   1/2/4/8 workers, with a Chrome `trace_event` exporter;
//! - [`incident`] — [`reconstruct`] turns trigger events plus
//!   [`FlightDump`]s into structured [`Incident`] postmortems;
//! - [`slo`] — declarative objectives evaluated per epoch with
//!   fast/slow multi-window burn-rate alerting;
//! - [`anomaly`] — streaming EWMA z-score detectors that warn about
//!   decaying margins and rising droops *before* the breakers trip.
//!
//! [`Observatory`] is the assembly point: campaigns feed it streams,
//! dumps, SLO observations, and detector samples as they run, then
//! [`Observatory::finish`] produces an [`ObservatoryReport`] — the
//! merged timeline, the reconstructed incidents, the alerts, and the
//! early warnings, all serializable and all deterministic.

#![warn(missing_docs)]

pub mod anomaly;
pub mod incident;
pub mod slo;
pub mod stream;
pub mod timeline;

pub use anomaly::{DetectorBank, DetectorConfig, Direction, EwmaDetector, Warning};
pub use incident::{reconstruct, render_incidents, Incident, IncidentKind, Resolution};
pub use slo::{AlertSeverity, SloAlert, SloKind, SloMonitor, SloSpec, SLOW_WINDOW_EPOCHS};
pub use stream::{observe, BoardStream, CausalKey, StreamBuilder, COORDINATOR_SEQ_BASE};
pub use timeline::{FleetTimeline, TimelineEvent};

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use telemetry::FlightDump;

/// The assembly point campaigns feed while they run.
#[derive(Debug, Default)]
pub struct Observatory {
    streams: Vec<BoardStream>,
    dumps: Vec<(CausalKey, FlightDump)>,
    monitors: Vec<SloMonitor>,
    alerts: Vec<SloAlert>,
    bank: DetectorBank,
}

impl Observatory {
    /// An empty observatory with no objectives or detectors.
    pub fn new() -> Self {
        Observatory::default()
    }

    /// Declares an objective; observations are fed to it by name via
    /// [`Observatory::slo_observe`].
    pub fn add_slo(&mut self, spec: SloSpec) {
        self.monitors.push(SloMonitor::new(spec));
    }

    /// Registers an anomaly-detector metric; samples are fed via
    /// [`Observatory::detect`].
    pub fn add_detector(&mut self, metric: &str, config: DetectorConfig) {
        self.bank.register(metric, config);
    }

    /// Ingests one board's event stream.
    pub fn ingest_stream(&mut self, stream: BoardStream) {
        self.streams.push(stream);
    }

    /// Ingests flight dumps taken at `(epoch, board)`; each dump is
    /// keyed by its trigger event's sequence number so the incident
    /// reconstructor can attach it to the matching trigger.
    pub fn ingest_dumps(&mut self, epoch: u64, board: u32, dumps: Vec<FlightDump>) {
        for dump in dumps {
            let key = CausalKey {
                epoch,
                board,
                seq: dump.trigger_seq,
            };
            self.dumps.push((key, dump));
        }
    }

    /// Feeds one epoch's value to the named objective.
    ///
    /// # Panics
    /// Panics if no objective with that name was declared — a
    /// misspelled SLO silently observing nothing is a bug.
    pub fn slo_observe(&mut self, name: &str, epoch: u64, board: Option<u32>, value: f64) {
        let monitor = self
            .monitors
            .iter_mut()
            .find(|m| m.spec().name == name)
            .unwrap_or_else(|| panic!("no SLO named `{name}` declared"));
        if let Some(alert) = monitor.observe(epoch, board, value) {
            self.alerts.push(alert);
        }
    }

    /// Feeds one sample to the board's detector for `metric`.
    pub fn detect(&mut self, board: u32, metric: &str, epoch: u64, value: f64) {
        self.bank.observe(board, metric, epoch, value);
    }

    /// The earliest warning raised for `(board, metric)` so far.
    pub fn first_warning(&self, board: u32, metric: &str) -> Option<&Warning> {
        self.bank.first_warning(board, metric)
    }

    /// Merges the streams ingested so far (non-consuming; useful for
    /// progress inspection).
    pub fn timeline(&self) -> FleetTimeline {
        FleetTimeline::merge(&self.streams)
    }

    /// Merges, reconstructs, and seals everything into a report.
    pub fn finish(self) -> ObservatoryReport {
        let timeline = FleetTimeline::merge(&self.streams);
        let incidents = reconstruct(&timeline, &self.dumps);
        ObservatoryReport {
            timeline,
            incidents,
            alerts: self.alerts,
            warnings: self.bank.into_warnings(),
        }
    }
}

/// Everything the observatory distilled from one campaign.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ObservatoryReport {
    /// The merged fleet timeline.
    pub timeline: FleetTimeline,
    /// Reconstructed incidents, in causal order.
    pub incidents: Vec<Incident>,
    /// SLO alerts, in observation order.
    pub alerts: Vec<SloAlert>,
    /// Early warnings, in observation order.
    pub warnings: Vec<Warning>,
}

impl ObservatoryReport {
    /// Canonical JSON of the whole report — the byte-identity artifact
    /// compared across worker counts.
    pub fn chronicle_json(&self) -> String {
        serde::json::to_string(self)
    }

    /// The earliest warning for `(board, metric)`.
    pub fn first_warning(&self, board: u32, metric: &str) -> Option<&Warning> {
        self.warnings
            .iter()
            .find(|w| w.board == board && w.metric == metric)
    }

    /// Incidents of one kind.
    pub fn incidents_of(&self, kind: IncidentKind) -> impl Iterator<Item = &Incident> {
        self.incidents.iter().filter(move |i| i.kind == kind)
    }

    /// Renders the headline numbers plus the incident timeline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let pages = self
            .alerts
            .iter()
            .filter(|a| a.severity == AlertSeverity::Page)
            .count();
        let _ = writeln!(
            out,
            "observatory: {} events merged, {} incidents, {} alerts ({} pages), {} early warnings",
            self.timeline.len(),
            self.incidents.len(),
            self.alerts.len(),
            pages,
            self.warnings.len()
        );
        out.push_str(&render_incidents(&self.incidents));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use telemetry::Level;

    #[test]
    fn the_full_pipeline_produces_a_deterministic_report() {
        let build = || {
            let mut obs = Observatory::new();
            obs.add_slo(SloSpec::zero_escapes("no-escapes"));
            obs.add_detector("droop_mv", DetectorConfig::spike(Direction::High));
            for board in [1u32, 0] {
                let mut builder = StreamBuilder::synthetic(0, board);
                builder.push(Level::Info, "boot", vec![]);
                if board == 1 {
                    builder.push(Level::Warn, "refresh_rollback", vec![]);
                }
                obs.ingest_stream(builder.finish());
                obs.slo_observe("no-escapes", 0, Some(board), 0.0);
                for epoch in 0..8 {
                    obs.detect(board, "droop_mv", epoch, 3.0);
                }
                obs.detect(board, "droop_mv", 8, if board == 1 { 90.0 } else { 3.0 });
            }
            obs.finish()
        };
        let a = build();
        let b = build();
        assert_eq!(a.chronicle_json(), b.chronicle_json());
        assert_eq!(a.incidents.len(), 1);
        assert_eq!(a.incidents[0].kind, IncidentKind::BreakerTrip);
        assert!(a.alerts.is_empty());
        assert_eq!(a.warnings.len(), 1);
        assert_eq!(a.first_warning(1, "droop_mv").unwrap().epoch, 8);
        assert!(a.first_warning(0, "droop_mv").is_none());
        assert!(a.render().contains("breaker-trip"));
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut obs = Observatory::new();
        obs.add_slo(SloSpec::zero_escapes("no-escapes"));
        let mut builder = StreamBuilder::synthetic(2, 5);
        builder.push(
            Level::Error,
            "quarantine",
            vec![("resets".into(), 3u64.into())],
        );
        obs.ingest_stream(builder.finish());
        obs.slo_observe("no-escapes", 2, Some(5), 1.0);
        let report = obs.finish();
        let json = report.chronicle_json();
        let back: ObservatoryReport = serde::json::from_str(&json).expect("round trip");
        assert_eq!(back, report);
    }

    #[test]
    #[should_panic(expected = "no SLO named")]
    fn observing_an_undeclared_slo_panics() {
        Observatory::new().slo_observe("nope", 0, None, 1.0);
    }
}
