//! Incident postmortems reconstructed from the merged timeline plus
//! flight-recorder dumps.
//!
//! The reconstructor walks the fleet timeline once, promotes every
//! trigger-class event (breaker trip, quarantine, attacker
//! quarantine, board eviction, production SDC) to a structured
//! [`Incident`], then enriches each incident with the causally
//! preceding evidence on the same board, the matching
//! [`FlightDump`], the detection latency when
//! the trigger carries one, and the resolution visible later in the
//! timeline. The output replaces hand-reading flight-recorder dumps
//! after a failed campaign.

use crate::stream::CausalKey;
use crate::timeline::{FleetTimeline, TimelineEvent};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use telemetry::{FieldValue, FlightDump};

/// Taxonomy of reconstructable incidents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IncidentKind {
    /// A circuit breaker opened (a campaign breaker trip or a DRAM
    /// refresh rollback forced by the breaker).
    BreakerTrip,
    /// A characterization setup was quarantined after repeated
    /// watchdog resets.
    SetupQuarantine,
    /// The safety net attributed a droop to a co-tenant and evicted
    /// the attacker.
    AttackerQuarantine,
    /// The fleet coordinator evicted a board from further walking and
    /// requeued it with a raised floor.
    BoardEviction,
    /// Silent data corruption escaped into production (the lifetime
    /// harness's worst case).
    ProductionSdc,
    /// The orchestration layer itself was disrupted — a coordinator
    /// kill, a worker death mid-job, or a duplicated queue delivery
    /// (the chaos harness's injected faults).
    ChaosDisruption,
    /// Serialized fleet state failed integrity verification: a torn or
    /// bit-flipped checkpoint was rejected, or journal replay found a
    /// damaged tail.
    CheckpointCorruption,
    /// The economic dispatcher let a request blow its latency deadline
    /// on some board (a queue backed up past the QoS budget).
    QosViolation,
    /// The dispatcher drained a board's traffic ahead of a maintenance
    /// window or around a failure, re-routing its load to the rest of
    /// the fleet.
    TrafficDrain,
}

impl IncidentKind {
    /// Human label used in rendered timelines.
    pub fn label(self) -> &'static str {
        match self {
            IncidentKind::BreakerTrip => "breaker-trip",
            IncidentKind::SetupQuarantine => "setup-quarantine",
            IncidentKind::AttackerQuarantine => "attacker-quarantine",
            IncidentKind::BoardEviction => "board-eviction",
            IncidentKind::ProductionSdc => "production-sdc",
            IncidentKind::ChaosDisruption => "chaos-disruption",
            IncidentKind::CheckpointCorruption => "checkpoint-corruption",
            IncidentKind::QosViolation => "qos-violation",
            IncidentKind::TrafficDrain => "traffic-drain",
        }
    }

    fn of_event_name(name: &str) -> Option<Self> {
        match name {
            "campaign_breaker_trip" | "refresh_rollback" => Some(IncidentKind::BreakerTrip),
            "quarantine" => Some(IncidentKind::SetupQuarantine),
            "attacker_quarantined" => Some(IncidentKind::AttackerQuarantine),
            "fleet_board_evicted" => Some(IncidentKind::BoardEviction),
            "production_sdc" => Some(IncidentKind::ProductionSdc),
            "chaos_coordinator_killed" | "chaos_worker_died" | "chaos_duplicate_delivery" => {
                Some(IncidentKind::ChaosDisruption)
            }
            "chaos_corrupt_checkpoint" | "chaos_journal_damage" => {
                Some(IncidentKind::CheckpointCorruption)
            }
            "dispatch_qos_violation" => Some(IncidentKind::QosViolation),
            "dispatch_drain" => Some(IncidentKind::TrafficDrain),
            _ => None,
        }
    }
}

/// How an incident ended, as far as the timeline shows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Resolution {
    /// The board was requeued with a raised floor and retried.
    Requeued,
    /// The setup was abandoned for the rest of the campaign.
    SetupAbandoned,
    /// The attacking co-tenant was evicted; the victim kept running.
    AttackerEvicted,
    /// The rolled-back refresh interval was later restored.
    Restored,
    /// The disrupted campaign recovered: a later `fleet_recovered`
    /// event shows the restarted coordinator resumed from its journal.
    Recovered,
    /// No resolution event appears in the timeline.
    Unresolved,
}

impl Resolution {
    /// Human label used in rendered timelines.
    pub fn label(self) -> &'static str {
        match self {
            Resolution::Requeued => "requeued",
            Resolution::SetupAbandoned => "setup-abandoned",
            Resolution::AttackerEvicted => "attacker-evicted",
            Resolution::Restored => "restored",
            Resolution::Recovered => "recovered",
            Resolution::Unresolved => "unresolved",
        }
    }
}

/// One reconstructed incident.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Incident {
    /// What happened.
    pub kind: IncidentKind,
    /// The board it happened on.
    pub board: u32,
    /// The epoch of the trigger event.
    pub trigger_epoch: u64,
    /// The sequence number of the trigger event (with
    /// `trigger_epoch`/`board`, the trigger's full causal key).
    pub trigger_seq: u64,
    /// Epochs between the condition arising and its detection, when
    /// the trigger carries enough information to compute it.
    pub detection_latency_epochs: Option<u64>,
    /// Rendered evidence lines: the causally preceding events on the
    /// same board and any matching flight dump.
    pub evidence: Vec<String>,
    /// How it ended.
    pub resolution: Resolution,
}

/// Event names that count as evidence when they precede a trigger on
/// the same board.
const EVIDENCE_NAMES: [&str; 10] = [
    "attack_epoch",
    "crash_retry",
    "watchdog_reset",
    "sentinel_cadence_tightened",
    "board_health",
    "campaign_breaker_trip",
    "refresh_rollback",
    "chaos_worker_died",
    "chaos_journal_damage",
    "dispatch_drain",
];

/// Most recent evidence lines attached per incident.
const MAX_EVIDENCE_LINES: usize = 3;

/// Reconstructs every incident in the timeline, in causal order.
///
/// `dumps` pairs each [`FlightDump`] with the causal key of its
/// trigger event; a dump is attached to the incident whose trigger
/// has the same key.
pub fn reconstruct(timeline: &FleetTimeline, dumps: &[(CausalKey, FlightDump)]) -> Vec<Incident> {
    let events = timeline.events();
    let mut incidents = Vec::new();
    for (index, te) in events.iter().enumerate() {
        let Some(kind) = IncidentKind::of_event_name(&te.event.name) else {
            continue;
        };
        let mut evidence = collect_evidence(events, index, te.key.board);
        for (key, dump) in dumps {
            if *key == te.key {
                evidence.push(format!(
                    "flight dump `{}`: {} events retained up to the trigger",
                    dump.trigger_name,
                    dump.events.len()
                ));
            }
        }
        incidents.push(Incident {
            kind,
            board: te.key.board,
            trigger_epoch: te.key.epoch,
            trigger_seq: te.key.seq,
            detection_latency_epochs: detection_latency(kind, events, index),
            evidence,
            resolution: resolution(kind, events, index),
        });
    }
    incidents
}

fn field_u64(te: &TimelineEvent, name: &str) -> Option<u64> {
    te.event.fields.iter().find_map(|(k, v)| {
        if k != name {
            return None;
        }
        match v {
            FieldValue::U64(u) => Some(*u),
            FieldValue::I64(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    })
}

fn field_bool(te: &TimelineEvent, name: &str) -> Option<bool> {
    te.event.fields.iter().find_map(|(k, v)| match v {
        FieldValue::Bool(b) if k == name => Some(*b),
        _ => None,
    })
}

/// Walks backward from the trigger collecting the most recent
/// evidence-class events on the same board, returned in causal order.
fn collect_evidence(events: &[TimelineEvent], index: usize, board: u32) -> Vec<String> {
    let mut lines = Vec::new();
    for te in events[..index].iter().rev() {
        if te.key.board != board {
            continue;
        }
        if !EVIDENCE_NAMES.contains(&te.event.name.as_str()) {
            continue;
        }
        let mut line = format!(
            "epoch {:>4} seq {:>3}: {}",
            te.key.epoch,
            te.key.seq.min(999),
            te.event.name
        );
        for (name, value) in &te.event.fields {
            let _ = write!(line, " {name}={value}");
        }
        lines.push(line);
        if lines.len() == MAX_EVIDENCE_LINES {
            break;
        }
    }
    lines.reverse();
    lines
}

fn detection_latency(kind: IncidentKind, events: &[TimelineEvent], index: usize) -> Option<u64> {
    let te = &events[index];
    match kind {
        IncidentKind::AttackerQuarantine => {
            // The net stamps the quarantine with the epoch it acted at;
            // the attack's onset is the first `attack_epoch` evidence
            // event on this board with `attack_active` set.
            let detected_at = field_u64(te, "epoch")?;
            let onset = events[..index]
                .iter()
                .filter(|e| e.key.board == te.key.board && e.event.name == "attack_epoch")
                .find(|e| field_bool(e, "attack_active") == Some(true))
                .and_then(|e| field_u64(e, "epoch"))?;
            Some(detected_at.saturating_sub(onset) + 1)
        }
        IncidentKind::ProductionSdc => field_u64(te, "months_since"),
        _ => None,
    }
}

fn resolution(kind: IncidentKind, events: &[TimelineEvent], index: usize) -> Resolution {
    let te = &events[index];
    match kind {
        IncidentKind::AttackerQuarantine => Resolution::AttackerEvicted,
        IncidentKind::SetupQuarantine => Resolution::SetupAbandoned,
        IncidentKind::BoardEviction => Resolution::Requeued,
        IncidentKind::BreakerTrip => {
            let restored = events[index + 1..].iter().any(|later| {
                later.key.board == te.key.board && later.event.name == "refresh_restore"
            });
            if restored {
                Resolution::Restored
            } else {
                Resolution::Unresolved
            }
        }
        IncidentKind::ProductionSdc => Resolution::Unresolved,
        IncidentKind::QosViolation => {
            let recovered = events[index + 1..].iter().any(|later| {
                later.key.board == te.key.board && later.event.name == "dispatch_qos_recovered"
            });
            if recovered {
                Resolution::Recovered
            } else {
                Resolution::Unresolved
            }
        }
        IncidentKind::TrafficDrain => {
            let resumed = events[index + 1..].iter().any(|later| {
                later.key.board == te.key.board && later.event.name == "dispatch_resumed"
            });
            if resumed {
                Resolution::Recovered
            } else {
                Resolution::Unresolved
            }
        }
        IncidentKind::ChaosDisruption | IncidentKind::CheckpointCorruption => {
            let recovered = events[index + 1..].iter().any(|later| {
                later.key.board == te.key.board && later.event.name == "fleet_recovered"
            });
            if recovered {
                Resolution::Recovered
            } else {
                Resolution::Unresolved
            }
        }
    }
}

/// Renders incidents as a human postmortem timeline.
pub fn render_incidents(incidents: &[Incident]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== fleet incident timeline: {} incident{} ==",
        incidents.len(),
        if incidents.len() == 1 { "" } else { "s" }
    );
    for incident in incidents {
        let latency = match incident.detection_latency_epochs {
            Some(epochs) => format!("  detected in {epochs} epoch{}", plural(epochs)),
            None => String::new(),
        };
        let _ = writeln!(
            out,
            "[epoch {:>4} | board {:>3}] {:<19}{}  resolution: {}",
            incident.trigger_epoch,
            incident.board,
            incident.kind.label(),
            latency,
            incident.resolution.label()
        );
        for line in &incident.evidence {
            let _ = writeln!(out, "    · {line}");
        }
    }
    out
}

fn plural(n: u64) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::StreamBuilder;
    use telemetry::Level;

    fn attack_timeline() -> FleetTimeline {
        let mut stream = StreamBuilder::synthetic(0, 2);
        for epoch in 1..=4u64 {
            stream.push(
                Level::Debug,
                "attack_epoch",
                vec![
                    ("epoch".into(), epoch.into()),
                    ("attack_active".into(), (epoch >= 2).into()),
                ],
            );
        }
        stream.push(
            Level::Warn,
            "attacker_quarantined",
            vec![("epoch".into(), 4u64.into())],
        );
        FleetTimeline::merge(&[stream.finish()])
    }

    #[test]
    fn an_attacker_quarantine_gets_kind_latency_and_evidence() {
        let incidents = reconstruct(&attack_timeline(), &[]);
        assert_eq!(incidents.len(), 1);
        let incident = &incidents[0];
        assert_eq!(incident.kind, IncidentKind::AttackerQuarantine);
        assert_eq!(incident.board, 2);
        // Attack active from epoch 2, detected at epoch 4: 3 epochs.
        assert_eq!(incident.detection_latency_epochs, Some(3));
        assert_eq!(incident.resolution, Resolution::AttackerEvicted);
        assert!(incident.evidence.iter().all(|l| l.contains("attack_epoch")));
        assert_eq!(incident.evidence.len(), MAX_EVIDENCE_LINES);
    }

    #[test]
    fn a_rolled_back_refresh_resolves_as_restored() {
        let mut stream = StreamBuilder::synthetic(7, 0);
        stream.push(Level::Warn, "refresh_rollback", vec![]);
        stream.push(Level::Info, "refresh_restore", vec![]);
        let timeline = FleetTimeline::merge(&[stream.finish()]);
        let incidents = reconstruct(&timeline, &[]);
        assert_eq!(incidents.len(), 1);
        assert_eq!(incidents[0].kind, IncidentKind::BreakerTrip);
        assert_eq!(incidents[0].resolution, Resolution::Restored);
    }

    #[test]
    fn a_recovered_chaos_disruption_resolves_as_recovered() {
        let mut stream = StreamBuilder::synthetic(3, 0);
        stream.push(
            Level::Warn,
            "chaos_worker_died",
            vec![("worker".into(), 1u64.into())],
        );
        stream.push(Level::Warn, "chaos_coordinator_killed", vec![]);
        stream.push(Level::Warn, "chaos_corrupt_checkpoint", vec![]);
        stream.push(Level::Info, "fleet_recovered", vec![]);
        let timeline = FleetTimeline::merge(&[stream.finish()]);
        let incidents = reconstruct(&timeline, &[]);
        assert_eq!(incidents.len(), 3);
        assert_eq!(incidents[0].kind, IncidentKind::ChaosDisruption);
        assert_eq!(incidents[1].kind, IncidentKind::ChaosDisruption);
        assert_eq!(incidents[2].kind, IncidentKind::CheckpointCorruption);
        for incident in &incidents {
            assert_eq!(incident.resolution, Resolution::Recovered);
        }
        // The earlier worker death is evidence for the later kill.
        assert!(incidents[1]
            .evidence
            .iter()
            .any(|l| l.contains("chaos_worker_died")));
    }

    #[test]
    fn dispatch_incidents_resolve_on_recovery_events() {
        // A drain ahead of a maintenance window, later resumed; a QoS
        // violation on the same board, later recovered. The drain is
        // evidence for the violation that follows it.
        let mut stream = StreamBuilder::synthetic(2, 9);
        stream.push(
            Level::Warn,
            "dispatch_drain",
            vec![("reason".into(), "maintenance".into())],
        );
        stream.push(
            Level::Error,
            "dispatch_qos_violation",
            vec![("latency_us".into(), 150_000u64.into())],
        );
        stream.push(Level::Info, "dispatch_qos_recovered", vec![]);
        stream.push(Level::Info, "dispatch_resumed", vec![]);
        let timeline = FleetTimeline::merge(&[stream.finish()]);
        let incidents = reconstruct(&timeline, &[]);
        assert_eq!(incidents.len(), 2);
        assert_eq!(incidents[0].kind, IncidentKind::TrafficDrain);
        assert_eq!(incidents[0].resolution, Resolution::Recovered);
        assert_eq!(incidents[1].kind, IncidentKind::QosViolation);
        assert_eq!(incidents[1].resolution, Resolution::Recovered);
        assert!(incidents[1]
            .evidence
            .iter()
            .any(|l| l.contains("dispatch_drain")));
    }

    #[test]
    fn an_unresumed_drain_stays_unresolved() {
        let mut stream = StreamBuilder::synthetic(1, 3);
        stream.push(Level::Warn, "dispatch_drain", vec![]);
        stream.push(Level::Error, "dispatch_qos_violation", vec![]);
        let timeline = FleetTimeline::merge(&[stream.finish()]);
        let incidents = reconstruct(&timeline, &[]);
        assert_eq!(incidents.len(), 2);
        for incident in &incidents {
            assert_eq!(incident.resolution, Resolution::Unresolved);
        }
        let rendered = render_incidents(&incidents);
        assert!(rendered.contains("traffic-drain"));
        assert!(rendered.contains("qos-violation"));
    }

    #[test]
    fn an_unrecovered_disruption_stays_unresolved() {
        let mut stream = StreamBuilder::synthetic(1, 5);
        stream.push(Level::Warn, "chaos_coordinator_killed", vec![]);
        let timeline = FleetTimeline::merge(&[stream.finish()]);
        let incidents = reconstruct(&timeline, &[]);
        assert_eq!(incidents.len(), 1);
        assert_eq!(incidents[0].resolution, Resolution::Unresolved);
    }

    #[test]
    fn dumps_attach_by_causal_key() {
        let timeline = attack_timeline();
        let trigger = timeline
            .events()
            .iter()
            .find(|te| te.event.name == "attacker_quarantined")
            .expect("trigger present");
        let dump = FlightDump {
            trigger_seq: trigger.event.seq,
            trigger_name: "attacker_quarantined".into(),
            events: vec![trigger.event.clone()],
        };
        let incidents = reconstruct(&timeline, &[(trigger.key, dump)]);
        assert!(incidents[0]
            .evidence
            .iter()
            .any(|l| l.contains("flight dump `attacker_quarantined`")));
    }

    #[test]
    fn rendering_mentions_every_incident() {
        let rendered = render_incidents(&reconstruct(&attack_timeline(), &[]));
        assert!(rendered.contains("attacker-quarantine"));
        assert!(rendered.contains("board   2"));
        assert!(rendered.contains("detected in 3 epochs"));
    }
}
