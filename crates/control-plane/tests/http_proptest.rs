//! Property tests for the HTTP/1.1 parser: for *any* byte sequence the
//! parser terminates without panicking and classifies the input as
//! incomplete, complete, or a typed error mapping to a 4xx/5xx close —
//! the contract the serving loop relies on to survive hostile clients.

use control_plane::http::{parse_request, Limits, Method, Parsed};
use proptest::prelude::*;

/// A generator for syntactically valid requests, assembled from parts
/// so properties can assert against the known ground truth.
#[derive(Debug, Clone)]
struct ValidRequest {
    method: String,
    target: String,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl ValidRequest {
    fn encode(&self) -> Vec<u8> {
        let mut out = format!("{} {} HTTP/1.1\r\n", self.method, self.target).into_bytes();
        for (name, value) in &self.headers {
            out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
        }
        if !self.body.is_empty() {
            out.extend_from_slice(format!("content-length: {}\r\n", self.body.len()).as_bytes());
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        out
    }
}

fn arb_token() -> impl Strategy<Value = String> {
    proptest::collection::vec(97u8..123, 1..8)
        .prop_map(|bytes| String::from_utf8(bytes).expect("lowercase ascii"))
}

fn arb_valid_request() -> impl Strategy<Value = ValidRequest> {
    (
        prop_oneof![
            Just("GET".to_owned()),
            Just("POST".to_owned()),
            Just("DELETE".to_owned()),
        ],
        proptest::collection::vec(arb_token(), 0..4),
        proptest::collection::vec((arb_token(), arb_token()), 0..5),
        proptest::collection::vec(any::<u8>(), 0..64),
    )
        .prop_map(|(method, segments, headers, body)| ValidRequest {
            method,
            target: format!("/{}", segments.join("/")),
            headers,
            body,
        })
}

proptest! {
    /// Arbitrary bytes: the parser returns — it never panics, loops or
    /// overflows, whatever the input.
    #[test]
    fn arbitrary_bytes_never_panic(
        bytes in proptest::collection::vec(any::<u8>(), 0..2048),
    ) {
        let _ = parse_request(&bytes, &Limits::default());
    }

    /// Arbitrary bytes under hostile-small limits: still total, and
    /// every error carries a 4xx/5xx close status.
    #[test]
    fn tight_limits_yield_typed_errors(
        bytes in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let limits = Limits {
            max_request_line: 16,
            max_headers: 2,
            max_header_line: 16,
            max_body: 8,
        };
        if let Err(err) = parse_request(&bytes, &limits) {
            let status = err.status();
            prop_assert!((400..=505).contains(&status), "status {status}");
        }
    }

    /// Torn reads: every strict prefix of a valid request is either
    /// `Incomplete` (read more) or already an error the full message
    /// also produces — a prefix never parses as a bogus complete
    /// request.
    #[test]
    fn every_prefix_of_a_valid_request_is_incomplete(
        request in arb_valid_request(),
    ) {
        let bytes = request.encode();
        for cut in 0..bytes.len() {
            match parse_request(&bytes[..cut], &Limits::default()) {
                Ok(Parsed::Incomplete) => {}
                Ok(Parsed::Complete { .. }) => {
                    prop_assert!(false, "prefix {cut}/{} parsed complete", bytes.len());
                }
                Err(err) => {
                    prop_assert!(false, "valid prefix {cut} errored: {err}");
                }
            }
        }
        match parse_request(&bytes, &Limits::default()).expect("valid request parses") {
            Parsed::Complete { request: parsed, consumed } => {
                prop_assert_eq!(consumed, bytes.len());
                prop_assert_eq!(parsed.body, request.body);
                prop_assert_eq!(parsed.target, request.target);
                match (&parsed.method, request.method.as_str()) {
                    (Method::Get, "GET") | (Method::Post, "POST") => {}
                    (Method::Other(m), other) => prop_assert_eq!(m.as_str(), other),
                    (got, want) => prop_assert!(false, "method {got:?} != {want}"),
                }
            }
            Parsed::Incomplete => prop_assert!(false, "full request stayed incomplete"),
        }
    }

    /// Pipelining: two concatenated requests parse back-to-back, each
    /// consuming exactly its own bytes.
    #[test]
    fn pipelined_requests_split_exactly(
        first in arb_valid_request(),
        second in arb_valid_request(),
    ) {
        let mut buf = first.encode();
        let first_len = buf.len();
        buf.extend_from_slice(&second.encode());
        let consumed = match parse_request(&buf, &Limits::default()).expect("first parses") {
            Parsed::Complete { request, consumed } => {
                prop_assert_eq!(consumed, first_len);
                prop_assert_eq!(request.body, first.body);
                consumed
            }
            Parsed::Incomplete => {
                prop_assert!(false, "first request stayed incomplete");
                unreachable!()
            }
        };
        match parse_request(&buf[consumed..], &Limits::default()).expect("second parses") {
            Parsed::Complete { request, consumed } => {
                prop_assert_eq!(consumed, buf.len() - first_len);
                prop_assert_eq!(request.target, second.target);
                prop_assert_eq!(request.body, second.body);
            }
            Parsed::Incomplete => prop_assert!(false, "second request stayed incomplete"),
        }
    }

    /// Mutation: flipping one byte of a valid request never panics, and
    /// whatever the parser says remains one of the three legal verdicts.
    #[test]
    fn single_byte_mutations_stay_classified(
        request in arb_valid_request(),
        position in any::<u16>(),
        value in any::<u8>(),
    ) {
        let mut bytes = request.encode();
        let position = usize::from(position) % bytes.len();
        bytes[position] = value;
        match parse_request(&bytes, &Limits::default()) {
            Ok(Parsed::Complete { consumed, .. }) => {
                prop_assert!(consumed <= bytes.len());
            }
            Ok(Parsed::Incomplete) => {}
            Err(err) => {
                let status = err.status();
                prop_assert!((400..=505).contains(&status), "status {status}");
            }
        }
    }

    /// An unbounded flood with no line terminator errors once past the
    /// request-line limit instead of buffering forever.
    #[test]
    fn crlf_free_floods_are_rejected(
        filler in 32u8..127,
        extra in 0usize..64,
    ) {
        let limits = Limits::default();
        let flood = vec![filler; limits.max_request_line + 1 + extra];
        prop_assert!(parse_request(&flood, &limits).is_err());
    }
}
