//! A minimal, limit-enforcing HTTP/1.1 message layer.
//!
//! The workspace is fully offline, so there is no hyper/axum to lean on;
//! this module is the smallest slice of RFC 9112 the control plane
//! needs, written defensively: every input path is bounded (request-line
//! length, header count and size, body size), parsing is incremental so
//! torn reads and pipelined requests both work from one buffer, and
//! every malformed input maps to a typed [`ParseError`] carrying the
//! 4xx status the connection should answer before closing. The parser
//! never panics on any byte sequence — property-tested in
//! `tests/http_proptest.rs`.

use std::fmt;

/// Hard limits on one request. Exceeding any of them is a client error,
/// never a server panic or an unbounded allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Longest accepted request line (method + target + version), bytes.
    pub max_request_line: usize,
    /// Most accepted header fields.
    pub max_headers: usize,
    /// Longest accepted single header line, bytes.
    pub max_header_line: usize,
    /// Largest accepted body, bytes.
    pub max_body: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_request_line: 4096,
            max_headers: 64,
            max_header_line: 4096,
            max_body: 64 * 1024,
        }
    }
}

/// Request methods the control plane routes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Method {
    /// `GET`
    Get,
    /// `POST`
    Post,
    /// Any other token — syntactically valid, answered `405`/`501`.
    Other(String),
}

impl Method {
    fn parse(token: &str) -> Option<Method> {
        if token.is_empty() || !token.bytes().all(|b| b.is_ascii_uppercase()) {
            return None;
        }
        Some(match token {
            "GET" => Method::Get,
            "POST" => Method::Post,
            other => Method::Other(other.to_owned()),
        })
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Method::Get => f.write_str("GET"),
            Method::Post => f.write_str("POST"),
            Method::Other(m) => f.write_str(m),
        }
    }
}

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The request method.
    pub method: Method,
    /// The request target (origin form, e.g. `/v1/safe-point/17`).
    pub target: String,
    /// Header fields in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this
    /// exchange (HTTP/1.1 defaults to keep-alive).
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why a buffer failed to parse. Every variant maps to the 4xx/5xx the
/// server answers before closing the connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The request line is malformed (bad method token, missing target,
    /// target not origin-form, embedded control bytes).
    BadRequestLine,
    /// The request line exceeds [`Limits::max_request_line`].
    RequestLineTooLong,
    /// A header line is malformed (no colon, control bytes in the name).
    BadHeader,
    /// A single header line exceeds [`Limits::max_header_line`].
    HeaderLineTooLong,
    /// More than [`Limits::max_headers`] header fields.
    TooManyHeaders,
    /// `Content-Length` is unparseable or duplicated inconsistently.
    BadContentLength,
    /// The declared body exceeds [`Limits::max_body`].
    BodyTooLarge,
    /// The request uses a transfer encoding this server does not
    /// implement (chunked uploads).
    UnsupportedTransferEncoding,
    /// Not HTTP/1.0 or HTTP/1.1.
    UnsupportedVersion,
}

impl ParseError {
    /// The status code the connection answers with before closing.
    pub fn status(&self) -> u16 {
        match self {
            ParseError::BadRequestLine | ParseError::BadHeader | ParseError::BadContentLength => {
                400
            }
            ParseError::RequestLineTooLong => 414,
            ParseError::HeaderLineTooLong | ParseError::TooManyHeaders => 431,
            ParseError::BodyTooLarge => 413,
            ParseError::UnsupportedTransferEncoding => 501,
            ParseError::UnsupportedVersion => 505,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ParseError::BadRequestLine => "malformed request line",
            ParseError::RequestLineTooLong => "request line too long",
            ParseError::BadHeader => "malformed header",
            ParseError::HeaderLineTooLong => "header line too long",
            ParseError::TooManyHeaders => "too many headers",
            ParseError::BadContentLength => "bad content-length",
            ParseError::BodyTooLarge => "body too large",
            ParseError::UnsupportedTransferEncoding => "unsupported transfer-encoding",
            ParseError::UnsupportedVersion => "unsupported http version",
        };
        f.write_str(s)
    }
}

/// Outcome of one incremental parse attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Parsed {
    /// A full request was parsed; `consumed` bytes of the buffer belong
    /// to it (the rest is the next pipelined request, if any).
    Complete {
        /// The parsed request.
        request: Request,
        /// Bytes of the buffer this request consumed.
        consumed: usize,
    },
    /// The buffer holds a syntactically-fine-so-far prefix; read more.
    Incomplete,
}

/// Finds `\r\n` starting at `from`, returning the line without the
/// terminator and the index just past it.
fn find_line(buf: &[u8], from: usize) -> Option<(&[u8], usize)> {
    let mut i = from;
    while i + 1 < buf.len() {
        if buf[i] == b'\r' && buf[i + 1] == b'\n' {
            return Some((&buf[from..i], i + 2));
        }
        i += 1;
    }
    None
}

/// Incrementally parses one request off the front of `buf`.
///
/// Returns [`Parsed::Incomplete`] while the buffer is a valid prefix,
/// [`Parsed::Complete`] with the consumed length once a full message is
/// present (pipelined followers stay in the buffer), and a
/// [`ParseError`] as soon as the prefix can no longer become a valid
/// request — limits are enforced on the prefix, so an attacker cannot
/// make the server buffer an unbounded request line, header block or
/// body. Never panics, for any input.
pub fn parse_request(buf: &[u8], limits: &Limits) -> Result<Parsed, ParseError> {
    // --- Request line. ---
    let (line, mut pos) = match find_line(buf, 0) {
        Some(found) => found,
        None => {
            if buf.len() > limits.max_request_line {
                return Err(ParseError::RequestLineTooLong);
            }
            return Ok(Parsed::Incomplete);
        }
    };
    if line.len() > limits.max_request_line {
        return Err(ParseError::RequestLineTooLong);
    }
    let line = std::str::from_utf8(line).map_err(|_| ParseError::BadRequestLine)?;
    if line.bytes().any(|b| b.is_ascii_control()) {
        return Err(ParseError::BadRequestLine);
    }
    let mut parts = line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => return Err(ParseError::BadRequestLine),
    };
    let method = Method::parse(method).ok_or(ParseError::BadRequestLine)?;
    if !target.starts_with('/') {
        return Err(ParseError::BadRequestLine);
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(ParseError::UnsupportedVersion);
    }

    // --- Headers. ---
    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let (line, next) = match find_line(buf, pos) {
            Some(found) => found,
            None => {
                if buf.len() - pos > limits.max_header_line {
                    return Err(ParseError::HeaderLineTooLong);
                }
                return Ok(Parsed::Incomplete);
            }
        };
        if line.len() > limits.max_header_line {
            return Err(ParseError::HeaderLineTooLong);
        }
        pos = next;
        if line.is_empty() {
            break; // end of the header block
        }
        if headers.len() == limits.max_headers {
            return Err(ParseError::TooManyHeaders);
        }
        let line = std::str::from_utf8(line).map_err(|_| ParseError::BadHeader)?;
        let (name, value) = line.split_once(':').ok_or(ParseError::BadHeader)?;
        if name.is_empty()
            || name
                .bytes()
                .any(|b| b.is_ascii_whitespace() || b.is_ascii_control())
            || value.bytes().any(|b| b.is_ascii_control())
        {
            return Err(ParseError::BadHeader);
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_owned()));
    }

    // --- Body. ---
    let transfer_encoding = headers.iter().any(|(n, _)| n == "transfer-encoding");
    if transfer_encoding {
        return Err(ParseError::UnsupportedTransferEncoding);
    }
    let mut content_length: Option<usize> = None;
    for (name, value) in &headers {
        if name == "content-length" {
            let parsed: usize = value.parse().map_err(|_| ParseError::BadContentLength)?;
            if content_length.is_some_and(|prev| prev != parsed) {
                return Err(ParseError::BadContentLength);
            }
            content_length = Some(parsed);
        }
    }
    let body_len = content_length.unwrap_or(0);
    if body_len > limits.max_body {
        return Err(ParseError::BodyTooLarge);
    }
    if buf.len() < pos + body_len {
        return Ok(Parsed::Incomplete);
    }
    let body = buf[pos..pos + body_len].to_vec();
    Ok(Parsed::Complete {
        request: Request {
            method,
            target: target.to_owned(),
            headers,
            body,
        },
        consumed: pos + body_len,
    })
}

/// One response, rendered by [`Response::encode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` of the body.
    pub content_type: &'static str,
    /// The body bytes.
    pub body: Vec<u8>,
    /// Whether the server closes the connection after this response.
    pub close: bool,
    /// Optional entity tag, emitted as an `etag` header so clients can
    /// revalidate with `If-None-Match`.
    pub etag: Option<String>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: body.into(),
            close: false,
            etag: None,
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
            close: false,
            etag: None,
        }
    }

    /// An empty `304 Not Modified`: the client's cached representation
    /// (named by its `If-None-Match` tag) is still current.
    pub fn not_modified() -> Self {
        Response::json(304, Vec::new())
    }

    /// Attaches an entity tag, emitted as an `etag` header.
    pub fn with_etag(mut self, tag: impl Into<String>) -> Self {
        self.etag = Some(tag.into());
        self
    }

    /// The standard JSON error envelope.
    pub fn error(status: u16, message: &str) -> Self {
        let mut escaped = String::with_capacity(message.len());
        for c in message.chars() {
            match c {
                '"' => escaped.push_str("\\\""),
                '\\' => escaped.push_str("\\\\"),
                '\n' => escaped.push_str("\\n"),
                c if (c as u32) < 0x20 => escaped.push_str(&format!("\\u{:04x}", c as u32)),
                c => escaped.push(c),
            }
        }
        Response::json(status, format!("{{\"error\":\"{escaped}\"}}"))
    }

    /// Marks the response as connection-closing.
    pub fn closing(mut self) -> Self {
        self.close = true;
        self
    }

    /// The canonical reason phrase for the statuses this server emits.
    pub fn reason(status: u16) -> &'static str {
        match status {
            200 => "OK",
            202 => "Accepted",
            304 => "Not Modified",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Content Too Large",
            414 => "URI Too Long",
            429 => "Too Many Requests",
            431 => "Request Header Fields Too Large",
            501 => "Not Implemented",
            503 => "Service Unavailable",
            505 => "HTTP Version Not Supported",
            _ => "Unknown",
        }
    }

    /// Serializes the response head and body to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
            self.status,
            Response::reason(self.status),
            self.content_type,
            self.body.len(),
            if self.close { "close" } else { "keep-alive" },
        );
        if let Some(tag) = &self.etag {
            head.push_str("etag: ");
            head.push_str(tag);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        let mut out = head.into_bytes();
        out.extend_from_slice(&self.body);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(bytes: &[u8]) -> Result<Parsed, ParseError> {
        parse_request(bytes, &Limits::default())
    }

    #[test]
    fn parses_a_simple_get() {
        let buf = b"GET /v1/safe-point/17 HTTP/1.1\r\nhost: x\r\n\r\n";
        match parse(buf).unwrap() {
            Parsed::Complete { request, consumed } => {
                assert_eq!(consumed, buf.len());
                assert_eq!(request.method, Method::Get);
                assert_eq!(request.target, "/v1/safe-point/17");
                assert_eq!(request.header("host"), Some("x"));
                assert!(!request.wants_close());
                assert!(request.body.is_empty());
            }
            other => panic!("expected complete, got {other:?}"),
        }
    }

    #[test]
    fn parses_a_post_with_body_and_pipelined_follower() {
        let buf =
            b"POST /v1/campaigns HTTP/1.1\r\ncontent-length: 4\r\n\r\nabcdGET / HTTP/1.1\r\n\r\n";
        match parse(buf).unwrap() {
            Parsed::Complete { request, consumed } => {
                assert_eq!(request.method, Method::Post);
                assert_eq!(request.body, b"abcd");
                // The follower is untouched and parses on its own.
                match parse(&buf[consumed..]).unwrap() {
                    Parsed::Complete { request, .. } => assert_eq!(request.target, "/"),
                    other => panic!("expected follower, got {other:?}"),
                }
            }
            other => panic!("expected complete, got {other:?}"),
        }
    }

    #[test]
    fn torn_requests_stay_incomplete_until_whole() {
        let buf = b"GET /x HTTP/1.1\r\nhost: a\r\n\r\n";
        for cut in 0..buf.len() {
            assert_eq!(
                parse(&buf[..cut]).unwrap(),
                Parsed::Incomplete,
                "prefix of length {cut}"
            );
        }
        assert!(matches!(parse(buf).unwrap(), Parsed::Complete { .. }));
    }

    #[test]
    fn malformed_request_lines_are_400() {
        for bad in [
            &b"GET\r\n\r\n"[..],
            b" GET / HTTP/1.1\r\n\r\n",
            b"get / HTTP/1.1\r\n\r\n",
            b"GET x HTTP/1.1\r\n\r\n",
            b"GET / HTTP/1.1 extra\r\n\r\n",
            b"G\x01T / HTTP/1.1\r\n\r\n",
        ] {
            assert_eq!(parse(bad).unwrap_err().status(), 400, "{bad:?}");
        }
        assert_eq!(
            parse(b"GET / HTTP/2.0\r\n\r\n").unwrap_err(),
            ParseError::UnsupportedVersion
        );
    }

    #[test]
    fn limits_bound_every_dimension() {
        let limits = Limits {
            max_request_line: 32,
            max_headers: 2,
            max_header_line: 32,
            max_body: 8,
        };
        let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(64));
        assert_eq!(
            parse_request(long_line.as_bytes(), &limits).unwrap_err(),
            ParseError::RequestLineTooLong
        );
        // Even with no CRLF in sight, an oversized prefix errors rather
        // than buffering forever.
        assert_eq!(
            parse_request("G".repeat(64).as_bytes(), &limits).unwrap_err(),
            ParseError::RequestLineTooLong
        );
        let many_headers = "GET / HTTP/1.1\r\na: 1\r\nb: 2\r\nc: 3\r\n\r\n";
        assert_eq!(
            parse_request(many_headers.as_bytes(), &limits).unwrap_err(),
            ParseError::TooManyHeaders
        );
        let long_header = format!("GET / HTTP/1.1\r\nh: {}\r\n\r\n", "v".repeat(64));
        assert_eq!(
            parse_request(long_header.as_bytes(), &limits).unwrap_err(),
            ParseError::HeaderLineTooLong
        );
        let big_body = "POST / HTTP/1.1\r\ncontent-length: 9\r\n\r\n123456789";
        assert_eq!(
            parse_request(big_body.as_bytes(), &limits).unwrap_err(),
            ParseError::BodyTooLarge
        );
    }

    #[test]
    fn content_length_must_be_a_consistent_number() {
        assert_eq!(
            parse(b"POST / HTTP/1.1\r\ncontent-length: x\r\n\r\n").unwrap_err(),
            ParseError::BadContentLength
        );
        assert_eq!(
            parse(b"POST / HTTP/1.1\r\ncontent-length: 1\r\ncontent-length: 2\r\n\r\n")
                .unwrap_err(),
            ParseError::BadContentLength
        );
        // Two agreeing lengths are tolerated.
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\ncontent-length: 1\r\ncontent-length: 1\r\n\r\nZ").unwrap(),
            Parsed::Complete { .. }
        ));
    }

    #[test]
    fn chunked_uploads_are_rejected_as_unimplemented() {
        let err = parse(b"POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n").unwrap_err();
        assert_eq!(err, ParseError::UnsupportedTransferEncoding);
        assert_eq!(err.status(), 501);
    }

    #[test]
    fn responses_encode_with_length_and_connection() {
        let bytes = Response::json(200, "{}").encode();
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
        let closing = Response::error(400, "bad \"x\"").closing().encode();
        let text = String::from_utf8(closing).unwrap();
        assert!(text.contains("connection: close"));
        assert!(text.ends_with("{\"error\":\"bad \\\"x\\\"\"}"));
    }

    #[test]
    fn etags_render_in_the_head_and_304_is_empty() {
        let tagged = Response::json(200, "{}").with_etag("\"sp-7\"");
        let text = String::from_utf8(tagged.encode()).unwrap();
        assert!(text.contains("etag: \"sp-7\"\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));

        let revalidated = Response::not_modified().with_etag("\"sp-7\"");
        assert_eq!(revalidated.status, 304);
        let text = String::from_utf8(revalidated.encode()).unwrap();
        assert!(text.starts_with("HTTP/1.1 304 Not Modified\r\n"));
        assert!(text.contains("content-length: 0\r\n"));
        assert!(text.contains("etag: \"sp-7\"\r\n"));

        // Untagged responses keep the historical head shape.
        let plain = String::from_utf8(Response::json(200, "{}").encode()).unwrap();
        assert!(!plain.contains("etag:"));
    }
}
