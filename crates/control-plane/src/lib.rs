//! The guardband control plane: an always-on serving layer in front of
//! the characterization pipeline.
//!
//! Everything upstream of this crate is batch: a campaign runs, derives
//! safe points, writes a report. Real deployments need the opposite
//! interface — rack controllers ask "what voltage may board 17 run at
//! *right now*?" thousands of times a second, operators submit
//! recharacterization campaigns and watch them converge, and fleet
//! dashboards scrape health. This crate is that always-on layer:
//!
//! * [`http`] — a minimal, limit-enforcing HTTP/1.1 message layer
//!   (the workspace is offline; there is no hyper to lean on);
//! * [`state`] — the Arc-swapped [`state::SafePointSnapshot`] serving
//!   reads without ever taking the writer lock;
//! * [`campaigns`] — the campaign lifecycle (submit → run → publish)
//!   on top of the fleet crate's journaled durable runner, so a killed
//!   server resumes exactly where it died;
//! * [`router`] — transport-free dispatch shared by the TCP path, the
//!   tests and the serving benchmark;
//! * [`server`] — the bounded worker pool over `std::net::TcpListener`
//!   with deadline I/O and graceful drain;
//! * [`metrics`] — the lock-free `control_plane_*` metrics family,
//!   merged with campaign metrics into one Prometheus exposition;
//! * [`loadgen`] — seeded open-loop diurnal traffic for the `loadgen`
//!   binary and `BENCH_serving.json`.
//!
//! The serving guarantees the benchmark gates on: lookups are
//! wait-free with respect to epoch rolls (readers clone an `Arc`,
//! writers swap it), and after [`state::ControlState::roll_epoch`]
//! returns no lookup ever observes the previous epoch — zero stale
//! reads across a rollover.

pub mod campaigns;
pub mod http;
pub mod loadgen;
pub mod metrics;
pub mod router;
pub mod server;
pub mod state;

pub use campaigns::{CampaignRecord, CampaignRunner, CampaignSpec, CampaignState};
pub use http::{parse_request, Limits, Method, ParseError, Parsed, Request, Response};
pub use loadgen::{LoadEvent, LoadProfile, LoadTrace, TraceDigest};
pub use metrics::{Route, ServerMetrics};
pub use router::Router;
pub use server::{serve, ServerConfig, ServerHandle};
pub use state::{
    ControlState, DispatchBoardStatus, DispatchStatus, SafePointSnapshot, SafePointView,
    StatusSnapshot,
};
