//! Seeded open-loop load generation: diurnal sinusoidal traffic with
//! flash-crowd bursts and deterministic per-client request streams.
//!
//! The generator is *open-loop*: arrival times come from the intensity
//! schedule alone, never from server feedback — the client keeps
//! offering load even when the server is slow, which is what exposes
//! latency cliffs (a closed-loop generator self-throttles and hides
//! them). Arrivals are a non-homogeneous Poisson process sampled by
//! Lewis–Shedler thinning: candidates at the peak rate, each accepted
//! with probability `rate(t) / peak`. Everything is driven by one
//! seeded [`StdRng`] plus one decorrelated stream per client, so the
//! same seed yields the byte-identical trace — the reproducibility gate
//! in `BENCH_serving.json`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The traffic shape. All rates in requests/second, times in seconds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadProfile {
    /// Master seed; everything derives from it.
    pub seed: u64,
    /// Trace length, seconds of simulated wall clock.
    pub duration_s: f64,
    /// Mean arrival rate of the diurnal baseline.
    pub base_qps: f64,
    /// Fractional swing of the sinusoid (0.4 → ±40 % around base).
    pub diurnal_amplitude: f64,
    /// Period of the sinusoid (a compressed "day").
    pub diurnal_period_s: f64,
    /// Number of flash-crowd windows scattered over the trace.
    pub flash_crowds: u32,
    /// Rate multiplier inside a flash window.
    pub flash_boost: f64,
    /// Width of each flash window, seconds.
    pub flash_width_s: f64,
    /// Distinct clients; each gets its own deterministic stream.
    pub clients: u32,
    /// Board-id space lookups draw from.
    pub board_space: u32,
}

impl Default for LoadProfile {
    fn default() -> Self {
        LoadProfile {
            seed: 2018,
            duration_s: 60.0,
            base_qps: 200.0,
            diurnal_amplitude: 0.4,
            diurnal_period_s: 30.0,
            flash_crowds: 2,
            flash_boost: 3.0,
            flash_width_s: 2.0,
            clients: 8,
            board_space: 64,
        }
    }
}

/// One generated request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadEvent {
    /// Arrival time, microseconds from trace start (integral so the
    /// trace serializes and hashes exactly).
    pub at_us: u64,
    /// Issuing client.
    pub client: u32,
    /// HTTP method (`GET` or `POST`).
    pub method: String,
    /// Request target.
    pub target: String,
}

/// A full generated trace plus its per-route composition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadTrace {
    /// The profile that produced it.
    pub profile: LoadProfile,
    /// Arrival-ordered events.
    pub events: Vec<LoadEvent>,
}

impl LoadProfile {
    /// The instantaneous arrival rate at `t`: diurnal sinusoid plus any
    /// active flash windows.
    pub fn rate_at(&self, t: f64, flashes: &[f64]) -> f64 {
        let phase = 2.0 * std::f64::consts::PI * t / self.diurnal_period_s;
        let mut rate = self.base_qps * (1.0 + self.diurnal_amplitude * phase.sin());
        for &start in flashes {
            if t >= start && t < start + self.flash_width_s {
                rate *= self.flash_boost;
            }
        }
        rate.max(0.0)
    }

    /// The highest rate the thinning sampler must cover.
    fn peak_rate(&self) -> f64 {
        self.base_qps * (1.0 + self.diurnal_amplitude) * self.flash_boost.max(1.0)
    }

    /// Flash-window start times, drawn from the master seed.
    pub fn flash_starts(&self) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xF1A5_CAFE);
        let mut starts: Vec<f64> = (0..self.flash_crowds)
            .map(|_| rng.gen_range(0.0..(self.duration_s - self.flash_width_s).max(0.0)))
            .collect();
        starts.sort_by(|a, b| a.partial_cmp(b).expect("finite start"));
        starts
    }

    /// Generates the full deterministic trace.
    pub fn generate(&self) -> LoadTrace {
        assert!(self.duration_s > 0.0 && self.base_qps > 0.0 && self.clients > 0);
        let flashes = self.flash_starts();
        let peak = self.peak_rate();
        let mut arrivals = StdRng::seed_from_u64(self.seed);
        // One decorrelated stream per client: client k's request mix is
        // a pure function of (seed, k), independent of every other
        // client and of the arrival process.
        let mut client_streams: Vec<StdRng> = (0..self.clients)
            .map(|k| {
                StdRng::seed_from_u64(self.seed ^ (0x9E37_79B9u64.wrapping_mul(u64::from(k) + 1)))
            })
            .collect();

        let mut events = Vec::new();
        let mut t = 0.0f64;
        loop {
            // Candidate arrival at the peak rate…
            let u: f64 = arrivals.gen_range(f64::MIN_POSITIVE..1.0);
            t += -u.ln() / peak;
            if t >= self.duration_s {
                break;
            }
            // …thinned down to the schedule's instantaneous rate.
            if arrivals.gen_range(0.0..1.0) >= self.rate_at(t, &flashes) / peak {
                continue;
            }
            let client = arrivals.gen_range(0..self.clients);
            let stream = &mut client_streams[client as usize];
            let (method, target) = self.pick_request(stream);
            events.push(LoadEvent {
                at_us: (t * 1e6) as u64,
                client,
                method,
                target,
            });
        }
        LoadTrace {
            profile: self.clone(),
            events,
        }
    }

    /// One client's next request: overwhelmingly safe-point lookups
    /// (the hot path), a sprinkle of health and campaign polling.
    fn pick_request(&self, stream: &mut StdRng) -> (String, String) {
        let roll = stream.gen_range(0..100u32);
        if roll < 90 {
            let board = stream.gen_range(0..self.board_space);
            ("GET".to_owned(), format!("/v1/safe-point/{board}"))
        } else if roll < 95 {
            ("GET".to_owned(), "/v1/status".to_owned())
        } else if roll < 99 {
            let id = stream.gen_range(0..4u32);
            ("GET".to_owned(), format!("/v1/campaigns/{id}"))
        } else {
            ("GET".to_owned(), "/metrics".to_owned())
        }
    }
}

/// Streaming FNV-1a digest over load events. Consumers that stream a
/// trace in chunks (the dispatcher walks arrivals incrementally, the
/// loadgen binary writes as it generates) get the same fingerprint as a
/// whole-trace hash: the digest state is one `u64`, so how the events
/// are batched cannot matter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceDigest {
    hash: u64,
}

impl Default for TraceDigest {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceDigest {
    /// An empty digest (the FNV-1a offset basis).
    pub fn new() -> Self {
        TraceDigest {
            hash: 0xcbf2_9ce4_8422_2325,
        }
    }

    fn eat(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.hash ^= u64::from(b);
            self.hash = self.hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Folds one event into the digest.
    pub fn push(&mut self, event: &LoadEvent) {
        self.eat(&event.at_us.to_le_bytes());
        self.eat(&event.client.to_le_bytes());
        self.eat(event.method.as_bytes());
        self.eat(event.target.as_bytes());
    }

    /// The fingerprint of everything pushed so far.
    pub fn finish(&self) -> u64 {
        self.hash
    }
}

impl LoadTrace {
    /// FNV-1a over the rendered events — the reproducibility fingerprint
    /// (same seed ⇒ same hash, any divergence ⇒ different hash).
    pub fn fingerprint(&self) -> u64 {
        let mut digest = TraceDigest::new();
        for event in &self.events {
            digest.push(event);
        }
        digest.finish()
    }

    /// Requests per route label, for summaries.
    pub fn route_mix(&self) -> Vec<(String, usize)> {
        let mut mix: std::collections::BTreeMap<&str, usize> = std::collections::BTreeMap::new();
        for event in &self.events {
            let label = if event.target.starts_with("/v1/safe-point/") {
                "safe_point"
            } else if event.target.starts_with("/v1/campaigns/") {
                "campaign_status"
            } else if event.target == "/v1/status" {
                "status"
            } else if event.target == "/metrics" {
                "metrics"
            } else {
                "other"
            };
            *mix.entry(label).or_default() += 1;
        }
        mix.into_iter().map(|(k, v)| (k.to_owned(), v)).collect()
    }

    /// Mean offered rate of the generated trace, requests/second.
    pub fn offered_qps(&self) -> f64 {
        self.events.len() as f64 / self.profile.duration_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_is_byte_identical() {
        let profile = LoadProfile::default();
        let a = profile.generate();
        let b = profile.generate();
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn different_seeds_diverge() {
        let a = LoadProfile::default().generate();
        let b = LoadProfile {
            seed: 999,
            ..LoadProfile::default()
        }
        .generate();
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn offered_load_tracks_the_mean_rate() {
        let profile = LoadProfile {
            flash_crowds: 0,
            ..LoadProfile::default()
        };
        let trace = profile.generate();
        // Mean of the sinusoid is base_qps; Poisson noise is a few
        // percent at this sample size.
        let qps = trace.offered_qps();
        assert!(
            (qps - profile.base_qps).abs() < profile.base_qps * 0.15,
            "offered {qps} vs base {}",
            profile.base_qps
        );
    }

    #[test]
    fn flash_crowds_concentrate_arrivals() {
        let profile = LoadProfile {
            flash_crowds: 1,
            flash_boost: 5.0,
            ..LoadProfile::default()
        };
        let trace = profile.generate();
        let start = profile.flash_starts()[0];
        let window_us = (start * 1e6) as u64..((start + profile.flash_width_s) * 1e6) as u64;
        let inside = trace
            .events
            .iter()
            .filter(|e| window_us.contains(&e.at_us))
            .count();
        let width_share = profile.flash_width_s / profile.duration_s;
        let expected_flat = trace.events.len() as f64 * width_share;
        assert!(
            inside as f64 > expected_flat * 2.0,
            "flash window holds {inside} arrivals, flat would be {expected_flat:.0}"
        );
    }

    #[test]
    fn arrivals_are_ordered_and_in_range() {
        let trace = LoadProfile::default().generate();
        assert!(!trace.events.is_empty());
        let limit_us = (trace.profile.duration_s * 1e6) as u64;
        let mut last = 0;
        for event in &trace.events {
            assert!(event.at_us >= last, "arrivals out of order");
            assert!(event.at_us < limit_us);
            assert!(event.client < trace.profile.clients);
            last = event.at_us;
        }
    }

    #[test]
    fn digests_are_chunk_size_independent() {
        let trace = LoadProfile::default().generate();
        let whole = trace.fingerprint();
        for chunk in [1usize, 7, 64, trace.events.len()] {
            let mut digest = TraceDigest::new();
            for batch in trace.events.chunks(chunk) {
                for event in batch {
                    digest.push(event);
                }
            }
            assert_eq!(
                digest.finish(),
                whole,
                "chunk size {chunk} changed the fingerprint"
            );
        }
        // And a truncated stream is not the full stream.
        let mut partial = TraceDigest::new();
        for event in &trace.events[..trace.events.len() - 1] {
            partial.push(event);
        }
        assert_ne!(partial.finish(), whole);
    }

    #[test]
    fn flash_onsets_depend_only_on_their_own_knobs() {
        let base = LoadProfile::default();
        let onsets = base.flash_starts();
        assert_eq!(onsets.len(), base.flash_crowds as usize);
        assert!(onsets.windows(2).all(|w| w[0] <= w[1]), "onsets sorted");

        // Traffic-shape knobs that don't feed the flash sampler must not
        // move the onsets: the dispatcher schedules drains against them.
        let reshaped = LoadProfile {
            base_qps: 900.0,
            diurnal_amplitude: 0.1,
            clients: 3,
            board_space: 7,
            flash_boost: 10.0,
            ..base.clone()
        };
        assert_eq!(reshaped.flash_starts(), onsets);

        // The knobs that do feed it must.
        let reseeded = LoadProfile {
            seed: base.seed + 1,
            ..base.clone()
        };
        assert_ne!(reseeded.flash_starts(), onsets);
        let widened = LoadProfile {
            flash_width_s: base.flash_width_s * 4.0,
            ..base
        };
        assert_ne!(widened.flash_starts(), onsets);
    }

    #[test]
    fn the_mix_is_lookup_dominated() {
        let trace = LoadProfile::default().generate();
        let mix = trace.route_mix();
        let lookups = mix
            .iter()
            .find(|(k, _)| k == "safe_point")
            .map_or(0, |(_, v)| *v);
        assert!(
            lookups as f64 > trace.events.len() as f64 * 0.8,
            "lookups {lookups} of {}",
            trace.events.len()
        );
    }
}
