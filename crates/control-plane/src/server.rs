//! The TCP serving layer: a bounded worker pool over
//! `std::net::TcpListener` with per-connection deadline I/O and a
//! SIGTERM-style graceful drain.
//!
//! # Threading model
//!
//! One acceptor thread blocks on `accept` and pushes connections into a
//! bounded queue; `workers` threads pop connections and serve them to
//! completion (HTTP/1.1 keep-alive with pipelining, one connection per
//! worker at a time). The queue bound is the overload valve: when every
//! worker is busy and the backlog is full, the acceptor answers `503`
//! inline and closes — the server sheds load instead of queueing
//! unboundedly.
//!
//! # Deadlines
//!
//! Every accepted socket gets read and write timeouts
//! ([`ServerConfig::io_timeout`]). A client that stalls mid-request or
//! stops draining its receive window cannot pin a worker forever: the
//! blocked `read`/`write` returns `WouldBlock`/`TimedOut` and the
//! connection is dropped.
//!
//! # Graceful drain
//!
//! [`ServerHandle::shutdown`] follows the SIGTERM choreography: stop
//! accepting (new connections are refused at the OS level once the
//! listener closes), let in-flight connections finish their current
//! request, drain the campaign runner (which persists its manifest), and
//! join every thread. The drain/restart test in `campaigns.rs` proves
//! the stronger property — even a *hard* kill mid-campaign loses no
//! work — so the graceful path here only has to be prompt.

use crate::http::{parse_request, Limits, Parsed, Response};
use crate::router::Router;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables of one server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads serving connections.
    pub workers: usize,
    /// Accepted-connection backlog beyond busy workers; the overload
    /// valve answers `503` past it.
    pub backlog: usize,
    /// Per-socket read/write deadline.
    pub io_timeout: Duration,
    /// HTTP parsing limits.
    pub limits: Limits,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 4,
            backlog: 64,
            io_timeout: Duration::from_secs(5),
            limits: Limits::default(),
        }
    }
}

struct ConnQueue {
    queue: Mutex<(VecDeque<TcpStream>, bool)>,
    ready: Condvar,
    cap: usize,
}

impl ConnQueue {
    fn new(cap: usize) -> Self {
        ConnQueue {
            queue: Mutex::new((VecDeque::new(), false)),
            ready: Condvar::new(),
            cap,
        }
    }

    /// Enqueues unless full; a full queue hands the stream back so the
    /// caller can shed it.
    fn push(&self, stream: TcpStream) -> Result<(), TcpStream> {
        let mut guard = self.queue.lock().expect("conn queue poisoned");
        if guard.0.len() >= self.cap {
            return Err(stream);
        }
        guard.0.push_back(stream);
        drop(guard);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next connection; `None` once closed and empty.
    fn pop(&self) -> Option<TcpStream> {
        let mut guard = self.queue.lock().expect("conn queue poisoned");
        loop {
            if let Some(stream) = guard.0.pop_front() {
                return Some(stream);
            }
            if guard.1 {
                return None;
            }
            guard = self.ready.wait(guard).expect("conn queue poisoned");
        }
    }

    fn close(&self) {
        self.queue.lock().expect("conn queue poisoned").1 = true;
        self.ready.notify_all();
    }
}

/// A running server; dropping the handle without calling
/// [`ServerHandle::shutdown`] aborts threads less politely (the process
/// is exiting anyway).
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    router: Arc<Router>,
    stopping: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves the ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The router behind this server.
    pub fn router(&self) -> &Arc<Router> {
        &self.router
    }

    /// Graceful drain: stop accepting, finish in-flight connections,
    /// drain the campaign runner (persisting its manifest), join every
    /// thread. Idempotent per handle; blocks until quiescent.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.stopping.store(true, Ordering::SeqCst);
        // Unblock the acceptor with a no-op connection to ourselves.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.router.runner().drain();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.acceptor.is_some() {
            self.stop();
        }
    }
}

/// Binds and starts serving. Returns once the listener is live.
pub fn serve(router: Arc<Router>, config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let stopping = Arc::new(AtomicBool::new(false));
    let queue = Arc::new(ConnQueue::new(config.workers + config.backlog));

    let workers = (0..config.workers.max(1))
        .map(|_| {
            let queue = queue.clone();
            let router = router.clone();
            let config = config.clone();
            std::thread::spawn(move || {
                while let Some(stream) = queue.pop() {
                    serve_connection(stream, &router, &config);
                }
            })
        })
        .collect();

    let acceptor = {
        let queue = queue.clone();
        let stopping = stopping.clone();
        let router = router.clone();
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                if stopping.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                router.metrics().connection_opened();
                if let Err(mut shed) = queue.push(stream) {
                    // Overload valve: every worker busy and the backlog
                    // full. Answer 503 inline and close rather than
                    // queueing unboundedly.
                    let response = Response::error(503, "server overloaded").closing();
                    let _ = shed.write_all(&response.encode());
                }
            }
            // Listener closes here; refuse-at-OS-level from now on.
            queue.close();
        })
    };

    Ok(ServerHandle {
        addr,
        router,
        stopping,
        acceptor: Some(acceptor),
        workers,
    })
}

/// Serves one connection: keep-alive loop with pipelining, deadline
/// I/O, typed 4xx on parse errors, connection close on protocol errors
/// or request.
fn serve_connection(mut stream: TcpStream, router: &Router, config: &ServerConfig) {
    let _ = stream.set_read_timeout(Some(config.io_timeout));
    let _ = stream.set_write_timeout(Some(config.io_timeout));
    let _ = stream.set_nodelay(true);

    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    loop {
        // Drain every complete pipelined request already buffered.
        loop {
            match parse_request(&buf, &config.limits) {
                Ok(Parsed::Complete { request, consumed }) => {
                    buf.drain(..consumed);
                    let _guard = router.metrics().begin_request();
                    let started = Instant::now();
                    let route = Router::route_of(&request);
                    let mut response = router.handle(&request);
                    if request.wants_close() {
                        response.close = true;
                    }
                    router.metrics().observe(
                        route,
                        response.status,
                        started.elapsed().as_secs_f64(),
                    );
                    if stream.write_all(&response.encode()).is_err() || response.close {
                        return;
                    }
                }
                Ok(Parsed::Incomplete) => break,
                Err(err) => {
                    router.metrics().parse_error();
                    let response = Response::error(err.status(), &err.to_string()).closing();
                    let _ = stream.write_all(&response.encode());
                    return;
                }
            }
        }
        // Need more bytes.
        match stream.read(&mut chunk) {
            Ok(0) => return, // client closed
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => return, // deadline or reset
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaigns::CampaignRunner;
    use crate::metrics::ServerMetrics;
    use crate::state::ControlState;

    fn start() -> ServerHandle {
        let state = Arc::new(ControlState::new());
        let runner = CampaignRunner::in_memory(state.clone());
        let router = Arc::new(Router::new(state, runner, Arc::new(ServerMetrics::new())));
        serve(router, ServerConfig::default()).expect("bind")
    }

    /// One round-trip on a fresh connection; returns the raw response.
    fn roundtrip(addr: SocketAddr, request: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(request.as_bytes()).expect("send");
        let mut out = Vec::new();
        let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
        let mut chunk = [0u8; 4096];
        loop {
            match stream.read(&mut chunk) {
                Ok(0) | Err(_) => break,
                Ok(n) => out.extend_from_slice(&chunk[..n]),
            }
        }
        String::from_utf8_lossy(&out).into_owned()
    }

    #[test]
    fn serves_status_over_tcp() {
        let server = start();
        let response = roundtrip(
            server.addr(),
            "GET /v1/status HTTP/1.1\r\nconnection: close\r\n\r\n",
        );
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        assert!(response.contains("\"breaker\""));
        server.shutdown();
    }

    #[test]
    fn pipelined_requests_answer_in_order() {
        let server = start();
        let response = roundtrip(
            server.addr(),
            "GET /v1/status HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\nconnection: close\r\n\r\n",
        );
        let statuses: Vec<_> = response.matches("HTTP/1.1 200 OK").collect();
        assert_eq!(statuses.len(), 2, "{response}");
        assert!(response.contains("control_plane_requests_total"));
        server.shutdown();
    }

    #[test]
    fn malformed_requests_get_a_4xx_and_a_close() {
        let server = start();
        let response = roundtrip(server.addr(), "NOT A REQUEST\r\n\r\n");
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");
        assert!(response.contains("connection: close"));
        server.shutdown();
    }

    #[test]
    fn shutdown_refuses_new_connections_and_joins() {
        let server = start();
        let addr = server.addr();
        // Campaigns submitted before shutdown survive the drain.
        let response = roundtrip(
            addr,
            "POST /v1/campaigns HTTP/1.1\r\ncontent-length: 22\r\nconnection: close\r\n\r\n{\"boards\":2,\"seed\":42}",
        );
        assert!(response.starts_with("HTTP/1.1 202"), "{response}");
        server.shutdown();
        // After the graceful drain the port no longer accepts.
        let refused = TcpStream::connect_timeout(&addr, Duration::from_millis(500));
        assert!(refused.is_err(), "listener should be closed");
    }
}
