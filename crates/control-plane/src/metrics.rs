//! The `control_plane_*` metrics family: request counters by route and
//! status class, an in-flight gauge and per-route latency histograms.
//!
//! The serving hot path cannot share the workspace's
//! [`telemetry::Registry`] directly — that registry is `Rc`/`RefCell`
//! single-threaded by design. This module keeps the hot path lock-free
//! with plain atomics (relaxed ordering: counters tolerate torn reads
//! across series, a scrape is always a consistent-enough snapshot) and
//! renders into a fresh `Registry` only when `/metrics` is scraped, so
//! the exposition format stays byte-compatible with everything else the
//! workspace exports.

use std::sync::atomic::{AtomicU64, Ordering};
use telemetry::metrics::{exponential_bounds, HistogramSnapshot, MetricsSnapshot, Registry};

/// The routes the server distinguishes in metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// `GET /v1/safe-point/{board}`
    SafePoint,
    /// `POST /v1/campaigns`
    CampaignSubmit,
    /// `GET /v1/campaigns/{id}`
    CampaignStatus,
    /// `GET /v1/status`
    Status,
    /// `GET /v1/dispatch`
    Dispatch,
    /// `GET /metrics`
    Metrics,
    /// Anything else (404s, parse failures, bad methods).
    Other,
}

/// Every route, in exposition order.
pub const ROUTES: [Route; 7] = [
    Route::SafePoint,
    Route::CampaignSubmit,
    Route::CampaignStatus,
    Route::Status,
    Route::Dispatch,
    Route::Metrics,
    Route::Other,
];

impl Route {
    /// The `route` label value.
    pub fn label(self) -> &'static str {
        match self {
            Route::SafePoint => "safe_point",
            Route::CampaignSubmit => "campaign_submit",
            Route::CampaignStatus => "campaign_status",
            Route::Status => "status",
            Route::Dispatch => "dispatch",
            Route::Metrics => "metrics",
            Route::Other => "other",
        }
    }

    fn ordinal(self) -> usize {
        match self {
            Route::SafePoint => 0,
            Route::CampaignSubmit => 1,
            Route::CampaignStatus => 2,
            Route::Status => 3,
            Route::Dispatch => 4,
            Route::Metrics => 5,
            Route::Other => 6,
        }
    }
}

/// Status classes the request counter distinguishes.
const CLASSES: [&str; 3] = ["2xx", "4xx", "5xx"];

fn class_ordinal(status: u16) -> usize {
    match status {
        200..=299 => 0,
        400..=499 => 1,
        _ => 2,
    }
}

/// Latency bucket bounds, seconds: 1 µs … ~4.2 s, doubling. Chosen with
/// [`exponential_bounds`] so an in-process dispatch (microseconds) and a
/// slow drained connection (seconds) land in the same histogram with
/// constant relative resolution.
pub fn latency_bounds() -> Vec<f64> {
    exponential_bounds(1e-6, 2.0, 22)
}

struct RouteLatency {
    /// Per-bucket counts plus the `+Inf` overflow slot.
    counts: Vec<AtomicU64>,
    /// Sum of observations, nanoseconds (fixed-point keeps it atomic).
    sum_nanos: AtomicU64,
    count: AtomicU64,
}

impl RouteLatency {
    fn new(buckets: usize) -> Self {
        RouteLatency {
            counts: (0..=buckets).map(|_| AtomicU64::new(0)).collect(),
            sum_nanos: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

/// The server's own metrics. One instance per server, shared by every
/// worker thread; all methods are `&self` and lock-free.
pub struct ServerMetrics {
    bounds: Vec<f64>,
    requests: [[AtomicU64; 3]; 7],
    latency: Vec<RouteLatency>,
    in_flight: AtomicU64,
    connections: AtomicU64,
    parse_errors: AtomicU64,
}

impl std::fmt::Debug for ServerMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerMetrics")
            .field("requests_total", &self.requests_total())
            .field("in_flight", &self.in_flight.load(Ordering::Relaxed))
            .finish()
    }
}

impl Default for ServerMetrics {
    fn default() -> Self {
        ServerMetrics::new()
    }
}

impl ServerMetrics {
    /// Fresh metrics with the standard latency buckets.
    pub fn new() -> Self {
        let bounds = latency_bounds();
        ServerMetrics {
            latency: ROUTES
                .iter()
                .map(|_| RouteLatency::new(bounds.len()))
                .collect(),
            bounds,
            requests: Default::default(),
            in_flight: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            parse_errors: AtomicU64::new(0),
        }
    }

    /// Marks a request in flight; the guard decrements on drop so every
    /// exit path (including handler panics unwinding) restores the
    /// gauge.
    pub fn begin_request(&self) -> InFlightGuard<'_> {
        self.in_flight.fetch_add(1, Ordering::Relaxed);
        InFlightGuard { metrics: self }
    }

    /// Records one completed request.
    pub fn observe(&self, route: Route, status: u16, seconds: f64) {
        self.requests[route.ordinal()][class_ordinal(status)].fetch_add(1, Ordering::Relaxed);
        let lat = &self.latency[route.ordinal()];
        let idx = self
            .bounds
            .iter()
            .position(|&b| seconds <= b)
            .unwrap_or(self.bounds.len());
        lat.counts[idx].fetch_add(1, Ordering::Relaxed);
        lat.sum_nanos
            .fetch_add((seconds.max(0.0) * 1e9) as u64, Ordering::Relaxed);
        lat.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one accepted connection.
    pub fn connection_opened(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one request that failed HTTP parsing.
    pub fn parse_error(&self) {
        self.parse_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests observed across every route and status class.
    pub fn requests_total(&self) -> u64 {
        self.requests
            .iter()
            .flat_map(|per_class| per_class.iter())
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Requests currently in flight.
    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// One route's latency distribution as an inert snapshot (the
    /// quantile substrate for `BENCH_serving.json`).
    pub fn latency_snapshot(&self, route: Route) -> HistogramSnapshot {
        let lat = &self.latency[route.ordinal()];
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: lat
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            sum: lat.sum_nanos.load(Ordering::Relaxed) as f64 / 1e9,
            count: lat.count.load(Ordering::Relaxed),
        }
    }

    /// The `control_plane_*` family as an inert, name-sorted snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        for route in ROUTES {
            for (class_idx, class) in CLASSES.iter().enumerate() {
                let count = self.requests[route.ordinal()][class_idx].load(Ordering::Relaxed);
                if count > 0 {
                    snap.counters.push((
                        telemetry::metrics::series_name(
                            "control_plane_requests_total",
                            &[("route", route.label()), ("status", class)],
                        ),
                        count,
                    ));
                }
            }
            let latency = self.latency_snapshot(route);
            if latency.count > 0 {
                snap.histograms.push((
                    telemetry::metrics::series_name(
                        "control_plane_request_seconds",
                        &[("route", route.label())],
                    ),
                    latency,
                ));
            }
        }
        snap.counters.push((
            "control_plane_connections_total".to_owned(),
            self.connections.load(Ordering::Relaxed),
        ));
        snap.counters.push((
            "control_plane_parse_errors_total".to_owned(),
            self.parse_errors.load(Ordering::Relaxed),
        ));
        snap.gauges.push((
            "control_plane_in_flight".to_owned(),
            self.in_flight.load(Ordering::Relaxed) as f64,
        ));
        snap.counters.sort_by(|a, b| a.0.cmp(&b.0));
        snap.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        snap.histograms.sort_by(|a, b| a.0.cmp(&b.0));
        snap
    }

    /// The full `/metrics` exposition: the campaign-derived base
    /// snapshot plus the `control_plane_*` family, in the workspace's
    /// deterministic Prometheus text format. Histograms are restored
    /// from their snapshots, so scrape cost is independent of how many
    /// requests have been served.
    pub fn exposition(&self, base: &MetricsSnapshot) -> String {
        let own = self.snapshot();
        let mut merged = base.clone();
        merged.counters.extend(own.counters);
        merged.gauges.extend(own.gauges);
        merged.histograms.extend(own.histograms);
        merged.counters.sort_by(|a, b| a.0.cmp(&b.0));
        merged.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        merged.histograms.sort_by(|a, b| a.0.cmp(&b.0));
        Registry::from_snapshot(&merged).prometheus()
    }
}

/// Decrements the in-flight gauge on drop.
#[derive(Debug)]
pub struct InFlightGuard<'a> {
    metrics: &'a ServerMetrics,
}

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.metrics.in_flight.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_split_by_route_and_status_class() {
        let m = ServerMetrics::new();
        m.observe(Route::SafePoint, 200, 1e-5);
        m.observe(Route::SafePoint, 200, 2e-5);
        m.observe(Route::SafePoint, 404, 1e-5);
        m.observe(Route::Status, 500, 1e-4);
        assert_eq!(m.requests_total(), 4);
        let text = m.exposition(&MetricsSnapshot::default());
        assert!(
            text.contains("control_plane_requests_total{route=\"safe_point\",status=\"2xx\"} 2")
        );
        assert!(
            text.contains("control_plane_requests_total{route=\"safe_point\",status=\"4xx\"} 1")
        );
        assert!(text.contains("control_plane_requests_total{route=\"status\",status=\"5xx\"} 1"));
        assert!(text.contains("control_plane_in_flight 0"));
    }

    #[test]
    fn in_flight_guard_restores_the_gauge() {
        let m = ServerMetrics::new();
        {
            let _a = m.begin_request();
            let _b = m.begin_request();
            assert_eq!(m.in_flight(), 2);
        }
        assert_eq!(m.in_flight(), 0);
    }

    #[test]
    fn latency_snapshot_supports_quantiles() {
        let m = ServerMetrics::new();
        for _ in 0..100 {
            m.observe(Route::SafePoint, 200, 3e-6); // (2µs, 4µs]
        }
        let snap = m.latency_snapshot(Route::SafePoint);
        assert_eq!(snap.count, 100);
        let p99 = snap.p99().unwrap();
        assert!(p99 > 2e-6 && p99 <= 4e-6, "p99 {p99} outside its bucket");
        // Rendering replays the same distribution into the registry.
        let text = m.exposition(&MetricsSnapshot::default());
        assert!(text.contains("control_plane_request_seconds_count{route=\"safe_point\"} 100"));
        assert!(text.contains(
            "control_plane_request_seconds_bucket{route=\"safe_point\",le=\"0.000004\"} 100"
        ));
    }

    #[test]
    fn exposition_merges_the_campaign_base() {
        let m = ServerMetrics::new();
        let base_registry = Registry::new();
        base_registry.counter_add("fleet_jobs_total", 42);
        let text = m.exposition(&base_registry.snapshot());
        assert!(text.contains("fleet_jobs_total 42"));
        assert!(text.contains("control_plane_in_flight 0"));
    }
}
