//! Shared serving state: an Arc-swapped safe-point snapshot, the fleet
//! health summary and the campaign-derived metrics base.
//!
//! # Snapshot-swap concurrency model
//!
//! Lookups must never contend with campaign completions. The control
//! plane therefore keeps the authoritative [`VersionedSafePointStore`]
//! behind a writer-side mutex, and *serves* from an immutable
//! [`SafePointSnapshot`] — the [`LatestIndex`] of one store version plus
//! a monotonically increasing version number — held as an `Arc` behind
//! an `RwLock`. A lookup takes the read lock just long enough to clone
//! the `Arc` (no allocation, no contention with other readers) and then
//! works entirely on immutable data; an epoch roll builds the next
//! index *outside* any lock and swaps the `Arc` in one short write-lock
//! critical section. Consequences:
//!
//! * lookups never take the write lock and never observe a
//!   half-built index;
//! * after [`ControlState::roll_epoch`] returns, every subsequent
//!   lookup sees the new version — the zero-stale-reads property
//!   `BENCH_serving.json` gates on;
//! * a lookup that raced the swap serves the *previous* complete
//!   version, which is exactly the consistency an epoch-versioned
//!   database wants.

use guardband_core::epoch::{LatestIndex, VersionedSafePointStore};
use guardband_core::safepoint::SafePointStore;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use telemetry::metrics::MetricsSnapshot;

/// One immutable serving view of the safe-point database.
#[derive(Debug, Default)]
pub struct SafePointSnapshot {
    /// Publish counter: bumps on every swap, never reused.
    pub version: u64,
    /// Highest epoch in the snapshot, if any.
    pub latest_epoch: Option<u32>,
    /// The read-optimized index of this store version.
    pub index: LatestIndex,
}

/// What `GET /v1/safe-point/{board}` answers: the deployable point for
/// one board *right now*, stamped with the snapshot version and epoch
/// so clients (and the stale-read audit) can detect rollovers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SafePointView {
    /// The board asked about.
    pub board: u32,
    /// Epoch of the served record.
    pub epoch: u32,
    /// Snapshot version that answered (monotonic across rollovers).
    pub snapshot_version: u64,
    /// Measured rail Vmin, mV, if characterization succeeded.
    pub rail_vmin_mv: Option<u32>,
    /// Deployable PMD voltage, mV (`None`: run at nominal).
    pub pmd_mv: Option<u32>,
    /// Deployable SoC voltage, mV.
    pub soc_mv: Option<u32>,
    /// Deployable DRAM refresh period, ms.
    pub trefp_ms: Option<f64>,
    /// Exploited PMD margin below nominal, mV.
    pub margin_mv: Option<i64>,
    /// Margin lost to aging across the board's epochs, mV.
    pub margin_decay_mv: Option<i64>,
    /// Projected server power saving at this point, W.
    pub savings_watts: f64,
}

impl SafePointSnapshot {
    /// Builds the view served for `board`, or `None` when the board is
    /// unknown to this snapshot.
    pub fn lookup(&self, board: u32) -> Option<SafePointView> {
        let entry = self.index.entry(board)?;
        let point = &entry.point;
        let op = point.operating_point.as_ref();
        Some(SafePointView {
            board,
            epoch: entry.epoch,
            snapshot_version: self.version,
            rail_vmin_mv: point.rail_vmin_mv,
            pmd_mv: op.map(|p| p.pmd_voltage.as_u32()),
            soc_mv: op.map(|p| p.soc_voltage.as_u32()),
            trefp_ms: op.map(|p| p.trefp.as_f64()),
            margin_mv: point.margin_mv(),
            margin_decay_mv: entry.trend.decay_mv(),
            savings_watts: point.savings_watts,
        })
    }
}

/// Fleet health as `GET /v1/status` reports it: breaker state, sentinel
/// verdicts and quarantines, summarized from the latest campaigns.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StatusSnapshot {
    /// Dominant breaker state across the fleet (worst wins), rendered
    /// with [`char_fw::safety::BreakerState`]'s display names.
    pub breaker: String,
    /// Breaker trips summed across characterizations.
    pub breaker_trips: u64,
    /// Sentinel SDC detections summed across characterizations.
    pub sentinel_detections: u64,
    /// Boards the safety net evicted at least once.
    pub evicted_boards: Vec<u32>,
    /// Boards quarantined as adversarial tenants (attacker quarantine,
    /// distinct from board eviction).
    pub attacker_quarantines: Vec<u32>,
    /// Boards with a served safe point.
    pub boards_served: usize,
    /// Highest published epoch.
    pub latest_epoch: Option<u32>,
    /// Current snapshot version.
    pub snapshot_version: u64,
    /// Per-board margin lost to aging across epochs, mV — `(board,
    /// decay)` pairs in ascending board order, only boards whose trend
    /// spans at least two epochs. This is the signal the economic
    /// dispatcher derates capacity on, exposed so dispatch decisions
    /// are auditable over the wire.
    #[serde(default)]
    pub margin_decay_mv: Vec<(u32, i64)>,
}

/// What `GET /v1/dispatch` answers: the economic dispatcher's latest
/// published summary — fleet-wide economics plus the per-board routing
/// view. Empty (with `enabled = false`) until a dispatcher publishes.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DispatchStatus {
    /// Whether a dispatcher has published a summary at all.
    pub enabled: bool,
    /// Requests the dispatcher admitted and routed.
    pub requests_routed: u64,
    /// Requests rejected by admission control (no routable board with
    /// queue headroom).
    pub requests_rejected: u64,
    /// Requests that blew their latency deadline.
    pub qos_violations: u64,
    /// Requests routed away from their economically preferred board
    /// because it was draining, in maintenance or quarantined.
    pub reroutes: u64,
    /// Fleet-wide energy cost per served request, joules (numerically
    /// equal to average watts per unit of QPS).
    pub watts_per_qps: f64,
    /// Per-board routing view, ascending board order.
    pub boards: Vec<DispatchBoardStatus>,
}

/// One board's row in [`DispatchStatus`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DispatchBoardStatus {
    /// Fleet-wide board id.
    pub board: u32,
    /// Routing mode label (`exploited`, `nominal`, `draining`,
    /// `maintenance`, `quarantined`).
    pub mode: String,
    /// Capacity the router plans against, requests/second.
    pub capacity_qps: u64,
    /// Busy power at the board's current operating point, W.
    pub busy_watts: f64,
    /// Requests served.
    pub served: u64,
    /// Margin lost to aging, mV (0 until two epochs exist).
    pub margin_decay_mv: i64,
}

/// The serving state shared by every worker thread.
#[derive(Debug, Default)]
pub struct ControlState {
    /// Authoritative epoch-versioned database (writer side only).
    master: Mutex<VersionedSafePointStore>,
    /// The served snapshot, swapped whole on every publish.
    snapshot: RwLock<Arc<SafePointSnapshot>>,
    /// The served health summary.
    status: RwLock<Arc<StatusSnapshot>>,
    /// The served dispatch summary.
    dispatch: RwLock<Arc<DispatchStatus>>,
    /// Campaign-derived metrics merged into `/metrics` output.
    base_metrics: RwLock<Arc<MetricsSnapshot>>,
    /// Publish counter backing snapshot versions.
    version: AtomicU64,
}

impl ControlState {
    /// Empty state: no safe points, version 0, healthy status.
    pub fn new() -> Self {
        ControlState::default()
    }

    /// The current snapshot — the lookup hot path. Cost: one brief read
    /// lock and an `Arc` clone.
    pub fn snapshot(&self) -> Arc<SafePointSnapshot> {
        self.snapshot
            .read()
            .expect("snapshot lock poisoned")
            .clone()
    }

    /// The current health summary.
    pub fn status(&self) -> Arc<StatusSnapshot> {
        self.status.read().expect("status lock poisoned").clone()
    }

    /// Replaces the health summary (stamping it with the current
    /// snapshot version, epoch and per-board margin decay).
    pub fn set_status(&self, mut status: StatusSnapshot) {
        let snapshot = self.snapshot();
        status.snapshot_version = snapshot.version;
        status.latest_epoch = snapshot.latest_epoch;
        status.boards_served = snapshot.index.len();
        status.margin_decay_mv = snapshot
            .index
            .boards()
            .filter_map(|board| {
                snapshot
                    .index
                    .margin_decay_mv(board)
                    .map(|decay| (board, decay))
            })
            .collect();
        *self.status.write().expect("status lock poisoned") = Arc::new(status);
    }

    /// The served dispatch summary.
    pub fn dispatch(&self) -> Arc<DispatchStatus> {
        self.dispatch
            .read()
            .expect("dispatch lock poisoned")
            .clone()
    }

    /// Replaces the dispatch summary (the economic dispatcher publishes
    /// one after every run).
    pub fn set_dispatch(&self, status: DispatchStatus) {
        *self.dispatch.write().expect("dispatch lock poisoned") = Arc::new(status);
    }

    /// The campaign-derived metrics base merged into `/metrics`.
    pub fn base_metrics(&self) -> Arc<MetricsSnapshot> {
        self.base_metrics
            .read()
            .expect("metrics lock poisoned")
            .clone()
    }

    /// Replaces the campaign-derived metrics base.
    pub fn set_base_metrics(&self, snapshot: MetricsSnapshot) {
        *self.base_metrics.write().expect("metrics lock poisoned") = Arc::new(snapshot);
    }

    /// Merges one epoch's store into the master database and publishes
    /// the rebuilt snapshot. Returns the new snapshot version. The index
    /// build happens outside every lock; only the final `Arc` swap takes
    /// the write lock.
    pub fn roll_epoch(&self, epoch: u32, store: &SafePointStore) -> u64 {
        let mut master = self.master.lock().expect("master lock poisoned");
        for record in store.records() {
            master.insert(epoch, record.clone());
        }
        let index = master.latest_index();
        let latest_epoch = master.latest_epoch();
        drop(master);
        self.swap(index, latest_epoch)
    }

    /// Replaces the whole master database (restart recovery) and
    /// publishes it. Returns the new snapshot version.
    pub fn publish_versioned(&self, versioned: VersionedSafePointStore) -> u64 {
        let index = versioned.latest_index();
        let latest_epoch = versioned.latest_epoch();
        *self.master.lock().expect("master lock poisoned") = versioned;
        self.swap(index, latest_epoch)
    }

    fn swap(&self, index: LatestIndex, latest_epoch: Option<u32>) -> u64 {
        let version = self.version.fetch_add(1, Ordering::SeqCst) + 1;
        let next = Arc::new(SafePointSnapshot {
            version,
            latest_epoch,
            index,
        });
        *self.snapshot.write().expect("snapshot lock poisoned") = next;
        version
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use guardband_core::safepoint::{BoardSafePoint, SafePointPolicy};
    use power_model::units::Millivolts;
    use xgene_sim::sigma::SigmaBin;

    fn record(board: u32, attempt: u32, rail: u32) -> BoardSafePoint {
        let policy = SafePointPolicy::dsn18();
        BoardSafePoint {
            board,
            attempt,
            bin: SigmaBin::Ttt,
            core_vmin_mv: vec![Some(rail - 5); 8],
            rail_vmin_mv: Some(rail),
            operating_point: Some(policy.derive_from_measured(Millivolts::new(rail), policy.trefp)),
            bank_safe_trefp_ms: vec![2283.0; 8],
            savings_fraction: 0.2,
            savings_watts: 6.0,
        }
    }

    fn one_board_store(board: u32, attempt: u32, rail: u32) -> SafePointStore {
        let mut store = SafePointStore::new();
        store.insert(record(board, attempt, rail));
        store
    }

    #[test]
    fn lookups_serve_the_latest_published_epoch() {
        let state = ControlState::new();
        assert_eq!(state.snapshot().lookup(7), None);

        let v1 = state.roll_epoch(0, &one_board_store(7, 0, 905));
        let view = state.snapshot().lookup(7).unwrap();
        assert_eq!((view.epoch, view.snapshot_version), (0, v1));
        assert_eq!(view.rail_vmin_mv, Some(905));
        assert_eq!(view.pmd_mv, Some(930));
        assert_eq!(view.margin_mv, Some(50));
        assert_eq!(view.margin_decay_mv, None, "one epoch is no trend");

        let v2 = state.roll_epoch(12, &one_board_store(7, 12, 925));
        assert!(v2 > v1);
        let view = state.snapshot().lookup(7).unwrap();
        assert_eq!((view.epoch, view.snapshot_version), (12, v2));
        assert_eq!(view.margin_decay_mv, Some(20));
    }

    #[test]
    fn an_old_snapshot_keeps_serving_its_version_after_a_roll() {
        // The consistency contract: a reader holding a pre-roll Arc sees
        // a complete old view, never a half-updated one.
        let state = ControlState::new();
        state.roll_epoch(0, &one_board_store(3, 0, 905));
        let held = state.snapshot();
        state.roll_epoch(6, &one_board_store(3, 6, 915));
        assert_eq!(held.lookup(3).unwrap().epoch, 0);
        assert_eq!(state.snapshot().lookup(3).unwrap().epoch, 6);
    }

    #[test]
    fn status_is_stamped_with_the_serving_version() {
        let state = ControlState::new();
        state.roll_epoch(0, &one_board_store(1, 0, 905));
        state.set_status(StatusSnapshot {
            breaker: "healthy".to_owned(),
            breaker_trips: 2,
            ..StatusSnapshot::default()
        });
        let status = state.status();
        assert_eq!(status.snapshot_version, state.snapshot().version);
        assert_eq!(status.boards_served, 1);
        assert_eq!(status.latest_epoch, Some(0));
        assert_eq!(status.breaker_trips, 2);
    }

    #[test]
    fn status_exposes_per_board_margin_decay() {
        let state = ControlState::new();
        state.roll_epoch(0, &one_board_store(7, 0, 905));
        state.set_status(StatusSnapshot::default());
        assert!(
            state.status().margin_decay_mv.is_empty(),
            "one epoch is no trend"
        );
        // Aging raises the measured rail; the re-characterized epoch
        // records a 20 mV decay, which status now reports per board.
        state.roll_epoch(12, &one_board_store(7, 12, 925));
        state.set_status(StatusSnapshot::default());
        assert_eq!(state.status().margin_decay_mv, vec![(7, 20)]);
    }

    #[test]
    fn dispatch_status_swaps_whole() {
        let state = ControlState::new();
        assert!(!state.dispatch().enabled, "empty until published");
        state.set_dispatch(DispatchStatus {
            enabled: true,
            requests_routed: 1_000,
            watts_per_qps: 0.031,
            boards: vec![DispatchBoardStatus {
                board: 3,
                mode: "exploited".to_owned(),
                capacity_qps: 200,
                busy_watts: 24.8,
                served: 1_000,
                margin_decay_mv: 0,
            }],
            ..DispatchStatus::default()
        });
        let published = state.dispatch();
        assert!(published.enabled);
        assert_eq!(published.boards[0].board, 3);
        // Round-trips through the wire format.
        let json = serde::json::to_string(published.as_ref());
        let back: DispatchStatus = serde::json::from_str(&json).unwrap();
        assert_eq!(back, *published);
    }

    #[test]
    fn publish_versioned_replaces_the_master_wholesale() {
        let state = ControlState::new();
        state.roll_epoch(0, &one_board_store(1, 0, 905));
        let mut versioned = VersionedSafePointStore::new();
        versioned.insert(3, record(9, 3, 910));
        state.publish_versioned(versioned);
        let snapshot = state.snapshot();
        assert_eq!(snapshot.lookup(1), None, "old master is gone");
        assert_eq!(snapshot.lookup(9).unwrap().epoch, 3);
        assert_eq!(snapshot.latest_epoch, Some(3));
    }
}
