//! Open-loop load generator for the guardband control plane.
//!
//! Generates a seeded diurnal trace (sinusoidal QPS plus flash crowds)
//! and either prints its fingerprint (`--dry-run`, CI-friendly) or
//! replays it against a live server, open-loop: requests fire at their
//! scheduled instants regardless of how fast the server answers.
//!
//! ```text
//! loadgen --dry-run --seed 2018 --duration 60 --qps 200
//! loadgen --addr 127.0.0.1:8080 --seed 2018 --duration 10 --qps 500
//! ```

use control_plane::loadgen::{LoadProfile, LoadTrace};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

struct Args {
    profile: LoadProfile,
    addr: Option<String>,
    dry_run: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut profile = LoadProfile::default();
    let mut addr = None;
    let mut dry_run = false;
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| argv.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--seed" => profile.seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--duration" => {
                profile.duration_s = value("--duration")?.parse().map_err(|e| format!("{e}"))?
            }
            "--qps" => profile.base_qps = value("--qps")?.parse().map_err(|e| format!("{e}"))?,
            "--clients" => {
                profile.clients = value("--clients")?.parse().map_err(|e| format!("{e}"))?
            }
            "--boards" => {
                profile.board_space = value("--boards")?.parse().map_err(|e| format!("{e}"))?
            }
            "--flash-crowds" => {
                profile.flash_crowds = value("--flash-crowds")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--addr" => addr = Some(value("--addr")?),
            "--dry-run" => dry_run = true,
            "--help" | "-h" => {
                println!(
                    "usage: loadgen [--dry-run | --addr HOST:PORT] [--seed N] [--duration S] \
                     [--qps N] [--clients N] [--boards N] [--flash-crowds N]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if !dry_run && addr.is_none() {
        return Err("need --addr HOST:PORT or --dry-run".to_owned());
    }
    Ok(Args {
        profile,
        addr,
        dry_run,
    })
}

fn print_summary(trace: &LoadTrace) {
    println!("events: {}", trace.events.len());
    println!("offered_qps: {:.1}", trace.offered_qps());
    println!("fingerprint: {:016x}", trace.fingerprint());
    for (route, count) in trace.route_mix() {
        println!("  {route}: {count}");
    }
}

/// Replays the trace open-loop over per-client keep-alive connections.
fn replay(trace: &LoadTrace, addr: &str) -> Result<(), String> {
    let mut conns: Vec<Option<TcpStream>> = (0..trace.profile.clients).map(|_| None).collect();
    let started = Instant::now();
    let mut sent = 0u64;
    let mut errors = 0u64;
    for event in &trace.events {
        let due = Duration::from_micros(event.at_us);
        if let Some(wait) = due.checked_sub(started.elapsed()) {
            std::thread::sleep(wait);
        }
        let slot = &mut conns[event.client as usize];
        if slot.is_none() {
            *slot = TcpStream::connect(addr)
                .map_err(|e| format!("connect {addr}: {e}"))
                .inspect(|s| {
                    let _ = s.set_read_timeout(Some(Duration::from_secs(5)));
                    let _ = s.set_nodelay(true);
                })
                .ok();
        }
        let Some(stream) = slot.as_mut() else {
            errors += 1;
            continue;
        };
        let request = format!(
            "{} {} HTTP/1.1\r\nhost: loadgen\r\n\r\n",
            event.method, event.target
        );
        if stream.write_all(request.as_bytes()).is_err() {
            errors += 1;
            *slot = None;
            continue;
        }
        if read_one_response(stream).is_none() {
            errors += 1;
            *slot = None;
            continue;
        }
        sent += 1;
    }
    let elapsed = started.elapsed().as_secs_f64();
    println!("sent: {sent}");
    println!("errors: {errors}");
    println!("achieved_qps: {:.1}", sent as f64 / elapsed);
    Ok(())
}

/// Reads one `content-length`-framed response off a keep-alive stream.
fn read_one_response(stream: &mut TcpStream) -> Option<()> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        if let Some(head_end) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = std::str::from_utf8(&buf[..head_end]).ok()?;
            let length: usize = head
                .lines()
                .filter_map(|l| l.split_once(':'))
                .find(|(name, _)| name.eq_ignore_ascii_case("content-length"))
                .and_then(|(_, v)| v.trim().parse().ok())?;
            let total = head_end + 4 + length;
            while buf.len() < total {
                let n = stream.read(&mut chunk).ok()?;
                if n == 0 {
                    return None;
                }
                buf.extend_from_slice(&chunk[..n]);
            }
            return Some(());
        }
        let n = stream.read(&mut chunk).ok()?;
        if n == 0 {
            return None;
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(err) => {
            eprintln!("loadgen: {err}");
            std::process::exit(2);
        }
    };
    let trace = args.profile.generate();
    print_summary(&trace);
    if args.dry_run {
        return;
    }
    let addr = args.addr.expect("checked in parse_args");
    if let Err(err) = replay(&trace, &addr) {
        eprintln!("loadgen: {err}");
        std::process::exit(1);
    }
}
