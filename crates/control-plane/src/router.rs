//! Request dispatch: maps parsed requests onto the serving state.
//!
//! The router is deliberately transport-free — `handle` takes a parsed
//! [`Request`] and returns a [`Response`], nothing else — so the TCP
//! worker pool, the integration tests and the in-process serving bench
//! all exercise the *same* code path. `BENCH_serving.json` therefore
//! measures real dispatch + lookup + serialization cost, not a
//! bench-only shortcut.

use crate::campaigns::{CampaignRunner, CampaignSpec};
use crate::http::{Method, Request, Response};
use crate::metrics::{Route, ServerMetrics};
use crate::state::ControlState;
use std::sync::Arc;

/// The control plane's request dispatcher.
#[derive(Debug)]
pub struct Router {
    state: Arc<ControlState>,
    runner: Arc<CampaignRunner>,
    metrics: Arc<ServerMetrics>,
}

impl Router {
    /// Wires a router over shared serving state.
    pub fn new(
        state: Arc<ControlState>,
        runner: Arc<CampaignRunner>,
        metrics: Arc<ServerMetrics>,
    ) -> Self {
        Router {
            state,
            runner,
            metrics,
        }
    }

    /// The serving state this router answers from.
    pub fn state(&self) -> &Arc<ControlState> {
        &self.state
    }

    /// The campaign runner behind `POST /v1/campaigns`.
    pub fn runner(&self) -> &Arc<CampaignRunner> {
        &self.runner
    }

    /// The server metrics this router reports into.
    pub fn metrics(&self) -> &Arc<ServerMetrics> {
        &self.metrics
    }

    /// Classifies a target for metrics labels without handling it.
    pub fn route_of(request: &Request) -> Route {
        let path = request.target.split('?').next().unwrap_or("");
        if path.starts_with("/v1/safe-point/") {
            Route::SafePoint
        } else if path == "/v1/campaigns" {
            Route::CampaignSubmit
        } else if path.starts_with("/v1/campaigns/") {
            Route::CampaignStatus
        } else if path == "/v1/status" {
            Route::Status
        } else if path == "/v1/dispatch" {
            Route::Dispatch
        } else if path == "/metrics" {
            Route::Metrics
        } else {
            Route::Other
        }
    }

    /// Dispatches one request. Infallible: every outcome, including
    /// unknown routes and bad payloads, is a well-formed response.
    pub fn handle(&self, request: &Request) -> Response {
        let path = request.target.split('?').next().unwrap_or("");
        match (&request.method, path) {
            (Method::Get, _) if path.starts_with("/v1/safe-point/") => {
                self.safe_point(request, &path["/v1/safe-point/".len()..])
            }
            (Method::Post, "/v1/campaigns") => self.submit_campaign(&request.body),
            (Method::Get, "/v1/campaigns") => {
                Response::json(200, serde::json::to_string(&self.runner.records()))
            }
            (Method::Get, _) if path.starts_with("/v1/campaigns/") => {
                self.campaign_status(&path["/v1/campaigns/".len()..])
            }
            (Method::Get, "/v1/status") => {
                Response::json(200, serde::json::to_string(self.state.status().as_ref()))
            }
            (Method::Get, "/v1/dispatch") => {
                Response::json(200, serde::json::to_string(self.state.dispatch().as_ref()))
            }
            (Method::Get, "/metrics") => {
                Response::text(200, self.metrics.exposition(&self.state.base_metrics()))
            }
            (Method::Post, _) | (Method::Get, _) => Response::error(404, "no such route"),
            (Method::Other(_), _) => Response::error(405, "method not allowed"),
        }
    }

    fn safe_point(&self, request: &Request, board: &str) -> Response {
        let Ok(board) = board.parse::<u32>() else {
            return Response::error(400, "board id must be a u32");
        };
        // One Arc clone, then pure immutable reads — the hot path.
        let snapshot = self.state.snapshot();
        match snapshot.lookup(board) {
            Some(view) => {
                // The tag is the snapshot version: every epoch roll swaps
                // the whole snapshot and bumps it, so a match guarantees
                // the client's cached body is still the served one.
                let tag = format!("\"sp-{}\"", snapshot.version);
                if request.header("if-none-match") == Some(tag.as_str()) {
                    return Response::not_modified().with_etag(tag);
                }
                Response::json(200, serde::json::to_string(&view)).with_etag(tag)
            }
            None => Response::error(404, "board has no safe point"),
        }
    }

    fn submit_campaign(&self, body: &[u8]) -> Response {
        let Ok(text) = std::str::from_utf8(body) else {
            return Response::error(400, "body must be UTF-8 JSON");
        };
        let spec: CampaignSpec = match serde::json::from_str(text) {
            Ok(spec) => spec,
            Err(_) => return Response::error(400, "body must be a campaign spec"),
        };
        if spec.boards == 0 {
            return Response::error(400, "campaign needs at least one board");
        }
        match self.runner.submit(spec) {
            Some(id) => Response::json(202, format!("{{\"id\":{id}}}")),
            None => Response::error(503, "server is draining").closing(),
        }
    }

    fn campaign_status(&self, id: &str) -> Response {
        let Ok(id) = id.parse::<u64>() else {
            return Response::error(400, "campaign id must be a u64");
        };
        match self.runner.record(id) {
            Some(record) => Response::json(200, serde::json::to_string(&record)),
            None => Response::error(404, "no such campaign"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaigns::CampaignState;

    fn get(target: &str) -> Request {
        Request {
            method: Method::Get,
            target: target.to_owned(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    fn post(target: &str, body: &str) -> Request {
        Request {
            method: Method::Post,
            target: target.to_owned(),
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    fn router() -> Router {
        let state = Arc::new(ControlState::new());
        let runner = CampaignRunner::in_memory(state.clone());
        Router::new(state, runner, Arc::new(ServerMetrics::new()))
    }

    fn wait_completed(router: &Router, id: u64) {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
        while router.runner.record(id).unwrap().state != CampaignState::Completed {
            assert!(std::time::Instant::now() < deadline, "campaign stuck");
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
    }

    #[test]
    fn routes_classify_for_metrics() {
        assert_eq!(Router::route_of(&get("/v1/safe-point/3")), Route::SafePoint);
        assert_eq!(
            Router::route_of(&post("/v1/campaigns", "{}")),
            Route::CampaignSubmit
        );
        assert_eq!(
            Router::route_of(&get("/v1/campaigns/0")),
            Route::CampaignStatus
        );
        assert_eq!(Router::route_of(&get("/v1/status")), Route::Status);
        assert_eq!(Router::route_of(&get("/v1/dispatch")), Route::Dispatch);
        assert_eq!(Router::route_of(&get("/metrics")), Route::Metrics);
        assert_eq!(Router::route_of(&get("/teapot")), Route::Other);
    }

    fn get_with(target: &str, header: (&str, &str)) -> Request {
        Request {
            method: Method::Get,
            target: target.to_owned(),
            headers: vec![(header.0.to_owned(), header.1.to_owned())],
            body: Vec::new(),
        }
    }

    fn one_board_store(
        board: u32,
        attempt: u32,
        rail: u32,
    ) -> guardband_core::safepoint::SafePointStore {
        use guardband_core::safepoint::{BoardSafePoint, SafePointPolicy, SafePointStore};
        use power_model::units::Millivolts;
        let policy = SafePointPolicy::dsn18();
        let mut store = SafePointStore::new();
        store.insert(BoardSafePoint {
            board,
            attempt,
            bin: xgene_sim::sigma::SigmaBin::Ttt,
            core_vmin_mv: vec![Some(rail - 5); 8],
            rail_vmin_mv: Some(rail),
            operating_point: Some(policy.derive_from_measured(Millivolts::new(rail), policy.trefp)),
            bank_safe_trefp_ms: vec![2283.0; 8],
            savings_fraction: 0.2,
            savings_watts: 6.0,
        });
        store
    }

    #[test]
    fn etags_revalidate_and_rollover_invalidates_the_tag() {
        let router = router();
        router.state.roll_epoch(0, &one_board_store(3, 0, 905));

        // First fetch: full body plus a tag to revalidate with.
        let fresh = router.handle(&get("/v1/safe-point/3"));
        assert_eq!(fresh.status, 200);
        let tag = fresh.etag.clone().expect("safe points carry an etag");
        assert!(!fresh.body.is_empty());

        // Revalidation with the current tag: an empty 304.
        let revalidated = router.handle(&get_with("/v1/safe-point/3", ("if-none-match", &tag)));
        assert_eq!(revalidated.status, 304);
        assert!(revalidated.body.is_empty());
        assert_eq!(revalidated.etag.as_deref(), Some(tag.as_str()));

        // A stranger's tag does not match.
        let mismatched = router.handle(&get_with(
            "/v1/safe-point/3",
            ("if-none-match", "\"sp-999\""),
        ));
        assert_eq!(mismatched.status, 200);

        // An epoch roll swaps the snapshot: the old tag must stop matching
        // even though the client is asking about the same board.
        router.state.roll_epoch(12, &one_board_store(3, 12, 925));
        let rolled = router.handle(&get_with("/v1/safe-point/3", ("if-none-match", &tag)));
        assert_eq!(rolled.status, 200, "rollover must invalidate the tag");
        let new_tag = rolled.etag.expect("rolled response carries a fresh tag");
        assert_ne!(new_tag, tag);
        assert!(std::str::from_utf8(&rolled.body)
            .unwrap()
            .contains("\"rail_vmin_mv\":925"));
        router.runner.drain();
    }

    #[test]
    fn dispatch_endpoint_serves_the_published_summary() {
        let router = router();
        // Before any dispatcher run: the disabled default.
        let empty = router.handle(&get("/v1/dispatch"));
        assert_eq!(empty.status, 200);
        assert!(std::str::from_utf8(&empty.body)
            .unwrap()
            .contains("\"enabled\":false"));

        router.state.set_dispatch(crate::state::DispatchStatus {
            enabled: true,
            requests_routed: 120,
            requests_rejected: 0,
            qos_violations: 1,
            reroutes: 4,
            watts_per_qps: 0.51,
            boards: vec![crate::state::DispatchBoardStatus {
                board: 0,
                mode: "exploited".to_owned(),
                capacity_qps: 200,
                busy_watts: 42.0,
                served: 120,
                margin_decay_mv: 3,
            }],
        });
        let body = router.handle(&get("/v1/dispatch"));
        assert_eq!(body.status, 200);
        let text = std::str::from_utf8(&body.body).unwrap();
        assert!(text.contains("\"requests_routed\":120"));
        assert!(text.contains("\"margin_decay_mv\":3"));
        router.runner.drain();
    }

    #[test]
    fn full_lifecycle_through_the_router() {
        let router = router();
        // Nothing served yet.
        assert_eq!(router.handle(&get("/v1/safe-point/0")).status, 404);

        // Submit a campaign and poll it to completion.
        let accepted = router.handle(&post("/v1/campaigns", r#"{"boards":4,"seed":11}"#));
        assert_eq!(accepted.status, 202);
        assert_eq!(accepted.body, b"{\"id\":0}");
        wait_completed(&router, 0);

        let status = router.handle(&get("/v1/campaigns/0"));
        assert_eq!(status.status, 200);
        let record: crate::campaigns::CampaignRecord =
            serde::json::from_str(std::str::from_utf8(&status.body).unwrap()).unwrap();
        assert_eq!(record.state, CampaignState::Completed);
        assert_eq!(record.boards_characterized, 4);

        // The results are served.
        let point = router.handle(&get("/v1/safe-point/0"));
        assert_eq!(point.status, 200);
        let view: crate::state::SafePointView =
            serde::json::from_str(std::str::from_utf8(&point.body).unwrap()).unwrap();
        assert_eq!(view.board, 0);
        assert_eq!(view.epoch, 0);

        // Status and metrics reflect the campaign.
        let status = router.handle(&get("/v1/status"));
        assert!(std::str::from_utf8(&status.body)
            .unwrap()
            .contains("\"boards_served\":4"));
        let metrics = router.handle(&get("/metrics"));
        assert!(std::str::from_utf8(&metrics.body)
            .unwrap()
            .contains("control_plane_campaigns_completed_total 1"));
        router.runner.drain();
    }

    #[test]
    fn bad_inputs_answer_4xx() {
        let router = router();
        assert_eq!(router.handle(&get("/v1/safe-point/xyz")).status, 400);
        assert_eq!(router.handle(&get("/v1/campaigns/-1")).status, 400);
        assert_eq!(router.handle(&get("/v1/campaigns/7")).status, 404);
        assert_eq!(
            router.handle(&post("/v1/campaigns", "not json")).status,
            400
        );
        assert_eq!(
            router
                .handle(&post("/v1/campaigns", r#"{"boards":0,"seed":1}"#))
                .status,
            400
        );
        assert_eq!(router.handle(&get("/nope")).status, 404);
        let put = Request {
            method: Method::Other("PUT".to_owned()),
            target: "/v1/status".to_owned(),
            headers: Vec::new(),
            body: Vec::new(),
        };
        assert_eq!(router.handle(&put).status, 405);
        router.runner.drain();
    }

    #[test]
    fn draining_router_answers_503_for_submissions() {
        let router = router();
        router.runner.drain();
        let resp = router.handle(&post("/v1/campaigns", r#"{"boards":2,"seed":5}"#));
        assert_eq!(resp.status, 503);
        assert!(resp.close);
    }
}
