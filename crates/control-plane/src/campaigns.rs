//! Campaign submission and execution: `POST /v1/campaigns` lands here.
//!
//! # Lifecycle state machine
//!
//! ```text
//!            submit                dequeue               Ok(run)
//!   (new) ──────────▶ Queued ───────────────▶ Running ──────────▶ Completed
//!                       ▲                        │
//!                       │ next boot resumes      │ Err(FleetInterrupted)
//!                       └──────────────────── Interrupted
//! ```
//!
//! * **Queued → Running** when the single runner thread dequeues the
//!   campaign (one at a time: characterization saturates the host, and
//!   serial execution keeps epoch numbering deterministic).
//! * **Running → Completed** publishes the merged store into the
//!   [`ControlState`] under the campaign's epoch, folds the campaign
//!   counters into the `/metrics` base and refreshes `/v1/status`.
//! * **Running → Interrupted** only when the durable run returns
//!   [`FleetInterrupted`] — a crash (or an injected one). Interrupted
//!   campaigns are *not* silently retried in-process; like a killed
//!   coordinator they resume on the next boot, from their journal, so a
//!   drain that races a crash can never double-run a job.
//! * **Interrupted/Running/Queued → Queued** on boot: anything the
//!   previous incarnation left unfinished re-enters the queue and
//!   [`fleet::run_fleet_durable`] replays its journal, re-running only
//!   jobs with no journaled completion.
//!
//! Every transition persists the manifest (`campaigns.json`, written
//! atomically) when the runner owns a data directory; each campaign's
//! write-ahead journal lives in `campaign-<id>/` beside it.

use crate::state::{ControlState, StatusSnapshot};
use fleet::{
    run_fleet_durable, DirStore, Disruption, DurableRun, FleetCampaign, FleetConfig,
    FleetInterrupted, FleetJournal, FleetReport, FleetSpec, MemStore,
};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use telemetry::metrics::Registry;

/// What a client submits: the fleet to characterize and how.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignSpec {
    /// Fleet size.
    pub boards: u32,
    /// Master seed of the board population.
    pub seed: u64,
    /// Worker threads of the characterization pool.
    #[serde(default)]
    pub workers: usize,
    /// Test/chaos knob: kill the coordinator after this many completions
    /// of the campaign's *first* incarnation (resumed incarnations run
    /// clean). `None` in production.
    #[serde(default)]
    pub interrupt_after: Option<u64>,
}

impl CampaignSpec {
    /// A spec with the default pool.
    pub fn new(boards: u32, seed: u64) -> Self {
        CampaignSpec {
            boards,
            seed,
            workers: 0,
            interrupt_after: None,
        }
    }

    fn fleet_config(&self) -> FleetConfig {
        FleetConfig::with_workers(if self.workers == 0 { 2 } else { self.workers })
    }
}

/// Where a campaign is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CampaignState {
    /// Waiting for the runner (or re-queued by boot recovery).
    Queued,
    /// The runner is executing it now.
    Running,
    /// A crash stopped it; its journal resumes it on the next boot.
    Interrupted,
    /// Done; its safe points are being served.
    Completed,
}

impl CampaignState {
    /// Whether boot recovery should re-enqueue this campaign.
    fn needs_resume(self) -> bool {
        !matches!(self, CampaignState::Completed)
    }
}

impl std::fmt::Display for CampaignState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CampaignState::Queued => "queued",
            CampaignState::Running => "running",
            CampaignState::Interrupted => "interrupted",
            CampaignState::Completed => "completed",
        };
        f.write_str(s)
    }
}

/// One campaign's record — what `GET /v1/campaigns/{id}` answers and
/// what the manifest persists.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignRecord {
    /// Campaign id (monotonic; doubles as the published epoch).
    pub id: u64,
    /// The submitted spec.
    pub spec: CampaignSpec,
    /// Lifecycle state.
    pub state: CampaignState,
    /// Epoch the results publish under.
    pub epoch: u32,
    /// Incarnations that have executed (first run + resumptions).
    pub incarnations: u64,
    /// Jobs executed across every incarnation (no job is ever counted
    /// twice: resumed completions come from the journal, not the pool).
    pub executed_jobs: u64,
    /// Completions the latest incarnation recovered from the journal.
    pub resumed_completions: u64,
    /// Total jobs of the finished campaign (boards + eviction retries).
    pub jobs_total: u64,
    /// Boards with a derived safe point, once completed.
    pub boards_characterized: usize,
    /// Projected fleet saving, W, once completed.
    pub total_savings_watts: f64,
}

impl CampaignRecord {
    fn new(id: u64, spec: CampaignSpec) -> Self {
        CampaignRecord {
            id,
            spec,
            state: CampaignState::Queued,
            epoch: id as u32,
            incarnations: 0,
            executed_jobs: 0,
            resumed_completions: 0,
            jobs_total: 0,
            boards_characterized: 0,
            total_savings_watts: 0.0,
        }
    }
}

/// The persisted manifest: every record plus the id counter.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
struct Manifest {
    next_id: u64,
    records: Vec<CampaignRecord>,
}

#[derive(Debug, Default)]
struct Inner {
    next_id: u64,
    records: BTreeMap<u64, CampaignRecord>,
    queue: VecDeque<u64>,
    /// In-memory journals (no data dir): kept across interrupts so a
    /// same-process resubmission could still resume. Keyed by id.
    mem_journals: BTreeMap<u64, FleetJournal<MemStore>>,
}

/// The campaign runner: accepts submissions, executes them one at a
/// time on a background thread, persists every transition, and resumes
/// unfinished campaigns on boot.
#[derive(Debug)]
pub struct CampaignRunner {
    shared: Arc<RunnerShared>,
    worker: Mutex<Option<JoinHandle<()>>>,
}

#[derive(Debug)]
struct RunnerShared {
    state: Arc<ControlState>,
    data_dir: Option<PathBuf>,
    inner: Mutex<Inner>,
    wake: Condvar,
    draining: AtomicBool,
}

impl CampaignRunner {
    /// Boots a runner with no persistence (journals in memory) — for
    /// benches and examples that never restart.
    pub fn in_memory(state: Arc<ControlState>) -> Arc<Self> {
        CampaignRunner::boot(state, None)
    }

    /// Boots a runner over a data directory: loads the manifest,
    /// republishes completed campaigns' checkpointed stores, re-enqueues
    /// everything unfinished, then starts the executor thread.
    pub fn open(state: Arc<ControlState>, data_dir: impl Into<PathBuf>) -> Arc<Self> {
        CampaignRunner::boot(state, Some(data_dir.into()))
    }

    fn boot(state: Arc<ControlState>, data_dir: Option<PathBuf>) -> Arc<Self> {
        let mut inner = Inner::default();
        if let Some(dir) = &data_dir {
            if let Some(manifest) = load_manifest(dir) {
                inner.next_id = manifest.next_id;
                for mut record in manifest.records {
                    if record.state.needs_resume() {
                        record.state = CampaignState::Queued;
                        inner.queue.push_back(record.id);
                    } else {
                        // Re-serve the completed campaign's store from its
                        // journal checkpoint (sealed; rot falls back to a
                        // full journal replay inside the durable runner).
                        let journal =
                            FleetJournal::new(DirStore::open(campaign_dir(dir, record.id)));
                        if let Ok(Some(store)) = journal.load_store_checkpoint() {
                            state.roll_epoch(record.epoch, &store);
                        }
                    }
                    inner.records.insert(record.id, record);
                }
            }
        }
        let shared = Arc::new(RunnerShared {
            state,
            data_dir,
            inner: Mutex::new(inner),
            wake: Condvar::new(),
            draining: AtomicBool::new(false),
        });
        shared.persist();
        let runner = Arc::new(CampaignRunner {
            shared: shared.clone(),
            worker: Mutex::new(None),
        });
        let handle = std::thread::spawn(move || shared.run());
        *runner.worker.lock().expect("worker slot poisoned") = Some(handle);
        runner
    }

    /// Submits a campaign; returns its id, or `None` while draining.
    pub fn submit(&self, spec: CampaignSpec) -> Option<u64> {
        if self.shared.draining.load(Ordering::SeqCst) {
            return None;
        }
        let id = {
            let mut inner = self.shared.inner.lock().expect("runner lock poisoned");
            let id = inner.next_id;
            inner.next_id += 1;
            inner.records.insert(id, CampaignRecord::new(id, spec));
            inner.queue.push_back(id);
            id
        };
        self.shared.persist();
        self.shared.wake.notify_all();
        Some(id)
    }

    /// One campaign's record.
    pub fn record(&self, id: u64) -> Option<CampaignRecord> {
        self.shared
            .inner
            .lock()
            .expect("runner lock poisoned")
            .records
            .get(&id)
            .cloned()
    }

    /// Every record, id-ascending.
    pub fn records(&self) -> Vec<CampaignRecord> {
        self.shared
            .inner
            .lock()
            .expect("runner lock poisoned")
            .records
            .values()
            .cloned()
            .collect()
    }

    /// SIGTERM-style drain: refuse new submissions, let the in-flight
    /// campaign finish (its journal makes even a hard kill recoverable),
    /// persist the manifest and stop the executor thread. Blocks until
    /// the thread exits.
    pub fn drain(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.wake.notify_all();
        if let Some(handle) = self.worker.lock().expect("worker slot poisoned").take() {
            let _ = handle.join();
        }
        self.shared.persist();
    }

    /// Whether the runner has fully drained (no queued or running work).
    pub fn idle(&self) -> bool {
        let inner = self.shared.inner.lock().expect("runner lock poisoned");
        inner.queue.is_empty()
            && inner
                .records
                .values()
                .all(|r| r.state != CampaignState::Running)
    }
}

impl Drop for CampaignRunner {
    fn drop(&mut self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.wake.notify_all();
        if let Some(handle) = self.worker.lock().expect("worker slot poisoned").take() {
            let _ = handle.join();
        }
    }
}

impl RunnerShared {
    fn run(&self) {
        loop {
            let id = {
                let mut inner = self.inner.lock().expect("runner lock poisoned");
                loop {
                    // Draining stops *pickups*, not the in-flight
                    // campaign: queued work stays in the manifest for
                    // the next boot.
                    if self.draining.load(Ordering::SeqCst) {
                        break None;
                    }
                    if let Some(id) = inner.queue.pop_front() {
                        break Some(id);
                    }
                    inner = self
                        .wake
                        .wait_timeout(inner, std::time::Duration::from_millis(50))
                        .expect("runner lock poisoned")
                        .0;
                }
            };
            let Some(id) = id else { return };
            self.execute(id);
            if self.draining.load(Ordering::SeqCst) {
                return;
            }
        }
    }

    fn execute(&self, id: u64) {
        let (spec, incarnations) = {
            let mut inner = self.inner.lock().expect("runner lock poisoned");
            let record = inner.records.get_mut(&id).expect("queued id has a record");
            record.state = CampaignState::Running;
            (record.spec.clone(), record.incarnations)
        };
        self.persist();

        let fleet_spec = FleetSpec::new(spec.boards, spec.seed);
        let campaign = FleetCampaign::quick();
        let config = spec.fleet_config();
        // The injected kill fires only on the first incarnation —
        // resumptions model the post-crash boot and must run clean.
        let disruption = Disruption {
            kill_coordinator_after: spec.interrupt_after.filter(|_| incarnations == 0),
            ..Disruption::none()
        };

        let result = match &self.data_dir {
            Some(dir) => {
                let mut journal = FleetJournal::new(DirStore::open(campaign_dir(dir, id)));
                run_fleet_durable(&fleet_spec, &campaign, &config, &mut journal, &disruption)
            }
            None => {
                let mut journal = {
                    let mut inner = self.inner.lock().expect("runner lock poisoned");
                    inner
                        .mem_journals
                        .remove(&id)
                        .unwrap_or_else(|| FleetJournal::new(MemStore::new()))
                };
                let result =
                    run_fleet_durable(&fleet_spec, &campaign, &config, &mut journal, &disruption);
                self.inner
                    .lock()
                    .expect("runner lock poisoned")
                    .mem_journals
                    .insert(id, journal);
                result
            }
        };

        match result {
            Ok(run) => self.complete(id, run),
            Err(interrupted) => self.interrupt(id, &interrupted),
        }
        self.persist();
    }

    fn complete(&self, id: u64, run: DurableRun) {
        let report = &run.report;
        let epoch = self
            .inner
            .lock()
            .expect("runner lock poisoned")
            .records
            .get(&id)
            .expect("running id has a record")
            .epoch;
        // Publish BEFORE marking the record completed: a client that
        // polls the campaign to `Completed` and then looks up a safe
        // point must find the new epoch served. Order: safe points,
        // then health (stamped with the new snapshot version), then
        // the metrics base.
        self.state.roll_epoch(epoch, &report.characterization.store);
        self.state.set_status(status_from_report(report));
        let base = Registry::from_snapshot(&self.state.base_metrics());
        for (name, value) in &report.characterization.campaign_counters {
            base.counter_add(name, *value);
        }
        base.counter_add("control_plane_campaigns_completed_total", 1);
        base.gauge_set("control_plane_latest_epoch", f64::from(epoch));
        self.state.set_base_metrics(base.snapshot());

        let mut inner = self.inner.lock().expect("runner lock poisoned");
        let record = inner.records.get_mut(&id).expect("running id has a record");
        record.state = CampaignState::Completed;
        record.incarnations += 1;
        record.executed_jobs += run.stats.executed_jobs;
        record.resumed_completions = run.stats.resumed_completions;
        // `execution.jobs` counts only this incarnation's pool;
        // `characterization.jobs` is the deterministic full job set
        // (initial boards plus eviction retries), identical to an
        // uninterrupted run — the right "exactly once" denominator.
        record.jobs_total = report.characterization.jobs.len() as u64;
        record.boards_characterized = report.characterization.stats.characterized;
        record.total_savings_watts = report.characterization.stats.total_savings_watts;
    }

    fn interrupt(&self, id: u64, interrupted: &FleetInterrupted) {
        let mut inner = self.inner.lock().expect("runner lock poisoned");
        let record = inner.records.get_mut(&id).expect("running id has a record");
        record.state = CampaignState::Interrupted;
        record.incarnations += 1;
        record.executed_jobs += match interrupted {
            FleetInterrupted::CoordinatorKilled { completions }
            | FleetInterrupted::PoolLost { completions, .. } => *completions,
        };
    }

    fn persist(&self) {
        let Some(dir) = &self.data_dir else { return };
        let manifest = {
            let inner = self.inner.lock().expect("runner lock poisoned");
            Manifest {
                next_id: inner.next_id,
                records: inner.records.values().cloned().collect(),
            }
        };
        let _ = std::fs::create_dir_all(dir);
        let tmp = dir.join("campaigns.json.tmp");
        let path = dir.join("campaigns.json");
        if std::fs::write(&tmp, serde::json::to_string(&manifest)).is_ok() {
            let _ = std::fs::rename(&tmp, &path);
        }
    }
}

fn campaign_dir(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("campaign-{id}"))
}

fn load_manifest(dir: &Path) -> Option<Manifest> {
    let text = std::fs::read_to_string(dir.join("campaigns.json")).ok()?;
    serde::json::from_str(&text).ok()
}

/// Summarizes a finished fleet report into the `/v1/status` shape.
pub fn status_from_report(report: &FleetReport) -> StatusSnapshot {
    let jobs = &report.characterization.jobs;
    let breaker_trips: u64 = jobs.iter().map(|j| j.breaker_trips).sum();
    let mut evicted: Vec<u32> = jobs.iter().filter(|j| j.tripped).map(|j| j.board).collect();
    evicted.sort_unstable();
    evicted.dedup();
    let sentinel_detections = report
        .characterization
        .campaign_counters
        .iter()
        .find(|(name, _)| name == "sentinel_detections_total")
        .map_or(0, |(_, v)| *v);
    StatusSnapshot {
        breaker: if jobs.iter().any(|j| j.tripped) {
            "tripped".to_owned()
        } else {
            "healthy".to_owned()
        },
        breaker_trips,
        sentinel_detections,
        evicted_boards: evicted,
        attacker_quarantines: Vec::new(),
        ..StatusSnapshot::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unique_dir(tag: &str) -> PathBuf {
        use std::sync::atomic::AtomicU64;
        static NEXT: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "guardband_cp_{tag}_{}_{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::SeqCst)
        ))
    }

    fn wait_for<F: Fn() -> bool>(what: &str, cond: F) {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
        while !cond() {
            assert!(
                std::time::Instant::now() < deadline,
                "timed out waiting for {what}"
            );
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
    }

    #[test]
    fn a_campaign_completes_and_publishes_its_epoch() {
        let state = Arc::new(ControlState::new());
        let runner = CampaignRunner::in_memory(state.clone());
        let id = runner.submit(CampaignSpec::new(6, 2018)).unwrap();
        wait_for("completion", || {
            runner.record(id).unwrap().state == CampaignState::Completed
        });
        let record = runner.record(id).unwrap();
        assert_eq!(record.boards_characterized, 6);
        assert!(record.total_savings_watts > 0.0);
        assert_eq!(record.resumed_completions, 0);
        assert_eq!(record.executed_jobs, record.jobs_total);
        // The store is being served.
        let snapshot = state.snapshot();
        assert_eq!(snapshot.index.len(), 6);
        assert_eq!(snapshot.latest_epoch, Some(record.epoch));
        // Status and metrics base followed.
        assert!(state.status().boards_served == 6);
        assert!(state
            .base_metrics()
            .counter("control_plane_campaigns_completed_total")
            .is_some());
        runner.drain();
    }

    #[test]
    fn draining_refuses_new_submissions() {
        let state = Arc::new(ControlState::new());
        let runner = CampaignRunner::in_memory(state);
        runner.drain();
        assert_eq!(runner.submit(CampaignSpec::new(4, 1)), None);
    }

    #[test]
    fn an_interrupted_campaign_resumes_across_a_restart_without_rerunning_jobs() {
        // Baseline: the same campaign, uninterrupted.
        let fleet_spec = FleetSpec::new(8, 77);
        let baseline = fleet::run_fleet(
            &fleet_spec,
            &FleetCampaign::quick(),
            &CampaignSpec::new(8, 77).fleet_config(),
        );

        let dir = unique_dir("resume");
        let state = Arc::new(ControlState::new());
        let runner = CampaignRunner::open(state, &dir);
        let spec = CampaignSpec {
            interrupt_after: Some(3),
            ..CampaignSpec::new(8, 77)
        };
        let id = runner.submit(spec).unwrap();
        wait_for("interrupt", || {
            runner.record(id).unwrap().state == CampaignState::Interrupted
        });
        let first = runner.record(id).unwrap();
        assert_eq!(first.executed_jobs, 3, "the kill fired after 3 jobs");
        runner.drain();
        drop(runner);

        // Reboot on the same directory: the campaign resumes from its
        // journal and the totals prove no job was lost or double-run.
        let state = Arc::new(ControlState::new());
        let runner = CampaignRunner::open(state.clone(), &dir);
        wait_for("resumed completion", || {
            runner.record(id).unwrap().state == CampaignState::Completed
        });
        let record = runner.record(id).unwrap();
        assert_eq!(record.incarnations, 2);
        assert_eq!(record.resumed_completions, 3);
        assert_eq!(
            record.executed_jobs, record.jobs_total,
            "first-life jobs + resumed-life jobs = every job exactly once"
        );
        assert_eq!(record.jobs_total, baseline.execution.jobs);
        assert_eq!(record.boards_characterized, 8);
        runner.drain();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn draining_with_queued_work_loses_nothing_across_restart() {
        // Submit two campaigns and drain while the second is still
        // queued (the first may be running): the manifest persists both,
        // and the reboot finishes whatever did not complete.
        let dir = unique_dir("queued");
        let state = Arc::new(ControlState::new());
        let runner = CampaignRunner::open(state, &dir);
        let a = runner.submit(CampaignSpec::new(4, 21)).unwrap();
        let b = runner.submit(CampaignSpec::new(3, 22)).unwrap();
        runner.drain();
        drop(runner);

        let state = Arc::new(ControlState::new());
        let runner = CampaignRunner::open(state.clone(), &dir);
        for id in [a, b] {
            wait_for("completion after reboot", || {
                runner.record(id).unwrap().state == CampaignState::Completed
            });
            let record = runner.record(id).unwrap();
            assert_eq!(
                record.executed_jobs, record.jobs_total,
                "campaign {id}: every job exactly once"
            );
        }
        // Both campaigns' boards are served (epoch b > epoch a, and the
        // index holds the union's latest records).
        assert_eq!(state.snapshot().latest_epoch, Some(b as u32));
        assert_eq!(state.snapshot().index.len(), 4);
        runner.drain();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_rebooted_runner_reserves_completed_campaigns() {
        let dir = unique_dir("reserve");
        let state = Arc::new(ControlState::new());
        let runner = CampaignRunner::open(state, &dir);
        let id = runner.submit(CampaignSpec::new(5, 9)).unwrap();
        wait_for("completion", || {
            runner.record(id).unwrap().state == CampaignState::Completed
        });
        runner.drain();
        drop(runner);

        // A fresh boot re-serves the checkpointed store without
        // re-running anything.
        let state = Arc::new(ControlState::new());
        let runner = CampaignRunner::open(state.clone(), &dir);
        let record = runner.record(id).unwrap();
        assert_eq!(record.state, CampaignState::Completed);
        assert_eq!(state.snapshot().index.len(), 5);
        runner.drain();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
