//! Per-rail power-domain models.
//!
//! The X-Gene2 board exposes three independently measurable supply domains
//! — PMD (cores + L1/L2), SoC (L3, central switch, memory-controller logic,
//! I/O) and DRAM — plus a fixed remainder (fans, VRM losses, board logic).
//! Fig. 9 of the paper reports nominal vs. undervolted power per domain for
//! the jammer-detector workload; this module provides the domain-level
//! models those numbers calibrate.

use crate::scaling::{DynamicScaling, LeakageScaling};
use crate::units::{Celsius, Megahertz, Millivolts, Watts};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies one of the X-Gene2 supply domains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DomainKind {
    /// Processor-module domain: the 8 cores, L1 and L2 caches.
    Pmd,
    /// SoC domain: L3, central switch, MCB/MCU logic, I/O.
    Soc,
    /// DRAM devices (DIMM rail).
    Dram,
    /// Voltage-independent remainder (board, fans, VRM losses).
    Fixed,
}

impl DomainKind {
    /// All four domains in reporting order.
    pub const ALL: [DomainKind; 4] = [
        DomainKind::Pmd,
        DomainKind::Soc,
        DomainKind::Dram,
        DomainKind::Fixed,
    ];
}

impl fmt::Display for DomainKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DomainKind::Pmd => "PMD",
            DomainKind::Soc => "SoC",
            DomainKind::Dram => "DRAM",
            DomainKind::Fixed => "fixed",
        };
        f.write_str(s)
    }
}

/// A compute supply domain whose power splits into a dynamic part scaling
/// as `V²f` and a leakage part scaling as `V^γ`, plus an optional
/// voltage-independent share (I/O rails on the SoC domain).
///
/// # Examples
///
/// ```
/// use power_model::domain::ComputeDomain;
/// use power_model::units::{Celsius, Megahertz, Millivolts, Watts};
///
/// let pmd = ComputeDomain::xgene2_pmd(Watts::new(14.5));
/// let nominal = pmd.power(Millivolts::new(980), &[Megahertz::new(2400); 4], Celsius::new(45.0));
/// let relaxed = pmd.power(Millivolts::new(930), &[Megahertz::new(2400); 4], Celsius::new(45.0));
/// let saving = nominal.savings_to(relaxed);
/// assert!((saving - 0.203).abs() < 0.01); // Fig. 9 PMD-domain saving
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComputeDomain {
    kind: DomainKind,
    nominal_power: Watts,
    /// Fraction of nominal power that is leakage.
    leakage_fraction: f64,
    /// Fraction of nominal power that does not scale with voltage at all.
    fixed_fraction: f64,
    dynamic: DynamicScaling,
    leakage: LeakageScaling,
}

impl ComputeDomain {
    /// Creates a compute domain.
    ///
    /// # Panics
    ///
    /// Panics if `leakage_fraction` or `fixed_fraction` is outside `[0, 1]`
    /// or their sum exceeds 1.
    pub fn new(
        kind: DomainKind,
        nominal_power: Watts,
        leakage_fraction: f64,
        fixed_fraction: f64,
        dynamic: DynamicScaling,
        leakage: LeakageScaling,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&leakage_fraction),
            "leakage_fraction in [0,1]"
        );
        assert!(
            (0.0..=1.0).contains(&fixed_fraction),
            "fixed_fraction in [0,1]"
        );
        assert!(
            leakage_fraction + fixed_fraction <= 1.0 + 1e-12,
            "leakage + fixed fractions must not exceed 1"
        );
        ComputeDomain {
            kind,
            nominal_power,
            leakage_fraction,
            fixed_fraction,
            dynamic,
            leakage,
        }
    }

    /// The calibrated X-Gene2 PMD domain: 60 % leakage share at the nominal
    /// point (28 nm high-performance process under a steady multi-threaded
    /// load), no voltage-independent share.
    pub fn xgene2_pmd(nominal_power: Watts) -> Self {
        ComputeDomain::new(
            DomainKind::Pmd,
            nominal_power,
            0.60,
            0.0,
            DynamicScaling::xgene2(),
            LeakageScaling::xgene2(),
        )
    }

    /// The calibrated X-Gene2 SoC domain: 56.5 % of the rail feeds
    /// voltage-independent I/O and PHY circuitry, the rest splits between
    /// switching (34.5 %) and leakage (9 %). Calibrated so a 980 → 920 mV
    /// undervolt saves the 6.9 % Fig. 9 reports.
    pub fn xgene2_soc(nominal_power: Watts) -> Self {
        ComputeDomain::new(
            DomainKind::Soc,
            nominal_power,
            0.09,
            0.565,
            DynamicScaling::xgene2(),
            LeakageScaling::xgene2(),
        )
    }

    /// Domain identity.
    pub fn kind(&self) -> DomainKind {
        self.kind
    }

    /// Power at the nominal operating point.
    pub fn nominal_power(&self) -> Watts {
        self.nominal_power
    }

    /// Power at `(voltage, per-PMD frequencies, temperature)`.
    pub fn power(&self, voltage: Millivolts, frequencies: &[Megahertz], temp: Celsius) -> Watts {
        let dyn_frac = 1.0 - self.leakage_fraction - self.fixed_fraction;
        let dyn_factor = self.dynamic.factor_multi(voltage, frequencies);
        let leak_factor = self.leakage.factor(voltage, temp);
        let factor =
            dyn_frac * dyn_factor + self.leakage_fraction * leak_factor + self.fixed_fraction;
        self.nominal_power.scaled(factor)
    }
}

/// The DRAM rail: background + refresh + access components.
///
/// Refresh power scales inversely with the refresh period; access power
/// scales with the workload's DRAM bandwidth utilization. This is the model
/// behind Fig. 8b (per-workload savings from a 35× refresh relaxation) and
/// the Fig. 9 DRAM-domain saving.
///
/// # Examples
///
/// ```
/// use power_model::domain::DramDomain;
/// use power_model::units::{Milliseconds, Watts};
///
/// // Jammer workload: ~10.7% bandwidth utilization → refresh is ~34% of
/// // the rail power, so a 35x relaxation saves one third of it.
/// let dram = DramDomain::xgene2(Watts::new(9.0));
/// let nominal = dram.power(Milliseconds::DDR3_NOMINAL_TREFP, 0.107);
/// let relaxed = dram.power(Milliseconds::DSN18_RELAXED_TREFP, 0.107);
/// let saving = nominal.savings_to(relaxed);
/// assert!((saving - 0.333).abs() < 0.01); // Fig. 9 DRAM-domain saving
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DramDomain {
    /// Power of background/standby circuitry at the reference point.
    background: Watts,
    /// Refresh power at the *nominal* 64 ms refresh period.
    refresh_at_nominal: Watts,
    /// Access power at 100 % bandwidth utilization.
    access_at_full_bw: Watts,
    nominal_trefp: crate::units::Milliseconds,
}

impl DramDomain {
    /// Creates a DRAM domain from its three components.
    pub fn new(
        background: Watts,
        refresh_at_nominal: Watts,
        access_at_full_bw: Watts,
        nominal_trefp: crate::units::Milliseconds,
    ) -> Self {
        DramDomain {
            background,
            refresh_at_nominal,
            access_at_full_bw,
            nominal_trefp,
        }
    }

    /// Calibrated X-Gene2 32 GB DDR3 subsystem scaled to a reference power.
    ///
    /// `reference_power` is the DRAM rail power for a workload with ~10.9 %
    /// bandwidth utilization at the nominal refresh period (roughly the
    /// jammer detector's utilization). At that point the rail splits
    /// 31 % background / 34 % refresh / 35 % access; full-bandwidth access
    /// power is 3.2× the reference rail power, which lets memory-bound
    /// workloads like kmeans reach the small (9.4 %) relative refresh
    /// saving Fig. 8b reports.
    pub fn xgene2(reference_power: Watts) -> Self {
        let p = reference_power.as_f64();
        DramDomain::new(
            Watts::new(0.31 * p),
            Watts::new(0.34 * p),
            Watts::new(3.2 * p),
            crate::units::Milliseconds::DDR3_NOMINAL_TREFP,
        )
    }

    /// DRAM rail power at a refresh period and bandwidth utilization
    /// (`0.0 ..= 1.0`).
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_utilization` is outside `[0, 1]`.
    pub fn power(&self, trefp: crate::units::Milliseconds, bandwidth_utilization: f64) -> Watts {
        assert!(
            (0.0..=1.0).contains(&bandwidth_utilization),
            "bandwidth utilization must be in [0,1], got {bandwidth_utilization}"
        );
        let refresh_scale = if trefp.as_f64() <= 0.0 {
            1.0
        } else {
            self.nominal_trefp.as_f64() / trefp.as_f64()
        };
        self.background
            + self.refresh_at_nominal.scaled(refresh_scale)
            + self.access_at_full_bw.scaled(bandwidth_utilization)
    }

    /// Fractional power saving when relaxing the refresh period from nominal
    /// to `trefp` for a workload at the given bandwidth utilization.
    ///
    /// This is the quantity plotted per benchmark in Fig. 8b.
    pub fn refresh_relaxation_savings(
        &self,
        trefp: crate::units::Milliseconds,
        bandwidth_utilization: f64,
    ) -> f64 {
        let nominal = self.power(self.nominal_trefp, bandwidth_utilization);
        let relaxed = self.power(trefp, bandwidth_utilization);
        nominal.savings_to(relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::Milliseconds;

    #[test]
    fn pmd_domain_saving_matches_fig9() {
        let pmd = ComputeDomain::xgene2_pmd(Watts::new(14.5));
        let t = Celsius::new(45.0);
        let f = [Megahertz::XGENE2_NOMINAL; 4];
        let nominal = pmd.power(Millivolts::new(980), &f, t);
        let safe = pmd.power(Millivolts::new(930), &f, t);
        let saving = nominal.savings_to(safe);
        assert!((saving - 0.203).abs() < 0.01, "got {saving}");
    }

    #[test]
    fn soc_domain_saving_matches_fig9() {
        let soc = ComputeDomain::xgene2_soc(Watts::new(5.0));
        let t = Celsius::new(45.0);
        let f = [Megahertz::XGENE2_NOMINAL];
        let nominal = soc.power(Millivolts::new(980), &f, t);
        let safe = soc.power(Millivolts::new(920), &f, t);
        let saving = nominal.savings_to(safe);
        assert!((saving - 0.069).abs() < 0.012, "got {saving}");
    }

    #[test]
    fn nominal_power_is_reproduced_at_anchor() {
        let pmd = ComputeDomain::xgene2_pmd(Watts::new(14.5));
        let p = pmd.power(
            Millivolts::new(980),
            &[Megahertz::XGENE2_NOMINAL; 4],
            Celsius::new(45.0),
        );
        assert!((p.as_f64() - 14.5).abs() < 1e-9);
    }

    #[test]
    fn dram_saving_falls_with_bandwidth() {
        // High-bandwidth workloads see a smaller relative refresh saving —
        // the Fig. 8b ordering (nw > srad > backprop > kmeans).
        let dram = DramDomain::xgene2(Watts::new(9.0));
        let low = dram.refresh_relaxation_savings(Milliseconds::DSN18_RELAXED_TREFP, 0.02);
        let high = dram.refresh_relaxation_savings(Milliseconds::DSN18_RELAXED_TREFP, 0.9);
        assert!(low > high);
        assert!(low > 0.35 && low < 0.55, "got {low}");
        assert!(high > 0.05 && high < 0.15, "got {high}");
    }

    #[test]
    fn dram_power_monotone_in_trefp() {
        let dram = DramDomain::xgene2(Watts::new(9.0));
        let p64 = dram.power(Milliseconds::new(64.0), 0.2);
        let p640 = dram.power(Milliseconds::new(640.0), 0.2);
        let p2283 = dram.power(Milliseconds::new(2283.0), 0.2);
        assert!(p64 > p640 && p640 > p2283);
    }

    #[test]
    #[should_panic(expected = "bandwidth utilization")]
    fn dram_rejects_bad_utilization() {
        let dram = DramDomain::xgene2(Watts::new(9.0));
        let _ = dram.power(Milliseconds::new(64.0), 1.5);
    }

    #[test]
    fn domain_kind_display() {
        assert_eq!(DomainKind::Pmd.to_string(), "PMD");
        assert_eq!(DomainKind::Dram.to_string(), "DRAM");
    }
}
