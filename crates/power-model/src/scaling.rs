//! Voltage/frequency power-scaling primitives.
//!
//! The paper's Fig. 5 trade-off arithmetic is exactly
//! `P_rel = (Σfᵢ / Σf_nom) · (V / V_nom)²` — dynamic CMOS power with all
//! cores sharing one voltage rail and per-PMD frequency plans. Leakage is
//! modelled separately with a super-linear voltage exponent, which the Fig. 9
//! per-domain savings require (a pure `V²` model under-predicts the PMD
//! domain's measured 20.3 % saving at 930 mV).

use crate::units::{Celsius, Megahertz, Millivolts};
use serde::{Deserialize, Serialize};

/// Dynamic (switching) power scaling: `α · (V/V₀)² · (f/f₀)`.
///
/// # Examples
///
/// ```
/// use power_model::scaling::DynamicScaling;
/// use power_model::units::{Megahertz, Millivolts};
///
/// let s = DynamicScaling::new(Millivolts::new(980), Megahertz::new(2400));
/// let factor = s.factor(Millivolts::new(915), Megahertz::new(2400));
/// assert!((factor - 0.872).abs() < 5e-4); // Fig. 5 first point
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DynamicScaling {
    nominal_voltage: Millivolts,
    nominal_frequency: Megahertz,
}

impl DynamicScaling {
    /// Creates a scaling rule anchored at the given nominal operating point.
    pub fn new(nominal_voltage: Millivolts, nominal_frequency: Megahertz) -> Self {
        DynamicScaling {
            nominal_voltage,
            nominal_frequency,
        }
    }

    /// The X-Gene2 nominal anchor (980 mV, 2.4 GHz).
    pub fn xgene2() -> Self {
        DynamicScaling::new(Millivolts::XGENE2_NOMINAL, Megahertz::XGENE2_NOMINAL)
    }

    /// Nominal voltage anchor.
    pub fn nominal_voltage(&self) -> Millivolts {
        self.nominal_voltage
    }

    /// Nominal frequency anchor.
    pub fn nominal_frequency(&self) -> Megahertz {
        self.nominal_frequency
    }

    /// Dimensionless dynamic-power factor at `(voltage, frequency)`.
    pub fn factor(&self, voltage: Millivolts, frequency: Megahertz) -> f64 {
        let v = voltage.ratio_to(self.nominal_voltage);
        let f = frequency.ratio_to(self.nominal_frequency);
        v * v * f
    }

    /// Dynamic-power factor for a *set* of frequency plans sharing one rail,
    /// e.g. the four X-Gene2 PMDs: `(Σfᵢ/Σf_nom) · (V/V₀)²`.
    pub fn factor_multi(&self, voltage: Millivolts, frequencies: &[Megahertz]) -> f64 {
        if frequencies.is_empty() {
            return 0.0;
        }
        let v = voltage.ratio_to(self.nominal_voltage);
        let fsum: f64 = frequencies
            .iter()
            .map(|f| f.ratio_to(self.nominal_frequency))
            .sum();
        v * v * fsum / frequencies.len() as f64
    }
}

/// Leakage (static) power scaling: `(V/V₀)^γ · exp(k·(T−T₀))`.
///
/// `γ` captures the combined effect of the `V·I_leak(V)` product with
/// DIBL-driven sub-threshold leakage; on the X-Gene2's 28 nm process the
/// Fig. 9 PMD-domain savings calibrate to `γ ≈ 6`. Leakage roughly doubles
/// every `ln(2)/k` kelvin.
///
/// # Examples
///
/// ```
/// use power_model::scaling::LeakageScaling;
/// use power_model::units::{Celsius, Millivolts};
///
/// let l = LeakageScaling::xgene2();
/// let f = l.factor(Millivolts::new(930), Celsius::new(45.0));
/// assert!(f < 0.75); // strong super-linear reduction at 930 mV
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LeakageScaling {
    nominal_voltage: Millivolts,
    nominal_temperature: Celsius,
    /// Voltage exponent γ.
    gamma: f64,
    /// Exponential temperature coefficient per kelvin.
    temp_coeff: f64,
}

impl LeakageScaling {
    /// Creates a leakage rule.
    ///
    /// # Panics
    ///
    /// Panics if `gamma` or `temp_coeff` is negative or not finite.
    pub fn new(
        nominal_voltage: Millivolts,
        nominal_temperature: Celsius,
        gamma: f64,
        temp_coeff: f64,
    ) -> Self {
        assert!(
            gamma.is_finite() && gamma >= 0.0,
            "gamma must be non-negative"
        );
        assert!(
            temp_coeff.is_finite() && temp_coeff >= 0.0,
            "temp_coeff must be non-negative"
        );
        LeakageScaling {
            nominal_voltage,
            nominal_temperature,
            gamma,
            temp_coeff,
        }
    }

    /// Calibrated X-Gene2 leakage rule (γ = 6.0, leakage doubles per ~23 K,
    /// anchored at 980 mV / 45 °C).
    pub fn xgene2() -> Self {
        LeakageScaling::new(Millivolts::XGENE2_NOMINAL, Celsius::new(45.0), 6.0, 0.03)
    }

    /// Voltage exponent γ.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Dimensionless leakage factor at `(voltage, temperature)`.
    pub fn factor(&self, voltage: Millivolts, temperature: Celsius) -> f64 {
        let v = voltage.ratio_to(self.nominal_voltage);
        let dt = temperature.delta(self.nominal_temperature);
        v.powf(self.gamma) * (self.temp_coeff * dt).exp()
    }
}

/// A process-corner leakage multiplier.
///
/// Sigma chips are selected "from both ends": TFF parts have high leakage
/// (beyond the nominal threshold) and TSS parts low leakage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CornerLeakage(f64);

impl CornerLeakage {
    /// Typical (TTT) leakage.
    pub const TYPICAL: CornerLeakage = CornerLeakage(1.0);
    /// Fast corner (TFF): high leakage.
    pub const FAST: CornerLeakage = CornerLeakage(1.65);
    /// Slow corner (TSS): low leakage.
    pub const SLOW: CornerLeakage = CornerLeakage(0.62);

    /// Creates a custom corner multiplier.
    ///
    /// # Panics
    ///
    /// Panics if the multiplier is not strictly positive and finite.
    pub fn new(multiplier: f64) -> Self {
        assert!(
            multiplier.is_finite() && multiplier > 0.0,
            "multiplier must be positive"
        );
        CornerLeakage(multiplier)
    }

    /// The leakage multiplier relative to a typical part.
    pub const fn multiplier(self) -> f64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mv(v: u32) -> Millivolts {
        Millivolts::new(v)
    }

    fn mhz(f: u32) -> Megahertz {
        Megahertz::new(f)
    }

    #[test]
    fn fig5_points_follow_from_dynamic_scaling() {
        // The six published Fig. 5 points are exactly (Σf/Σf_nom)·(V/980)².
        let s = DynamicScaling::xgene2();
        let full = [mhz(2400); 4];
        let one_slow = [mhz(1200), mhz(2400), mhz(2400), mhz(2400)];
        let two_slow = [mhz(1200), mhz(1200), mhz(2400), mhz(2400)];
        let three_slow = [mhz(1200), mhz(1200), mhz(1200), mhz(2400)];
        let all_slow = [mhz(1200); 4];
        let cases: [(&[Megahertz], u32, f64); 6] = [
            (&full, 980, 1.000),
            (&full, 915, 0.872),
            (&one_slow, 900, 0.738),
            (&two_slow, 885, 0.612),
            (&three_slow, 875, 0.498),
            (&all_slow, 850, 0.376),
        ];
        for (freqs, v, expect) in cases {
            let got = s.factor_multi(mv(v), freqs);
            assert!(
                (got - expect).abs() < 1.5e-3,
                "V={v}mV: got {got:.4}, paper {expect:.4}"
            );
        }
    }

    #[test]
    fn dynamic_factor_is_one_at_nominal() {
        let s = DynamicScaling::xgene2();
        let f = s.factor(Millivolts::XGENE2_NOMINAL, Megahertz::XGENE2_NOMINAL);
        assert!((f - 1.0).abs() < 1e-12);
    }

    #[test]
    fn factor_multi_empty_is_zero() {
        assert_eq!(DynamicScaling::xgene2().factor_multi(mv(980), &[]), 0.0);
    }

    #[test]
    fn leakage_factor_at_nominal_is_one() {
        let l = LeakageScaling::xgene2();
        let f = l.factor(Millivolts::XGENE2_NOMINAL, Celsius::new(45.0));
        assert!((f - 1.0).abs() < 1e-12);
    }

    #[test]
    fn leakage_is_superlinear_in_voltage() {
        let l = LeakageScaling::xgene2();
        let t = Celsius::new(45.0);
        let at_930 = l.factor(mv(930), t);
        let quadratic = {
            let r = mv(930).ratio_to(mv(980));
            r * r
        };
        assert!(at_930 < quadratic, "γ=6 leakage must fall faster than V²");
    }

    #[test]
    fn leakage_rises_with_temperature() {
        let l = LeakageScaling::xgene2();
        let cold = l.factor(mv(980), Celsius::new(45.0));
        let hot = l.factor(mv(980), Celsius::new(68.0));
        assert!(hot / cold > 1.9 && hot / cold < 2.1, "doubles per ~23 K");
    }

    #[test]
    fn corner_ordering() {
        assert!(CornerLeakage::FAST.multiplier() > CornerLeakage::TYPICAL.multiplier());
        assert!(CornerLeakage::SLOW.multiplier() < CornerLeakage::TYPICAL.multiplier());
    }

    #[test]
    #[should_panic(expected = "multiplier must be positive")]
    fn corner_rejects_zero() {
        let _ = CornerLeakage::new(0.0);
    }
}
