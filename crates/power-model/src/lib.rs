//! Power models for the DSN'18 ARMv8 guardband study.
//!
//! This crate provides the analytic power models the study's exploitation
//! results rest on:
//!
//! * [`units`] — millivolt / megahertz / watt / °C / ms newtypes used across
//!   the whole workspace;
//! * [`scaling`] — dynamic (`V²f`) and leakage (`V^γ`, temperature-
//!   exponential) scaling rules;
//! * [`domain`] — per-rail models of the X-Gene2 PMD, SoC and DRAM supply
//!   domains;
//! * [`tradeoff`] — the Fig. 5 power/performance trade-off curve;
//! * [`server`] — the calibrated whole-board model behind Fig. 9.
//!
//! # Examples
//!
//! Reproduce the paper's headline exploitation number (20.2 % total server
//! power saving at the characterized safe point):
//!
//! ```
//! use power_model::server::{OperatingPoint, ServerLoad, ServerPowerModel};
//!
//! let server = ServerPowerModel::xgene2();
//! let load = ServerLoad::jammer_detector();
//! let nominal = server.power(&OperatingPoint::nominal(), &load).total();
//! let safe = server.power(&OperatingPoint::dsn18_safe_point(), &load).total();
//! println!("{nominal} -> {safe}");
//! assert!((nominal.savings_to(safe) - 0.202).abs() < 0.01);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod domain;
pub mod scaling;
pub mod server;
pub mod tradeoff;
pub mod units;

pub use domain::{ComputeDomain, DomainKind, DramDomain};
pub use scaling::{CornerLeakage, DynamicScaling, LeakageScaling};
pub use server::{OperatingPoint, PowerBreakdown, ServerLoad, ServerPowerModel};
pub use tradeoff::{FrequencyPlan, TradeoffCurve, TradeoffPoint};
pub use units::{Celsius, Megahertz, Milliseconds, Millivolts, Watts};
