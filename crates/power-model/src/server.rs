//! Whole-server power model (Fig. 9).
//!
//! Aggregates the three measurable X-Gene2 supply domains plus a fixed
//! remainder into the board-level power reported by SLIMpro. Calibrated so
//! the jammer-detector exploitation experiment reproduces the published
//! 31.1 W → 24.8 W (20.2 %) result with per-domain savings of 20.3 % (PMD),
//! 6.9 % (SoC) and 33.3 % (DRAM).

use crate::domain::{ComputeDomain, DomainKind, DramDomain};
use crate::tradeoff::FrequencyPlan;
use crate::units::{Celsius, Megahertz, Milliseconds, Millivolts, Watts};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A complete server operating point: the three knobs the paper turns.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// PMD-domain (core) rail voltage.
    pub pmd_voltage: Millivolts,
    /// SoC-domain rail voltage.
    pub soc_voltage: Millivolts,
    /// Per-PMD frequency plan.
    pub plan: FrequencyPlan,
    /// DRAM refresh period.
    pub trefp: Milliseconds,
}

impl OperatingPoint {
    /// Manufacturer-nominal operating point: 980 mV rails, 2.4 GHz, 64 ms.
    pub fn nominal() -> Self {
        OperatingPoint {
            pmd_voltage: Millivolts::XGENE2_NOMINAL,
            soc_voltage: Millivolts::XGENE2_NOMINAL,
            plan: FrequencyPlan::all_nominal(),
            trefp: Milliseconds::DDR3_NOMINAL_TREFP,
        }
    }

    /// The paper's characterized safe point for the TTT chip: PMD domain at
    /// 930 mV, SoC domain at 920 mV, DRAM refresh relaxed 35× (§IV.D).
    pub fn dsn18_safe_point() -> Self {
        OperatingPoint {
            pmd_voltage: Millivolts::new(930),
            soc_voltage: Millivolts::new(920),
            plan: FrequencyPlan::all_nominal(),
            trefp: Milliseconds::DSN18_RELAXED_TREFP,
        }
    }
}

impl fmt::Display for OperatingPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PMD {} / SoC {} / {} / TREFP {}",
            self.pmd_voltage, self.soc_voltage, self.plan, self.trefp
        )
    }
}

/// The workload-dependent inputs to the server power model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerLoad {
    /// DRAM bandwidth utilization in `[0, 1]`.
    pub dram_bandwidth_utilization: f64,
    /// Die/board temperature.
    pub temperature: Celsius,
}

impl ServerLoad {
    /// The 4-instance jammer detector load: ~10.7 % DRAM bandwidth at 45 °C.
    pub fn jammer_detector() -> Self {
        ServerLoad {
            dram_bandwidth_utilization: 0.107,
            temperature: Celsius::new(45.0),
        }
    }
}

/// Per-domain power readings, as SLIMpro would report them.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerBreakdown {
    /// PMD (core) domain power.
    pub pmd: Watts,
    /// SoC domain power.
    pub soc: Watts,
    /// DRAM rail power.
    pub dram: Watts,
    /// Voltage-independent remainder.
    pub fixed: Watts,
}

impl PowerBreakdown {
    /// Total board power.
    pub fn total(&self) -> Watts {
        self.pmd + self.soc + self.dram + self.fixed
    }

    /// Power of one domain.
    pub fn domain(&self, kind: DomainKind) -> Watts {
        match kind {
            DomainKind::Pmd => self.pmd,
            DomainKind::Soc => self.soc,
            DomainKind::Dram => self.dram,
            DomainKind::Fixed => self.fixed,
        }
    }
}

impl fmt::Display for PowerBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PMD {} + SoC {} + DRAM {} + fixed {} = {}",
            self.pmd,
            self.soc,
            self.dram,
            self.fixed,
            self.total()
        )
    }
}

/// The calibrated whole-server model.
///
/// # Examples
///
/// ```
/// use power_model::server::{OperatingPoint, ServerLoad, ServerPowerModel};
///
/// let server = ServerPowerModel::xgene2();
/// let load = ServerLoad::jammer_detector();
/// let nominal = server.power(&OperatingPoint::nominal(), &load);
/// let safe = server.power(&OperatingPoint::dsn18_safe_point(), &load);
/// let savings = nominal.total().savings_to(safe.total());
/// assert!((nominal.total().as_f64() - 31.1).abs() < 0.15);
/// assert!((savings - 0.202).abs() < 0.01);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerPowerModel {
    pmd: ComputeDomain,
    soc: ComputeDomain,
    dram: DramDomain,
    fixed: Watts,
}

impl ServerPowerModel {
    /// Creates a server model from its domain models.
    pub fn new(pmd: ComputeDomain, soc: ComputeDomain, dram: DramDomain, fixed: Watts) -> Self {
        ServerPowerModel {
            pmd,
            soc,
            dram,
            fixed,
        }
    }

    /// The calibrated X-Gene2 board: PMD 14.7 W, SoC 5.0 W, DRAM ≈ 8.9 W
    /// (at the jammer reference load), fixed 2.5 W — 31.1 W total under the
    /// jammer detector at the nominal point.
    pub fn xgene2() -> Self {
        ServerPowerModel::new(
            ComputeDomain::xgene2_pmd(Watts::new(14.7)),
            ComputeDomain::xgene2_soc(Watts::new(5.0)),
            DramDomain::xgene2(Watts::new(9.0)),
            Watts::new(2.5),
        )
    }

    /// Per-domain power at an operating point under a load.
    pub fn power(&self, point: &OperatingPoint, load: &ServerLoad) -> PowerBreakdown {
        let pmd = self.pmd.power(
            point.pmd_voltage,
            point.plan.frequencies(),
            load.temperature,
        );
        let soc = self.soc.power(
            point.soc_voltage,
            &[Megahertz::XGENE2_NOMINAL],
            load.temperature,
        );
        let dram = self
            .dram
            .power(point.trefp, load.dram_bandwidth_utilization);
        PowerBreakdown {
            pmd,
            soc,
            dram,
            fixed: self.fixed,
        }
    }

    /// Fractional total-power saving of `point` relative to nominal under
    /// the same load.
    pub fn total_savings(&self, point: &OperatingPoint, load: &ServerLoad) -> f64 {
        let nominal = self.power(&OperatingPoint::nominal(), load);
        let at_point = self.power(point, load);
        nominal.total().savings_to(at_point.total())
    }

    /// Absolute total-power saving of `point` relative to nominal under
    /// the same load, in watts (clamped at zero: a point that costs more
    /// than nominal saves nothing). Fleet projections sum this across
    /// boards, which a bare fraction cannot do.
    pub fn savings_watts(&self, point: &OperatingPoint, load: &ServerLoad) -> Watts {
        let nominal = self.power(&OperatingPoint::nominal(), load).total();
        let at_point = self.power(point, load).total();
        Watts::new((nominal.as_f64() - at_point.as_f64()).max(0.0))
    }

    /// Per-domain fractional savings of `point` relative to nominal.
    pub fn domain_savings(
        &self,
        point: &OperatingPoint,
        load: &ServerLoad,
    ) -> Vec<(DomainKind, f64)> {
        let nominal = self.power(&OperatingPoint::nominal(), load);
        let at_point = self.power(point, load);
        DomainKind::ALL
            .iter()
            .map(|kind| {
                (
                    *kind,
                    nominal.domain(*kind).savings_to(at_point.domain(*kind)),
                )
            })
            .collect()
    }
}

impl Default for ServerPowerModel {
    fn default() -> Self {
        ServerPowerModel::xgene2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_total_power_and_savings() {
        let server = ServerPowerModel::xgene2();
        let load = ServerLoad::jammer_detector();
        let nominal = server.power(&OperatingPoint::nominal(), &load);
        let safe = server.power(&OperatingPoint::dsn18_safe_point(), &load);
        assert!(
            (nominal.total().as_f64() - 31.1).abs() < 0.15,
            "nominal {}",
            nominal.total()
        );
        assert!(
            (safe.total().as_f64() - 24.8).abs() < 0.25,
            "safe {}",
            safe.total()
        );
        let savings = nominal.total().savings_to(safe.total());
        assert!((savings - 0.202).abs() < 0.01, "savings {savings}");
    }

    #[test]
    fn fig9_per_domain_savings() {
        let server = ServerPowerModel::xgene2();
        let load = ServerLoad::jammer_detector();
        let savings = server.domain_savings(&OperatingPoint::dsn18_safe_point(), &load);
        let get = |kind: DomainKind| {
            savings
                .iter()
                .find(|(k, _)| *k == kind)
                .map(|(_, s)| *s)
                .unwrap()
        };
        assert!(
            (get(DomainKind::Pmd) - 0.203).abs() < 0.01,
            "PMD {}",
            get(DomainKind::Pmd)
        );
        assert!(
            (get(DomainKind::Soc) - 0.069).abs() < 0.01,
            "SoC {}",
            get(DomainKind::Soc)
        );
        assert!(
            (get(DomainKind::Dram) - 0.333).abs() < 0.01,
            "DRAM {}",
            get(DomainKind::Dram)
        );
        assert_eq!(get(DomainKind::Fixed), 0.0);
    }

    #[test]
    fn savings_are_zero_at_nominal() {
        let server = ServerPowerModel::xgene2();
        let load = ServerLoad::jammer_detector();
        let s = server.total_savings(&OperatingPoint::nominal(), &load);
        assert!(s.abs() < 1e-12);
    }

    #[test]
    fn savings_watts_agrees_with_the_fraction() {
        let server = ServerPowerModel::xgene2();
        let load = ServerLoad::jammer_detector();
        let point = OperatingPoint::dsn18_safe_point();
        let watts = server.savings_watts(&point, &load).as_f64();
        let nominal = server.power(&OperatingPoint::nominal(), &load).total();
        let fraction = server.total_savings(&point, &load);
        assert!((watts - fraction * nominal.as_f64()).abs() < 1e-12);
        assert!((watts - 6.3).abs() < 0.3, "savings {watts} W");
        assert_eq!(
            server.savings_watts(&OperatingPoint::nominal(), &load),
            Watts::ZERO
        );
    }

    #[test]
    fn breakdown_total_sums_domains() {
        let server = ServerPowerModel::xgene2();
        let load = ServerLoad::jammer_detector();
        let b = server.power(&OperatingPoint::nominal(), &load);
        let sum = DomainKind::ALL.iter().map(|k| b.domain(*k)).sum::<Watts>();
        assert!((b.total().as_f64() - sum.as_f64()).abs() < 1e-12);
    }

    #[test]
    fn operating_point_display_mentions_all_knobs() {
        let s = OperatingPoint::dsn18_safe_point().to_string();
        assert!(s.contains("930mV") && s.contains("920mV") && s.contains("2.283s"));
    }
}
