//! Physical-unit newtypes shared across the guardband study.
//!
//! The characterization framework manipulates voltages in millivolt steps
//! (the X-Gene2 regulator granularity), frequencies in MHz and power in
//! watts. Newtypes keep these from being mixed up ([C-NEWTYPE]) and give a
//! single place for the conversions the paper's arithmetic relies on.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Sub};

/// A supply voltage in millivolts.
///
/// The X-Gene2 PMD and SoC power domains are programmed in integer
/// millivolts; the paper's nominal PMD supply is 980 mV.
///
/// # Examples
///
/// ```
/// use power_model::units::Millivolts;
///
/// let nominal = Millivolts::XGENE2_NOMINAL;
/// let vmin = Millivolts::new(885);
/// assert_eq!((nominal - vmin).as_u32(), 95);
/// assert!(vmin < nominal);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Millivolts(u32);

impl Millivolts {
    /// Nominal PMD supply voltage of the X-Gene2 (980 mV).
    pub const XGENE2_NOMINAL: Millivolts = Millivolts(980);
    /// Nominal SoC-domain supply voltage of the X-Gene2 (950 mV).
    pub const XGENE2_SOC_NOMINAL: Millivolts = Millivolts(950);

    /// Creates a voltage from a millivolt count.
    pub const fn new(mv: u32) -> Self {
        Millivolts(mv)
    }

    /// Returns the raw millivolt count.
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    /// Returns the voltage in volts.
    pub fn as_volts(self) -> f64 {
        f64::from(self.0) / 1000.0
    }

    /// Ratio of this voltage to `nominal` (dimensionless, e.g. `915/980`).
    pub fn ratio_to(self, nominal: Millivolts) -> f64 {
        f64::from(self.0) / f64::from(nominal.0)
    }

    /// Saturating subtraction of a millivolt step, used by undervolting
    /// loops that walk down from nominal.
    pub fn step_down(self, step_mv: u32) -> Millivolts {
        Millivolts(self.0.saturating_sub(step_mv))
    }

    /// Guardband (headroom) of this voltage relative to `vmin`, as a
    /// fraction of this voltage. The paper reports e.g. "at least 18.4 %"
    /// for the TTT chip: `(980 − 885) / 980` for its worst SPEC program
    /// (the computation is `guardband_fraction` of nominal w.r.t. vmin).
    pub fn guardband_fraction(self, vmin: Millivolts) -> f64 {
        if vmin >= self {
            return 0.0;
        }
        f64::from(self.0 - vmin.0) / f64::from(self.0)
    }
}

impl fmt::Display for Millivolts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}mV", self.0)
    }
}

impl Add for Millivolts {
    type Output = Millivolts;
    fn add(self, rhs: Millivolts) -> Millivolts {
        Millivolts(self.0 + rhs.0)
    }
}

impl Sub for Millivolts {
    type Output = Millivolts;
    /// Saturating difference: undervolting below 0 mV is meaningless.
    fn sub(self, rhs: Millivolts) -> Millivolts {
        Millivolts(self.0.saturating_sub(rhs.0))
    }
}

/// A clock frequency in megahertz.
///
/// # Examples
///
/// ```
/// use power_model::units::Megahertz;
///
/// let full = Megahertz::XGENE2_NOMINAL;
/// let half = Megahertz::XGENE2_HALF;
/// assert_eq!(full.as_u32(), 2400);
/// assert!((half.ratio_to(full) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Megahertz(u32);

impl Megahertz {
    /// Nominal X-Gene2 core clock (2.4 GHz).
    pub const XGENE2_NOMINAL: Megahertz = Megahertz(2400);
    /// The reduced PMD clock used in the paper's Fig. 5 trade-off (1.2 GHz).
    pub const XGENE2_HALF: Megahertz = Megahertz(1200);

    /// Creates a frequency from a megahertz count.
    pub const fn new(mhz: u32) -> Self {
        Megahertz(mhz)
    }

    /// Returns the raw megahertz count.
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    /// Frequency in Hz.
    pub fn as_hz(self) -> f64 {
        f64::from(self.0) * 1e6
    }

    /// Ratio of this frequency to `nominal`.
    pub fn ratio_to(self, nominal: Megahertz) -> f64 {
        f64::from(self.0) / f64::from(nominal.0)
    }
}

impl fmt::Display for Megahertz {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_multiple_of(100) && self.0 >= 1000 {
            write!(f, "{:.1}GHz", f64::from(self.0) / 1000.0)
        } else {
            write!(f, "{}MHz", self.0)
        }
    }
}

/// Electrical power in watts.
///
/// # Examples
///
/// ```
/// use power_model::units::Watts;
///
/// let nominal = Watts::new(31.1);
/// let undervolted = Watts::new(24.8);
/// let savings = nominal.savings_to(undervolted);
/// assert!((savings - 0.2025).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Watts(f64);

impl Watts {
    /// Creates a power value.
    ///
    /// # Panics
    ///
    /// Panics if `w` is negative or not finite.
    pub fn new(w: f64) -> Self {
        assert!(
            w.is_finite() && w >= 0.0,
            "power must be finite and non-negative, got {w}"
        );
        Watts(w)
    }

    /// Zero watts.
    pub const ZERO: Watts = Watts(0.0);

    /// Returns the power in watts.
    pub const fn as_f64(self) -> f64 {
        self.0
    }

    /// Fractional savings going from `self` (baseline) to `other`.
    ///
    /// Returns `0.0` when the baseline is zero.
    pub fn savings_to(self, other: Watts) -> f64 {
        if self.0 <= 0.0 {
            return 0.0;
        }
        (self.0 - other.0) / self.0
    }

    /// Scales the power by a dimensionless factor.
    pub fn scaled(self, factor: f64) -> Watts {
        Watts::new(self.0 * factor)
    }
}

impl fmt::Display for Watts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}W", self.0)
    }
}

impl Add for Watts {
    type Output = Watts;
    fn add(self, rhs: Watts) -> Watts {
        Watts(self.0 + rhs.0)
    }
}

impl Sub for Watts {
    type Output = Watts;
    fn sub(self, rhs: Watts) -> Watts {
        Watts((self.0 - rhs.0).max(0.0))
    }
}

impl std::iter::Sum for Watts {
    fn sum<I: Iterator<Item = Watts>>(iter: I) -> Watts {
        iter.fold(Watts::ZERO, Add::add)
    }
}

/// A temperature in degrees Celsius.
///
/// DRAM retention characterization in the paper runs at regulated 50 °C and
/// 60 °C set points.
///
/// # Examples
///
/// ```
/// use power_model::units::Celsius;
///
/// let t = Celsius::new(50.0);
/// assert!((t.as_f64() - 50.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Celsius(f64);

impl Celsius {
    /// Creates a temperature.
    ///
    /// # Panics
    ///
    /// Panics if `t` is not finite.
    pub fn new(t: f64) -> Self {
        assert!(t.is_finite(), "temperature must be finite");
        Celsius(t)
    }

    /// Returns the temperature in °C.
    pub const fn as_f64(self) -> f64 {
        self.0
    }

    /// Difference `self − other` in kelvin (== °C difference).
    pub fn delta(self, other: Celsius) -> f64 {
        self.0 - other.0
    }
}

impl fmt::Display for Celsius {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}°C", self.0)
    }
}

/// A time span in milliseconds, used for DRAM refresh periods.
///
/// # Examples
///
/// ```
/// use power_model::units::Milliseconds;
///
/// let nominal = Milliseconds::DDR3_NOMINAL_TREFP;
/// let relaxed = nominal.relaxed(35.0);
/// assert!((relaxed.as_f64() - 2240.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Milliseconds(f64);

impl Milliseconds {
    /// The DDR3 nominal refresh period (64 ms for the whole array).
    pub const DDR3_NOMINAL_TREFP: Milliseconds = Milliseconds(64.0);
    /// The paper's 35.7× relaxed refresh period, 2.283 s.
    pub const DSN18_RELAXED_TREFP: Milliseconds = Milliseconds(2283.0);

    /// Creates a duration.
    ///
    /// # Panics
    ///
    /// Panics if `ms` is negative or not finite.
    pub fn new(ms: f64) -> Self {
        assert!(
            ms.is_finite() && ms >= 0.0,
            "duration must be finite and non-negative"
        );
        Milliseconds(ms)
    }

    /// Returns the duration in milliseconds.
    pub const fn as_f64(self) -> f64 {
        self.0
    }

    /// Returns the duration in seconds.
    pub fn as_secs(self) -> f64 {
        self.0 / 1000.0
    }

    /// Multiplies the period by a relaxation factor (e.g. 35×).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite or is negative.
    pub fn relaxed(self, factor: f64) -> Milliseconds {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "relaxation factor must be non-negative"
        );
        Milliseconds(self.0 * factor)
    }

    /// Relaxation factor of `self` relative to `nominal`.
    pub fn relaxation_factor(self, nominal: Milliseconds) -> f64 {
        if nominal.0 <= 0.0 {
            return 0.0;
        }
        self.0 / nominal.0
    }
}

impl fmt::Display for Milliseconds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1000.0 {
            write!(f, "{:.3}s", self.0 / 1000.0)
        } else {
            write!(f, "{:.1}ms", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn millivolt_ratio_matches_paper_fig5_first_point() {
        // (915/980)^2 = 0.872 is the paper's first Fig. 5 point.
        let r = Millivolts::new(915).ratio_to(Millivolts::XGENE2_NOMINAL);
        assert!((r * r - 0.872).abs() < 5e-4);
    }

    #[test]
    fn guardband_fraction_ttt_worst_spec() {
        // TTT worst-program Vmin is 885 mV → at least 9.7 % voltage headroom;
        // the 18.4 % figure in the paper is relative energy (V^2) headroom.
        let gb = Millivolts::XGENE2_NOMINAL.guardband_fraction(Millivolts::new(885));
        assert!((gb - 95.0 / 980.0).abs() < 1e-12);
    }

    #[test]
    fn guardband_fraction_is_zero_when_vmin_at_or_above() {
        let v = Millivolts::new(900);
        assert_eq!(v.guardband_fraction(Millivolts::new(900)), 0.0);
        assert_eq!(v.guardband_fraction(Millivolts::new(950)), 0.0);
    }

    #[test]
    fn step_down_saturates() {
        assert_eq!(Millivolts::new(5).step_down(10), Millivolts::new(0));
        assert_eq!(Millivolts::new(980).step_down(5), Millivolts::new(975));
    }

    #[test]
    fn millivolt_add_sub() {
        let a = Millivolts::new(900) + Millivolts::new(80);
        assert_eq!(a, Millivolts::XGENE2_NOMINAL);
        assert_eq!(
            Millivolts::new(100) - Millivolts::new(300),
            Millivolts::new(0)
        );
    }

    #[test]
    fn frequency_ratio_and_display() {
        assert_eq!(Megahertz::XGENE2_NOMINAL.to_string(), "2.4GHz");
        assert!((Megahertz::XGENE2_HALF.ratio_to(Megahertz::XGENE2_NOMINAL) - 0.5).abs() < 1e-12);
        assert_eq!(Megahertz::new(1333).to_string(), "1333MHz");
    }

    #[test]
    fn watts_savings_paper_headline() {
        let s = Watts::new(31.1).savings_to(Watts::new(24.8));
        assert!((s - 0.2026).abs() < 1e-3);
    }

    #[test]
    fn watts_sum_and_sub_saturate() {
        let total: Watts = [Watts::new(1.0), Watts::new(2.5)].into_iter().sum();
        assert!((total.as_f64() - 3.5).abs() < 1e-12);
        assert_eq!((Watts::new(1.0) - Watts::new(2.0)).as_f64(), 0.0);
    }

    #[test]
    #[should_panic(expected = "power must be finite")]
    fn watts_rejects_negative() {
        let _ = Watts::new(-1.0);
    }

    #[test]
    fn refresh_relaxation_factor() {
        let f =
            Milliseconds::DSN18_RELAXED_TREFP.relaxation_factor(Milliseconds::DDR3_NOMINAL_TREFP);
        // 2283/64 = 35.67×; the paper rounds this to "35x".
        assert!((f - 35.67).abs() < 0.01);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Millivolts::new(980).to_string(), "980mV");
        assert_eq!(Watts::new(31.1).to_string(), "31.10W");
        assert_eq!(Celsius::new(50.0).to_string(), "50.0°C");
        assert_eq!(Milliseconds::new(2283.0).to_string(), "2.283s");
        assert_eq!(Milliseconds::new(64.0).to_string(), "64.0ms");
    }
}
