//! The Fig. 5 power/performance trade-off model.
//!
//! When the 8-benchmark SPEC mix runs on all 8 cores, the shared PMD rail
//! must satisfy the *weakest* loaded PMD. Slowing the weakest PMDs to
//! 1.2 GHz lowers the rail's required Vmin further, trading throughput for
//! quadratic power savings. The published curve follows exactly from
//! `P_rel = (Σfᵢ/Σf_nom) · (V/980 mV)²`.

use crate::scaling::DynamicScaling;
use crate::units::{Megahertz, Millivolts};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of processor modules (PMDs) on the X-Gene2.
pub const PMD_COUNT: usize = 4;

/// A per-PMD frequency assignment.
///
/// # Examples
///
/// ```
/// use power_model::tradeoff::FrequencyPlan;
/// use power_model::units::Megahertz;
///
/// let plan = FrequencyPlan::with_slow_pmds(2);
/// assert!((plan.relative_performance() - 0.75).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FrequencyPlan {
    frequencies: [Megahertz; PMD_COUNT],
}

impl FrequencyPlan {
    /// All PMDs at the nominal 2.4 GHz.
    pub fn all_nominal() -> Self {
        FrequencyPlan {
            frequencies: [Megahertz::XGENE2_NOMINAL; PMD_COUNT],
        }
    }

    /// The first `slow` PMDs (the weakest ones, PMD0 upward) at 1.2 GHz and
    /// the rest at 2.4 GHz — the knob the paper turns in Fig. 5.
    ///
    /// # Panics
    ///
    /// Panics if `slow > 4`.
    pub fn with_slow_pmds(slow: usize) -> Self {
        assert!(slow <= PMD_COUNT, "at most {PMD_COUNT} PMDs");
        let mut frequencies = [Megahertz::XGENE2_NOMINAL; PMD_COUNT];
        for f in frequencies.iter_mut().take(slow) {
            *f = Megahertz::XGENE2_HALF;
        }
        FrequencyPlan { frequencies }
    }

    /// Creates a plan from explicit per-PMD frequencies.
    pub fn from_frequencies(frequencies: [Megahertz; PMD_COUNT]) -> Self {
        FrequencyPlan { frequencies }
    }

    /// Per-PMD frequencies, PMD0 first.
    pub fn frequencies(&self) -> &[Megahertz; PMD_COUNT] {
        &self.frequencies
    }

    /// Number of PMDs running below nominal frequency.
    pub fn slow_pmd_count(&self) -> usize {
        self.frequencies
            .iter()
            .filter(|f| **f < Megahertz::XGENE2_NOMINAL)
            .count()
    }

    /// Aggregate throughput relative to all PMDs at nominal frequency
    /// (`Σfᵢ / Σf_nom`), the x-axis of Fig. 5.
    pub fn relative_performance(&self) -> f64 {
        let sum: f64 = self
            .frequencies
            .iter()
            .map(|f| f.ratio_to(Megahertz::XGENE2_NOMINAL))
            .sum();
        sum / PMD_COUNT as f64
    }
}

impl Default for FrequencyPlan {
    fn default() -> Self {
        FrequencyPlan::all_nominal()
    }
}

impl fmt::Display for FrequencyPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}, {}, {}, {}]",
            self.frequencies[0], self.frequencies[1], self.frequencies[2], self.frequencies[3]
        )
    }
}

/// One point on the power/performance trade-off curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TradeoffPoint {
    /// Shared PMD-rail voltage at this point.
    pub voltage: Millivolts,
    /// Frequency plan at this point.
    pub plan: FrequencyPlan,
    /// Throughput relative to the nominal configuration (`0.0..=1.0`).
    pub relative_performance: f64,
    /// Dynamic power relative to the nominal configuration.
    pub relative_power: f64,
}

impl TradeoffPoint {
    /// Fractional power saving relative to nominal.
    pub fn power_savings(&self) -> f64 {
        1.0 - self.relative_power
    }

    /// Fractional performance loss relative to nominal.
    pub fn performance_loss(&self) -> f64 {
        1.0 - self.relative_performance
    }
}

/// The Fig. 5 curve: a voltage requirement per frequency plan, evaluated
/// through the dynamic-scaling model.
///
/// # Examples
///
/// ```
/// use power_model::tradeoff::TradeoffCurve;
///
/// let curve = TradeoffCurve::xgene2_fig5();
/// let points = curve.points();
/// // Headline numbers: 12.8% savings at no performance loss,
/// // 38.8% at 25% performance loss.
/// assert!((points[1].power_savings() - 0.128).abs() < 2e-3);
/// assert!((points[3].power_savings() - 0.388).abs() < 2e-3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TradeoffCurve {
    scaling: DynamicScaling,
    /// `(plan, required rail voltage)` in decreasing-performance order.
    steps: Vec<(FrequencyPlan, Millivolts)>,
}

impl TradeoffCurve {
    /// Builds a curve from `(plan, required voltage)` steps.
    pub fn new(scaling: DynamicScaling, steps: Vec<(FrequencyPlan, Millivolts)>) -> Self {
        TradeoffCurve { scaling, steps }
    }

    /// The curve measured in the paper for the 8-benchmark SPEC mix
    /// (bwaves, cactusADM, dealII, gromacs, leslie3d, mcf, milc, namd):
    /// the safe rail voltage per number of halved PMDs. The 980 mV nominal
    /// point is included first.
    ///
    /// The published labels are 915, 900, 885, 875 and 850 mV (the last
    /// label is garbled to "760mV" in the camera-ready PDF text layer; the
    /// printed 37.6 % relative power pins it to 850 mV).
    pub fn xgene2_fig5() -> Self {
        let voltages = [980u32, 915, 900, 885, 875, 850];
        let mut steps = Vec::with_capacity(voltages.len());
        steps.push((FrequencyPlan::all_nominal(), Millivolts::new(voltages[0])));
        steps.push((FrequencyPlan::all_nominal(), Millivolts::new(voltages[1])));
        for (slow, v) in voltages[2..].iter().enumerate() {
            steps.push((FrequencyPlan::with_slow_pmds(slow + 1), Millivolts::new(*v)));
        }
        TradeoffCurve::new(DynamicScaling::xgene2(), steps)
    }

    /// Evaluates every step into a trade-off point.
    pub fn points(&self) -> Vec<TradeoffPoint> {
        self.steps
            .iter()
            .map(|(plan, voltage)| {
                let relative_power = self.scaling.factor_multi(*voltage, plan.frequencies());
                TradeoffPoint {
                    voltage: *voltage,
                    plan: *plan,
                    relative_performance: plan.relative_performance(),
                    relative_power,
                }
            })
            .collect()
    }

    /// The best (lowest-power) point whose performance loss does not exceed
    /// `max_performance_loss`, or `None` if the curve is empty.
    pub fn best_within_loss(&self, max_performance_loss: f64) -> Option<TradeoffPoint> {
        self.points()
            .into_iter()
            .filter(|p| p.performance_loss() <= max_performance_loss + 1e-12)
            .min_by(|a, b| a.relative_power.total_cmp(&b.relative_power))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_reproduces_all_published_points() {
        let expected = [
            (1.000, 1.000),
            (1.000, 0.872),
            (0.875, 0.738),
            (0.750, 0.612),
            (0.625, 0.498),
            (0.500, 0.376),
        ];
        let points = TradeoffCurve::xgene2_fig5().points();
        assert_eq!(points.len(), expected.len());
        for (p, (perf, power)) in points.iter().zip(expected) {
            assert!((p.relative_performance - perf).abs() < 1e-9, "{p:?}");
            assert!((p.relative_power - power).abs() < 1.5e-3, "{p:?}");
        }
    }

    #[test]
    fn headline_savings() {
        let curve = TradeoffCurve::xgene2_fig5();
        // 12.8% with no performance loss.
        let free = curve.best_within_loss(0.0).unwrap();
        assert!((free.power_savings() - 0.128).abs() < 2e-3);
        // 38.8% with 25% performance loss (2 weakest PMDs at 1.2 GHz, 885 mV).
        let quarter = curve.best_within_loss(0.25).unwrap();
        assert!((quarter.power_savings() - 0.388).abs() < 2e-3);
        assert_eq!(quarter.voltage, Millivolts::new(885));
        assert_eq!(quarter.plan.slow_pmd_count(), 2);
    }

    #[test]
    fn curve_power_is_monotone_decreasing() {
        let points = TradeoffCurve::xgene2_fig5().points();
        for w in points.windows(2) {
            assert!(w[1].relative_power < w[0].relative_power);
        }
    }

    #[test]
    fn frequency_plan_counts_slow_pmds() {
        assert_eq!(FrequencyPlan::all_nominal().slow_pmd_count(), 0);
        assert_eq!(FrequencyPlan::with_slow_pmds(3).slow_pmd_count(), 3);
    }

    #[test]
    #[should_panic(expected = "at most 4")]
    fn frequency_plan_rejects_too_many() {
        let _ = FrequencyPlan::with_slow_pmds(5);
    }

    #[test]
    fn best_within_loss_respects_bound() {
        let curve = TradeoffCurve::xgene2_fig5();
        let p = curve.best_within_loss(0.10).unwrap();
        assert!(p.performance_loss() <= 0.10 + 1e-12);
        assert_eq!(p.voltage, Millivolts::new(915));
    }

    #[test]
    fn plan_display() {
        let plan = FrequencyPlan::with_slow_pmds(1);
        assert_eq!(plan.to_string(), "[1.2GHz, 2.4GHz, 2.4GHz, 2.4GHz]");
    }
}
