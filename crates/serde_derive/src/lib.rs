//! `#[derive(Serialize, Deserialize)]` for the in-tree serde stand-in.
//!
//! The offline build environment has no `syn`/`quote`, so this crate
//! parses the derive input token stream by hand. It supports the type
//! shapes used in this workspace: non-generic structs (named, tuple,
//! unit) and non-generic enums (unit, tuple and struct variants, with
//! optional explicit discriminants), plus the field attributes
//! `#[serde(skip)]`, `#[serde(default)]` and
//! `#[serde(skip, default = "path")]`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Clone, Default)]
struct FieldAttr {
    skip: bool,
    /// `Some("")` means `Default::default()`; `Some(path)` calls `path()`.
    default: Option<String>,
}

#[derive(Debug, Clone)]
struct Field {
    name: String,
    attr: FieldAttr,
}

#[derive(Debug)]
enum Fields {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => serialize_struct(name, fields),
        Item::Enum { name, variants } => serialize_enum(name, variants),
    };
    code.parse().expect("generated Serialize impl must parse")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => deserialize_struct(name, fields),
        Item::Enum { name, variants } => deserialize_enum(name, variants),
    };
    code.parse().expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);
    let keyword = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stand-in derive does not support generic type `{name}`");
    }
    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Struct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Item::Struct {
                name,
                fields: Fields::Tuple(count_tuple_fields(g.stream())),
            },
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::Struct {
                name,
                fields: Fields::Unit,
            },
            other => panic!("unexpected token after `struct {name}`: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("unexpected token after `enum {name}`: {other:?}"),
        },
        other => panic!("derive expects a struct or enum, found `{other}`"),
    }
}

/// Skips attributes; returns the serde attribute content if one appeared.
fn skip_attrs(tokens: &[TokenTree], i: &mut usize) -> FieldAttr {
    let mut attr = FieldAttr::default();
    loop {
        match (tokens.get(*i), tokens.get(*i + 1)) {
            (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                parse_possible_serde_attr(g.stream(), &mut attr);
                *i += 2;
            }
            _ => return attr,
        }
    }
}

fn parse_possible_serde_attr(content: TokenStream, attr: &mut FieldAttr) {
    let tokens: Vec<TokenTree> = content.into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(g)))
            if id.to_string() == "serde" && g.delimiter() == Delimiter::Parenthesis =>
        {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            let mut j = 0;
            while j < inner.len() {
                match &inner[j] {
                    TokenTree::Ident(word) => match word.to_string().as_str() {
                        "skip" => attr.skip = true,
                        "default" => {
                            if let (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(path))) =
                                (inner.get(j + 1), inner.get(j + 2))
                            {
                                if eq.as_char() == '=' {
                                    let raw = path.to_string();
                                    attr.default = Some(raw.trim_matches('"').to_string());
                                    j += 2;
                                }
                            } else {
                                attr.default = Some(String::new());
                            }
                        }
                        other => panic!("unsupported serde attribute `{other}`"),
                    },
                    TokenTree::Punct(p) if p.as_char() == ',' => {}
                    other => panic!("unsupported serde attribute token {other:?}"),
                }
                j += 1;
            }
        }
        _ => {}
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(
            tokens.get(*i),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            *i += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("expected identifier, found {other:?}"),
    }
}

/// Consumes type tokens until a top-level comma (angle brackets tracked).
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(t) = tokens.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Fields {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let attr = skip_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut i);
        let name = expect_ident(&tokens, &mut i);
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        skip_type(&tokens, &mut i);
        // Now at a top-level comma or the end.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        fields.push(Field { name, attr });
    }
    Fields::Named(fields)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        // Each tuple field may carry attributes and a visibility.
        let attr = skip_attrs(&tokens, &mut i);
        if attr.skip {
            panic!("#[serde(skip)] on tuple fields is not supported");
        }
        if i >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut i);
        skip_type(&tokens, &mut i);
        count += 1;
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                parse_named_fields(g.stream())
            }
            _ => Fields::Unit,
        };
        // Optional explicit discriminant: `= expr` up to the next comma.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            i += 1;
            skip_type(&tokens, &mut i);
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------- codegen

fn serialize_struct(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Named(fields) => {
            let mut s = String::from(
                "let mut __m: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n",
            );
            for f in fields {
                if f.attr.skip {
                    continue;
                }
                s.push_str(&format!(
                    "__m.push((\"{0}\".to_string(), ::serde::Serialize::to_value(&self.{0})));\n",
                    f.name
                ));
            }
            s.push_str("::serde::Value::Map(__m)");
            s
        }
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
        }
        Fields::Unit => "::serde::Value::Null".to_string(),
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn deserialize_struct(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Named(fields) => {
            let mut s = String::from("let __m = __v.as_map()?;\n");
            s.push_str(&format!("::std::result::Result::Ok({name} {{\n"));
            for f in fields {
                s.push_str(&named_field_init(name, f));
            }
            s.push_str("})");
            s
        }
        Fields::Tuple(n) => {
            let mut s = String::from("let __s = __v.as_seq()?;\n");
            s.push_str(&format!(
                "if __s.len() != {n} {{ return ::std::result::Result::Err(\
                 ::serde::Error::custom(\"wrong tuple arity for {name}\")); }}\n"
            ));
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_value(&__s[{k}])?"))
                .collect();
            s.push_str(&format!(
                "::std::result::Result::Ok({name}({}))",
                items.join(", ")
            ));
            s
        }
        Fields::Unit => format!("::std::result::Result::Ok({name})"),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> \
         {{\n{body}\n}}\n}}\n"
    )
}

fn named_field_init(ty: &str, f: &Field) -> String {
    let fallback = match (&f.attr.default, f.attr.skip) {
        (Some(path), _) if !path.is_empty() => format!("{path}()"),
        (Some(_), _) | (None, true) => "::std::default::Default::default()".to_string(),
        (None, false) => String::new(),
    };
    if f.attr.skip {
        return format!("{}: {fallback},\n", f.name);
    }
    let missing = if fallback.is_empty() {
        format!(
            "return ::std::result::Result::Err(::serde::Error::missing_field(\"{ty}\", \"{}\"))",
            f.name
        )
    } else {
        fallback
    };
    format!(
        "{0}: match ::serde::map_get(__m, \"{0}\") {{\n\
         ::std::option::Option::Some(__x) => ::serde::Deserialize::from_value(__x)?,\n\
         ::std::option::Option::None => {missing},\n}},\n",
        f.name
    )
}

fn serialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.fields {
            Fields::Unit => {
                arms.push_str(&format!(
                    "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),\n"
                ));
            }
            Fields::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                let items: Vec<String> = binds
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                    .collect();
                arms.push_str(&format!(
                    "{name}::{vn}({binds}) => ::serde::Value::Map(::std::vec![(\
                     \"{vn}\".to_string(), ::serde::Value::Seq(::std::vec![{items}]))]),\n",
                    binds = binds.join(", "),
                    items = items.join(", ")
                ));
            }
            Fields::Named(fields) => {
                let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                let items: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "(\"{0}\".to_string(), ::serde::Serialize::to_value({0}))",
                            f.name
                        )
                    })
                    .collect();
                arms.push_str(&format!(
                    "{name}::{vn} {{ {binds} }} => ::serde::Value::Map(::std::vec![(\
                     \"{vn}\".to_string(), ::serde::Value::Map(::std::vec![{items}]))]),\n",
                    binds = binds.join(", "),
                    items = items.join(", ")
                ));
            }
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\nmatch self {{\n{arms}}}\n}}\n}}\n"
    )
}

fn deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut payload_arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.fields {
            Fields::Unit => {
                unit_arms.push_str(&format!(
                    "\"{vn}\" => return ::std::result::Result::Ok({name}::{vn}),\n"
                ));
            }
            Fields::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|k| format!("::serde::Deserialize::from_value(&__s[{k}])?"))
                    .collect();
                payload_arms.push_str(&format!(
                    "\"{vn}\" => {{\nlet __s = __payload.as_seq()?;\n\
                     if __s.len() != {n} {{ return ::std::result::Result::Err(\
                     ::serde::Error::custom(\"wrong arity for {name}::{vn}\")); }}\n\
                     return ::std::result::Result::Ok({name}::{vn}({items}));\n}}\n",
                    items = items.join(", ")
                ));
            }
            Fields::Named(fields) => {
                let mut inits = String::new();
                for f in fields {
                    inits.push_str(&named_field_init(&format!("{name}::{vn}"), f));
                }
                payload_arms.push_str(&format!(
                    "\"{vn}\" => {{\nlet __m = __payload.as_map()?;\n\
                     return ::std::result::Result::Ok({name}::{vn} {{\n{inits}}});\n}}\n"
                ));
            }
        }
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         if let ::serde::Value::Str(__s) = __v {{\n\
         match __s.as_str() {{\n{unit_arms}_ => {{}}\n}}\n}}\n\
         if let ::serde::Value::Map(__entries) = __v {{\n\
         if __entries.len() == 1 {{\n\
         let (__tag, __payload) = &__entries[0];\n\
         match __tag.as_str() {{\n{payload_arms}_ => {{}}\n}}\n}}\n}}\n\
         ::std::result::Result::Err(::serde::Error::custom(\
         ::std::format!(\"no variant of {name} matches {{:?}}\", __v)))\n\
         }}\n}}\n"
    )
}
