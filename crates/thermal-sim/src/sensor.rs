//! Temperature sensor models: the adapter thermocouple and the DIMM's SPD
//! (Serial Presence Detect) thermal sensor.
//!
//! The testbed reads both — the thermocouple is fast and fine-grained; the
//! SPD sensor (a JEDEC TSE2002-class device on the DIMM) is quantized to
//! 0.25 °C and low-pass filtered by the package. Reading both lets the
//! controller cross-check its regulation, which the framework logs.

use power_model::units::Celsius;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Which physical sensor a reading came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SensorKind {
    /// The thermocouple glued to the heating adapter.
    Thermocouple,
    /// The SPD-chip thermal sensor on the DIMM.
    Spd,
}

/// Fault behavior of a flaky sensor: per-reading probabilities of the two
/// failure modes the framework actually sees on long campaigns — a reading
/// that sticks at the previous value (I2C transaction returns stale data)
/// and a dropout (the transaction fails outright).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SensorFaultModel {
    /// Probability a reading repeats the previous value.
    pub stuck_rate: f64,
    /// Probability a reading is lost entirely.
    pub dropout_rate: f64,
}

impl SensorFaultModel {
    /// Creates a fault model.
    ///
    /// # Panics
    ///
    /// Panics if either rate is outside `[0, 1]`.
    pub fn new(stuck_rate: f64, dropout_rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&stuck_rate), "rate must be in [0,1]");
        assert!((0.0..=1.0).contains(&dropout_rate), "rate must be in [0,1]");
        SensorFaultModel {
            stuck_rate,
            dropout_rate,
        }
    }
}

/// A noisy, possibly quantized temperature sensor.
///
/// # Examples
///
/// ```
/// use thermal_sim::sensor::TemperatureSensor;
/// use power_model::units::Celsius;
///
/// let mut tc = TemperatureSensor::thermocouple(7);
/// let reading = tc.read(Celsius::new(50.0));
/// assert!((reading.as_f64() - 50.0).abs() < 0.5);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TemperatureSensor {
    kind: SensorKind,
    /// Gaussian noise standard deviation in kelvin.
    noise_sigma: f64,
    /// Quantization step in kelvin (0 = none).
    quantization: f64,
    /// Systematic offset in kelvin.
    offset: f64,
    /// First-order lag coefficient in `[0,1)`: 0 = instantaneous.
    lag: f64,
    filtered: Option<f64>,
    /// Injected fault behavior; `None` (the default) is a healthy sensor.
    #[serde(default)]
    faults: Option<SensorFaultModel>,
    #[serde(skip, default = "default_rng")]
    rng: StdRng,
}

fn default_rng() -> StdRng {
    StdRng::seed_from_u64(0)
}

impl TemperatureSensor {
    /// Creates a sensor with explicit characteristics.
    ///
    /// # Panics
    ///
    /// Panics if `noise_sigma` or `quantization` is negative, or `lag` is
    /// outside `[0, 1)`.
    pub fn new(
        kind: SensorKind,
        noise_sigma: f64,
        quantization: f64,
        offset: f64,
        lag: f64,
        seed: u64,
    ) -> Self {
        assert!(noise_sigma >= 0.0, "noise sigma must be non-negative");
        assert!(quantization >= 0.0, "quantization must be non-negative");
        assert!((0.0..1.0).contains(&lag), "lag must be in [0,1)");
        TemperatureSensor {
            kind,
            noise_sigma,
            quantization,
            offset,
            lag,
            filtered: None,
            faults: None,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Injects fault behavior (pass `None` to heal the sensor). A healthy
    /// sensor takes no fault draws, so injection never perturbs the noise
    /// stream of other sensors.
    pub fn inject_faults(&mut self, faults: Option<SensorFaultModel>) {
        self.faults = faults;
    }

    /// A K-type thermocouple on the adapter: ±0.1 K noise, no quantization,
    /// no lag.
    pub fn thermocouple(seed: u64) -> Self {
        TemperatureSensor::new(SensorKind::Thermocouple, 0.1, 0.0, 0.0, 0.0, seed)
    }

    /// The DIMM SPD thermal sensor: 0.25 K quantization, slight lag from
    /// the package, ±0.05 K electrical noise.
    pub fn spd(seed: u64) -> Self {
        TemperatureSensor::new(SensorKind::Spd, 0.05, 0.25, 0.0, 0.2, seed)
    }

    /// Sensor identity.
    pub fn kind(&self) -> SensorKind {
        self.kind
    }

    /// Samples the sensor, surfacing injected faults: `None` on a dropout,
    /// and a repeat of the previous reading (filter state untouched) when
    /// the reading sticks. A healthy sensor behaves exactly like
    /// [`Self::read`].
    pub fn try_read(&mut self, truth: Celsius) -> Option<Celsius> {
        if let Some(faults) = self.faults {
            let dropout_roll: f64 = self.rng.gen();
            let stuck_roll: f64 = self.rng.gen();
            if dropout_roll < faults.dropout_rate {
                return None;
            }
            if stuck_roll < faults.stuck_rate {
                if let Some(prev) = self.filtered {
                    // Report the stale value without advancing the filter.
                    let mut v = prev;
                    if self.quantization > 0.0 {
                        v = (v / self.quantization).round() * self.quantization;
                    }
                    return Some(Celsius::new(v));
                }
            }
        }
        Some(self.read(truth))
    }

    /// Samples the sensor given the true plant temperature.
    pub fn read(&mut self, truth: Celsius) -> Celsius {
        let t = truth.as_f64() + self.offset;
        let lagged = match self.filtered {
            Some(prev) => self.lag * prev + (1.0 - self.lag) * t,
            None => t,
        };
        self.filtered = Some(lagged);
        let noise = self.gaussian() * self.noise_sigma;
        let mut v = lagged + noise;
        if self.quantization > 0.0 {
            v = (v / self.quantization).round() * self.quantization;
        }
        Celsius::new(v)
    }

    /// Standard normal sample via Box–Muller (keeps `rand_distr` out of the
    /// dependency set).
    fn gaussian(&mut self) -> f64 {
        let u1: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.rng.gen::<f64>();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thermocouple_tracks_truth_closely() {
        let mut s = TemperatureSensor::thermocouple(42);
        let mut max_err: f64 = 0.0;
        for _ in 0..1000 {
            let r = s.read(Celsius::new(50.0));
            max_err = max_err.max((r.as_f64() - 50.0).abs());
        }
        assert!(max_err < 0.6, "max error {max_err}");
    }

    #[test]
    fn spd_is_quantized() {
        let mut s = TemperatureSensor::spd(42);
        for _ in 0..100 {
            let r = s.read(Celsius::new(50.1)).as_f64();
            let q = (r / 0.25).round() * 0.25;
            assert!((r - q).abs() < 1e-9, "reading {r} not on 0.25 grid");
        }
    }

    #[test]
    fn spd_lags_behind_step_change() {
        let mut s = TemperatureSensor::spd(42);
        for _ in 0..50 {
            s.read(Celsius::new(25.0));
        }
        let first_after_step = s.read(Celsius::new(60.0)).as_f64();
        assert!(first_after_step < 59.0, "lagged reading {first_after_step}");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = TemperatureSensor::thermocouple(7);
        let mut b = TemperatureSensor::thermocouple(7);
        for _ in 0..10 {
            assert_eq!(a.read(Celsius::new(40.0)), b.read(Celsius::new(40.0)));
        }
    }

    #[test]
    fn healthy_try_read_matches_read() {
        let mut a = TemperatureSensor::spd(7);
        let mut b = TemperatureSensor::spd(7);
        for _ in 0..50 {
            assert_eq!(
                a.try_read(Celsius::new(48.0)),
                Some(b.read(Celsius::new(48.0)))
            );
        }
    }

    #[test]
    fn faulty_sensor_drops_out_and_sticks() {
        let mut s = TemperatureSensor::thermocouple(5);
        s.read(Celsius::new(30.0)); // establish a previous value
        s.inject_faults(Some(SensorFaultModel::new(0.3, 0.3)));
        let mut dropouts = 0;
        let mut stuck = 0;
        let mut prev = None;
        for _ in 0..500 {
            match s.try_read(Celsius::new(30.0)) {
                None => dropouts += 1,
                Some(r) => {
                    if prev == Some(r) {
                        stuck += 1;
                    }
                    prev = Some(r);
                }
            }
        }
        assert!(dropouts > 50, "dropouts {dropouts}");
        assert!(stuck > 20, "stuck repeats {stuck}");
    }

    #[test]
    fn zero_rate_fault_model_is_harmless() {
        let mut s = TemperatureSensor::thermocouple(9);
        s.inject_faults(Some(SensorFaultModel::new(0.0, 0.0)));
        for _ in 0..100 {
            assert!(s.try_read(Celsius::new(40.0)).is_some());
        }
    }

    #[test]
    fn noise_is_unbiased() {
        let mut s = TemperatureSensor::thermocouple(123);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| s.read(Celsius::new(50.0)).as_f64() - 50.0)
            .sum::<f64>()
            / n as f64;
        assert!(mean.abs() < 0.01, "bias {mean}");
    }
}
