//! Solid-state relay with time-proportioning (slow PWM) drive.
//!
//! The controller board drives each heating element through a solid-state
//! relay. PID duty-cycle commands are realized by switching the relay over
//! a fixed time-proportioning window, with a minimum on/off time to respect
//! zero-crossing switching.

use serde::{Deserialize, Serialize};

/// A solid-state relay converting a duty command into on/off heater state.
///
/// # Examples
///
/// ```
/// use thermal_sim::relay::SolidStateRelay;
///
/// let mut relay = SolidStateRelay::new(2.0, 0.1);
/// relay.set_duty(0.5);
/// let mut on_time = 0.0_f64;
/// for _ in 0..200 {
///     if relay.step(0.1) {
///         on_time += 0.1;
///     }
/// }
/// assert!((on_time / 20.0 - 0.5).abs() < 0.05);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolidStateRelay {
    /// Time-proportioning window length in seconds.
    window: f64,
    /// Minimum switch interval in seconds (zero-cross granularity).
    min_interval: f64,
    duty: f64,
    /// Position within the current window.
    phase: f64,
    switch_count: u64,
    is_on: bool,
}

impl SolidStateRelay {
    /// Creates a relay with a time-proportioning `window` and a minimum
    /// switching interval, both in seconds.
    ///
    /// # Panics
    ///
    /// Panics if the window is not positive or the minimum interval is
    /// negative or exceeds the window.
    pub fn new(window: f64, min_interval: f64) -> Self {
        assert!(
            window > 0.0 && window.is_finite(),
            "window must be positive"
        );
        assert!(
            (0.0..=window).contains(&min_interval),
            "min interval must be within [0, window]"
        );
        SolidStateRelay {
            window,
            min_interval,
            duty: 0.0,
            phase: 0.0,
            switch_count: 0,
            is_on: false,
        }
    }

    /// Sets the commanded duty cycle, clamped to `[0, 1]` and quantized to
    /// the minimum switching interval.
    pub fn set_duty(&mut self, duty: f64) {
        let clamped = if duty.is_finite() {
            duty.clamp(0.0, 1.0)
        } else {
            0.0
        };
        self.duty = if self.min_interval > 0.0 {
            let q = self.min_interval / self.window;
            (clamped / q).round() * q
        } else {
            clamped
        };
    }

    /// Commanded (quantized) duty cycle.
    pub fn duty(&self) -> f64 {
        self.duty
    }

    /// Whether the relay output is currently conducting.
    pub fn is_on(&self) -> bool {
        self.is_on
    }

    /// Total number of output transitions so far (relay wear metric).
    pub fn switch_count(&self) -> u64 {
        self.switch_count
    }

    /// Advances time by `dt` seconds and returns the output state for this
    /// step (`true` = heater powered).
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not strictly positive.
    pub fn step(&mut self, dt: f64) -> bool {
        assert!(dt > 0.0 && dt.is_finite(), "dt must be positive");
        self.phase += dt;
        if self.phase >= self.window {
            self.phase -= self.window;
        }
        let next = self.phase < self.duty * self.window - 1e-12;
        if next != self.is_on {
            self.switch_count += 1;
            self.is_on = next;
        }
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn measured_duty(relay: &mut SolidStateRelay, duty: f64, steps: usize, dt: f64) -> f64 {
        relay.set_duty(duty);
        let mut on = 0usize;
        for _ in 0..steps {
            if relay.step(dt) {
                on += 1;
            }
        }
        on as f64 / steps as f64
    }

    #[test]
    fn realized_duty_matches_command() {
        let mut relay = SolidStateRelay::new(2.0, 0.1);
        for d in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let got = measured_duty(&mut relay, d, 4000, 0.05);
            assert!((got - d).abs() < 0.03, "duty {d} realized {got}");
        }
    }

    #[test]
    fn duty_is_quantized_to_min_interval() {
        let mut relay = SolidStateRelay::new(2.0, 0.5);
        relay.set_duty(0.3); // 0.5/2.0 = 0.25 quantum → rounds to 0.25
        assert!((relay.duty() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn duty_clamps_out_of_range() {
        let mut relay = SolidStateRelay::new(2.0, 0.0);
        relay.set_duty(1.7);
        assert_eq!(relay.duty(), 1.0);
        relay.set_duty(-0.3);
        assert_eq!(relay.duty(), 0.0);
        relay.set_duty(f64::NAN);
        assert_eq!(relay.duty(), 0.0);
    }

    #[test]
    fn full_duty_never_switches_off() {
        let mut relay = SolidStateRelay::new(2.0, 0.1);
        relay.set_duty(1.0);
        for _ in 0..1000 {
            assert!(relay.step(0.05));
        }
        assert!(relay.switch_count() <= 1);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn rejects_zero_window() {
        let _ = SolidStateRelay::new(0.0, 0.0);
    }
}
