//! Simulation of the DSN'18 DIMM thermal testbed.
//!
//! The paper builds "a first of its kind temperature-controlled testbed for
//! DRAMs on a server": resistive heating adapters taped to each DIMM, a
//! thermocouple per adapter, the DIMM's own SPD thermal sensor, solid-state
//! relays, and PID controllers on a Raspberry Pi 3 board, regulating each
//! DIMM and rank independently to within 1 °C of the set point.
//!
//! This crate reproduces that control loop end to end:
//!
//! * [`plant`] — first-order thermal model of a DIMM + heating adapter;
//! * [`pid`] — discrete PID controller with anti-windup;
//! * [`sensor`] — thermocouple and SPD sensor models (noise, quantization, lag);
//! * [`relay`] — solid-state relay with time-proportioning drive;
//! * [`testbed`] — the assembled eight-channel testbed.
//!
//! # Examples
//!
//! Regulate all eight DIMM ranks at the paper's 60 °C characterization
//! set point and verify the 1 °C regulation claim:
//!
//! ```
//! use thermal_sim::testbed::ThermalTestbed;
//! use power_model::units::Celsius;
//!
//! let mut bed = ThermalTestbed::new(Celsius::new(25.0), 1);
//! bed.set_all_targets(Celsius::new(60.0));
//! bed.run(3600.0);
//! assert!(bed.max_deviation_over(600.0) < 1.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod pid;
pub mod plant;
pub mod relay;
pub mod sensor;
pub mod testbed;

pub use pid::{Pid, PidGains};
pub use plant::ThermalPlant;
pub use relay::SolidStateRelay;
pub use sensor::{SensorKind, TemperatureSensor};
pub use testbed::{ChannelId, ChannelReading, ThermalTestbed, CHANNEL_COUNT};
