//! First-order thermal plant of a DIMM with a resistive heating adapter.
//!
//! The paper's testbed attaches a resistive element to each DIMM through
//! thermally conductive tape, so the DIMM chips and the element form one
//! lumped thermal mass coupled to ambient air. A first-order RC model
//! captures this: `C·dT/dt = P_in − (T − T_amb)/R_th`.

use power_model::units::{Celsius, Watts};
use serde::{Deserialize, Serialize};

/// Lumped-parameter thermal model of one DIMM + heating adapter.
///
/// # Examples
///
/// ```
/// use thermal_sim::plant::ThermalPlant;
/// use power_model::units::{Celsius, Watts};
///
/// let mut plant = ThermalPlant::dimm_adapter(Celsius::new(25.0));
/// for _ in 0..50_000 {
///     plant.step(Watts::new(8.75), 0.1);
/// }
/// // Steady state: T = T_amb + P · R_th = 25 + 8.75 · 4 = 60 °C.
/// assert!((plant.temperature().as_f64() - 60.0).abs() < 0.5);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThermalPlant {
    temperature: Celsius,
    ambient: Celsius,
    /// Thermal resistance to ambient in K/W.
    r_th: f64,
    /// Heat capacity in J/K.
    capacity: f64,
    /// Extra self-heating of the DIMM from memory traffic, in watts.
    self_heating: Watts,
}

impl ThermalPlant {
    /// Creates a plant with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if `r_th` or `capacity` is not strictly positive.
    pub fn new(ambient: Celsius, r_th: f64, capacity: f64) -> Self {
        assert!(
            r_th > 0.0 && r_th.is_finite(),
            "thermal resistance must be positive"
        );
        assert!(
            capacity > 0.0 && capacity.is_finite(),
            "heat capacity must be positive"
        );
        ThermalPlant {
            temperature: ambient,
            ambient,
            r_th,
            capacity,
            self_heating: Watts::ZERO,
        }
    }

    /// The calibrated DIMM-adapter plant: 4 K/W to ambient, 120 J/K
    /// (τ = R·C = 480 s — DIMMs with tape and heater settle in minutes).
    pub fn dimm_adapter(ambient: Celsius) -> Self {
        ThermalPlant::new(ambient, 4.0, 120.0)
    }

    /// Current DIMM temperature.
    pub fn temperature(&self) -> Celsius {
        self.temperature
    }

    /// Ambient temperature.
    pub fn ambient(&self) -> Celsius {
        self.ambient
    }

    /// Sets the DIMM's self-heating power (from memory traffic).
    pub fn set_self_heating(&mut self, power: Watts) {
        self.self_heating = power;
    }

    /// Advances the plant by `dt` seconds with `heater_power` applied.
    ///
    /// Uses forward Euler, which is stable here for `dt ≪ R·C`.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not strictly positive.
    pub fn step(&mut self, heater_power: Watts, dt: f64) {
        assert!(dt > 0.0 && dt.is_finite(), "dt must be positive");
        let p_in = heater_power.as_f64() + self.self_heating.as_f64();
        let t = self.temperature.as_f64();
        let dtemp = (p_in - (t - self.ambient.as_f64()) / self.r_th) / self.capacity;
        self.temperature = Celsius::new(t + dtemp * dt);
    }

    /// The steady-state temperature for a constant heater power.
    pub fn steady_state(&self, heater_power: Watts) -> Celsius {
        Celsius::new(
            self.ambient.as_f64()
                + (heater_power.as_f64() + self.self_heating.as_f64()) * self.r_th,
        )
    }

    /// The heater power needed to hold `target` at steady state (clamped at
    /// zero: the testbed can only heat, not cool below ambient).
    pub fn power_for(&self, target: Celsius) -> Watts {
        let p = (target.as_f64() - self.ambient.as_f64()) / self.r_th - self.self_heating.as_f64();
        Watts::new(p.max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plant_converges_to_steady_state() {
        let mut plant = ThermalPlant::dimm_adapter(Celsius::new(25.0));
        let p = Watts::new(6.25); // 25 + 6.25*4 = 50 °C
        for _ in 0..40_000 {
            plant.step(p, 0.1);
        }
        assert!((plant.temperature().as_f64() - 50.0).abs() < 0.1);
        assert!((plant.steady_state(p).as_f64() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn plant_cools_back_to_ambient() {
        let mut plant = ThermalPlant::dimm_adapter(Celsius::new(25.0));
        for _ in 0..10_000 {
            plant.step(Watts::new(10.0), 0.1);
        }
        for _ in 0..60_000 {
            plant.step(Watts::ZERO, 0.1);
        }
        assert!((plant.temperature().as_f64() - 25.0).abs() < 0.2);
    }

    #[test]
    fn self_heating_raises_temperature() {
        let mut a = ThermalPlant::dimm_adapter(Celsius::new(25.0));
        let mut b = ThermalPlant::dimm_adapter(Celsius::new(25.0));
        b.set_self_heating(Watts::new(1.0));
        for _ in 0..20_000 {
            a.step(Watts::new(5.0), 0.1);
            b.step(Watts::new(5.0), 0.1);
        }
        assert!(b.temperature() > a.temperature());
        assert!((b.temperature().as_f64() - a.temperature().as_f64() - 4.0).abs() < 0.1);
    }

    #[test]
    fn power_for_is_inverse_of_steady_state() {
        let plant = ThermalPlant::dimm_adapter(Celsius::new(25.0));
        let p = plant.power_for(Celsius::new(60.0));
        assert!((plant.steady_state(p).as_f64() - 60.0).abs() < 1e-9);
    }

    #[test]
    fn power_for_clamps_below_ambient() {
        let plant = ThermalPlant::dimm_adapter(Celsius::new(25.0));
        assert_eq!(plant.power_for(Celsius::new(20.0)), Watts::ZERO);
    }

    #[test]
    #[should_panic(expected = "dt must be positive")]
    fn step_rejects_zero_dt() {
        let mut plant = ThermalPlant::dimm_adapter(Celsius::new(25.0));
        plant.step(Watts::ZERO, 0.0);
    }
}
