//! Discrete PID controller with anti-windup, as used on the testbed's
//! controller board (four closed-loop PID controllers on a Raspberry Pi 3).

use serde::{Deserialize, Serialize};

/// PID gains.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PidGains {
    /// Proportional gain (per kelvin of error).
    pub kp: f64,
    /// Integral gain (per kelvin-second).
    pub ki: f64,
    /// Derivative gain (per kelvin/second).
    pub kd: f64,
}

impl PidGains {
    /// Gains tuned for the DIMM-adapter plant (τ = 480 s, gain 60 K/duty):
    /// fast approach with no overshoot beyond the ±1 °C regulation band.
    pub fn dimm_adapter() -> Self {
        PidGains {
            kp: 0.25,
            ki: 0.004,
            kd: 0.8,
        }
    }
}

/// A discrete PID controller producing a duty-cycle command in `[0, 1]`.
///
/// Integral anti-windup: the integrator freezes while the output saturates
/// in the direction of the error, which the heating-only testbed needs (the
/// plant cannot be driven below ambient, so cooling errors would otherwise
/// wind the integrator far negative).
///
/// # Examples
///
/// ```
/// use thermal_sim::pid::{Pid, PidGains};
///
/// let mut pid = Pid::new(PidGains::dimm_adapter());
/// let duty = pid.update(50.0, 25.0, 0.1); // target 50 °C, measured 25 °C
/// assert_eq!(duty, 1.0); // saturated high while far below target
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pid {
    gains: PidGains,
    integral: f64,
    last_error: Option<f64>,
}

impl Pid {
    /// Creates a controller with the given gains.
    pub fn new(gains: PidGains) -> Self {
        Pid {
            gains,
            integral: 0.0,
            last_error: None,
        }
    }

    /// Computes the duty-cycle command for one control period.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not strictly positive.
    pub fn update(&mut self, setpoint: f64, measured: f64, dt: f64) -> f64 {
        assert!(dt > 0.0 && dt.is_finite(), "dt must be positive");
        let error = setpoint - measured;
        let derivative = match self.last_error {
            Some(prev) => (error - prev) / dt,
            None => 0.0,
        };
        self.last_error = Some(error);

        let tentative_integral = self.integral + error * dt;
        let unsat =
            self.gains.kp * error + self.gains.ki * tentative_integral + self.gains.kd * derivative;
        let saturated = unsat.clamp(0.0, 1.0);
        // Anti-windup: only integrate when not pushing further into a limit.
        let winding_up = (unsat > 1.0 && error > 0.0) || (unsat < 0.0 && error < 0.0);
        if !winding_up {
            self.integral = tentative_integral;
        }
        saturated
    }

    /// Resets the controller state (integral and derivative history).
    pub fn reset(&mut self) {
        self.integral = 0.0;
        self.last_error = None;
    }

    /// Current integrator value (useful for tests and telemetry).
    pub fn integral(&self) -> f64 {
        self.integral
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plant::ThermalPlant;
    use power_model::units::{Celsius, Watts};

    #[test]
    fn saturates_high_when_cold() {
        let mut pid = Pid::new(PidGains::dimm_adapter());
        assert_eq!(pid.update(60.0, 25.0, 0.1), 1.0);
    }

    #[test]
    fn outputs_zero_when_far_above_setpoint() {
        let mut pid = Pid::new(PidGains::dimm_adapter());
        assert_eq!(pid.update(30.0, 80.0, 0.1), 0.0);
    }

    #[test]
    fn anti_windup_limits_integral_during_saturation() {
        let mut pid = Pid::new(PidGains::dimm_adapter());
        for _ in 0..10_000 {
            pid.update(60.0, 25.0, 0.1); // permanently saturated high
        }
        // Without anti-windup the integral would reach 35*1000 = 35 000.
        assert!(pid.integral().abs() < 300.0, "integral {}", pid.integral());
    }

    #[test]
    fn closed_loop_regulates_within_one_degree() {
        // The paper: "the maximum deviation from the set temperature is
        // less than 1 °C" in steady state.
        let mut plant = ThermalPlant::dimm_adapter(Celsius::new(25.0));
        let mut pid = Pid::new(PidGains::dimm_adapter());
        let max_power = Watts::new(15.0);
        let target = 60.0;
        let dt = 0.5;
        let mut worst: f64 = 0.0;
        for step in 0..36_000 {
            let duty = pid.update(target, plant.temperature().as_f64(), dt);
            plant.step(max_power.scaled(duty), dt);
            // allow 1.5 plant time constants of settling before judging
            if step > 14_400 {
                worst = worst.max((plant.temperature().as_f64() - target).abs());
            }
        }
        assert!(worst < 1.0, "steady-state deviation {worst} °C");
    }

    #[test]
    fn reset_clears_state() {
        let mut pid = Pid::new(PidGains::dimm_adapter());
        pid.update(60.0, 25.0, 0.1);
        pid.reset();
        assert_eq!(pid.integral(), 0.0);
    }
}
