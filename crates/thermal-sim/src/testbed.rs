//! The complete temperature-controlled DRAM testbed (paper Fig. 3).
//!
//! Eight heating channels — one per DIMM rank (4 DIMMs × 2 ranks) — each
//! with a resistive element, thermocouple, SPD sensor and solid-state
//! relay, driven by PID controllers on a controller board. The paper
//! reports a maximum set-point deviation below 1 °C, which the simulated
//! loop reproduces and the test suite asserts.

use crate::pid::{Pid, PidGains};
use crate::plant::ThermalPlant;
use crate::relay::SolidStateRelay;
use crate::sensor::{SensorFaultModel, TemperatureSensor};
use power_model::units::{Celsius, Watts};
use serde::{Deserialize, Serialize};
use telemetry::Level;

/// Histogram buckets for set-point deviation in °C.
const DEVIATION_BUCKETS_C: [f64; 7] = [0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 25.0];

/// Number of heating channels on the testbed (4 DIMMs × 2 ranks).
pub const CHANNEL_COUNT: usize = 8;

/// Identifies one heating channel by DIMM and rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ChannelId {
    /// DIMM index, `0..4`.
    pub dimm: u8,
    /// Rank index within the DIMM, `0..2`.
    pub rank: u8,
}

impl ChannelId {
    /// Creates a channel id.
    ///
    /// # Panics
    ///
    /// Panics if `dimm >= 4` or `rank >= 2`.
    pub fn new(dimm: u8, rank: u8) -> Self {
        assert!(dimm < 4, "dimm index must be < 4");
        assert!(rank < 2, "rank index must be < 2");
        ChannelId { dimm, rank }
    }

    /// Flat channel index `0..8`.
    pub fn index(self) -> usize {
        usize::from(self.dimm) * 2 + usize::from(self.rank)
    }

    /// All channels in index order.
    pub fn all() -> impl Iterator<Item = ChannelId> {
        (0..4u8).flat_map(|d| (0..2u8).map(move |r| ChannelId { dimm: d, rank: r }))
    }
}

/// One heating channel: plant + sensors + relay + PID.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct HeaterChannel {
    plant: ThermalPlant,
    thermocouple: TemperatureSensor,
    spd: TemperatureSensor,
    relay: SolidStateRelay,
    pid: Pid,
    target: Option<Celsius>,
}

impl HeaterChannel {
    fn new(ambient: Celsius, seed: u64) -> Self {
        HeaterChannel {
            plant: ThermalPlant::dimm_adapter(ambient),
            thermocouple: TemperatureSensor::thermocouple(seed),
            spd: TemperatureSensor::spd(seed.wrapping_add(0x9e37_79b9)),
            relay: SolidStateRelay::new(2.0, 0.02),
            pid: Pid::new(PidGains::dimm_adapter()),
            target: None,
        }
    }

    fn step(&mut self, heater_max: Watts, dt: f64) {
        if let Some(target) = self.target {
            // On a sensor dropout the controller holds its previous duty
            // for one period rather than acting on garbage.
            if let Some(measured) = self.thermocouple.try_read(self.plant.temperature()) {
                let duty = self.pid.update(target.as_f64(), measured.as_f64(), dt);
                self.relay.set_duty(duty);
            }
        } else {
            self.relay.set_duty(0.0);
        }
        let on = self.relay.step(dt);
        let p = if on { heater_max } else { Watts::ZERO };
        self.plant.step(p, dt);
    }
}

/// A snapshot of one channel's state for logging.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChannelReading {
    /// Which channel.
    pub channel: ChannelId,
    /// True plant temperature.
    pub actual: Celsius,
    /// Thermocouple reading (`None` on a dropout).
    pub thermocouple: Option<Celsius>,
    /// SPD sensor reading (`None` on a dropout).
    pub spd: Option<Celsius>,
    /// Commanded set point, if any.
    pub target: Option<Celsius>,
}

/// The temperature-controlled testbed.
///
/// # Examples
///
/// ```
/// use thermal_sim::testbed::ThermalTestbed;
/// use power_model::units::Celsius;
///
/// let mut bed = ThermalTestbed::new(Celsius::new(25.0), 42);
/// bed.set_all_targets(Celsius::new(50.0));
/// bed.run(3600.0); // one hour of simulated time to settle
/// let dev = bed.max_deviation_over(600.0);
/// assert!(dev < 1.0, "regulation deviation {dev} °C");
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThermalTestbed {
    channels: Vec<HeaterChannel>,
    /// Maximum heater power per element.
    heater_max: Watts,
    /// Control period in seconds.
    dt: f64,
    elapsed: f64,
}

impl ThermalTestbed {
    /// Creates a testbed with all eight channels at ambient temperature.
    pub fn new(ambient: Celsius, seed: u64) -> Self {
        let channels = (0..CHANNEL_COUNT as u64)
            .map(|i| HeaterChannel::new(ambient, seed.wrapping_mul(2654435761).wrapping_add(i)))
            .collect();
        ThermalTestbed {
            channels,
            heater_max: Watts::new(15.0),
            dt: 0.5,
            elapsed: 0.0,
        }
    }

    /// Sets the target temperature of one channel.
    pub fn set_target(&mut self, channel: ChannelId, target: Celsius) {
        self.channels[channel.index()].target = Some(target);
    }

    /// Sets all channels to the same target (the paper regulates whole
    /// campaigns at a single 50 °C or 60 °C set point).
    pub fn set_all_targets(&mut self, target: Celsius) {
        for ch in &mut self.channels {
            ch.target = Some(target);
        }
    }

    /// Disables heating on all channels.
    pub fn clear_targets(&mut self) {
        for ch in &mut self.channels {
            ch.target = None;
            ch.pid.reset();
        }
    }

    /// Injects per-channel self-heating from memory traffic.
    pub fn set_self_heating(&mut self, channel: ChannelId, power: Watts) {
        self.channels[channel.index()].plant.set_self_heating(power);
    }

    /// Injects the same fault behavior into every sensor on the bed
    /// (`None` heals them all).
    pub fn inject_sensor_faults(&mut self, faults: Option<SensorFaultModel>) {
        for ch in &mut self.channels {
            ch.thermocouple.inject_faults(faults);
            ch.spd.inject_faults(faults);
        }
    }

    /// Advances the testbed by `seconds` of simulated time.
    pub fn run(&mut self, seconds: f64) {
        let worst = self.advance((seconds / self.dt).ceil() as u64);
        telemetry::event!(
            Level::Debug,
            "thermal_run",
            seconds = seconds,
            elapsed_s = self.elapsed,
            max_deviation_c = worst,
        );
    }

    /// Steps every channel `steps` times, tracing per-channel set-point
    /// tracking and returning the worst absolute deviation of any
    /// targeted channel over the window.
    fn advance(&mut self, steps: u64) -> f64 {
        let mut worst: f64 = 0.0;
        for _ in 0..steps {
            for (i, ch) in self.channels.iter_mut().enumerate() {
                ch.step(self.heater_max, self.dt);
                if let Some(t) = ch.target {
                    let err = ch.plant.temperature().as_f64() - t.as_f64();
                    telemetry::event!(
                        Level::Trace,
                        "pid_track",
                        channel = i,
                        target_c = t.as_f64(),
                        error_c = err,
                    );
                    worst = worst.max(err.abs());
                }
            }
            self.elapsed += self.dt;
        }
        let _ = telemetry::with_registry(|reg| {
            reg.register_histogram("pid_max_deviation_c", &DEVIATION_BUCKETS_C);
            reg.observe("pid_max_deviation_c", worst);
        });
        worst
    }

    /// Runs for `seconds` more and returns the worst absolute deviation of
    /// any *targeted* channel from its set point observed during that
    /// window (the paper's "maximum deviation" metric).
    pub fn max_deviation_over(&mut self, seconds: f64) -> f64 {
        let worst = self.advance((seconds / self.dt).ceil() as u64);
        telemetry::event!(
            Level::Debug,
            "thermal_deviation_window",
            seconds = seconds,
            max_deviation_c = worst,
        );
        worst
    }

    /// Current readings of every channel.
    pub fn readings(&mut self) -> Vec<ChannelReading> {
        let mut out = Vec::with_capacity(CHANNEL_COUNT);
        for (id, ch) in ChannelId::all().zip(self.channels.iter_mut()) {
            let truth = ch.plant.temperature();
            out.push(ChannelReading {
                channel: id,
                actual: truth,
                thermocouple: ch.thermocouple.try_read(truth),
                spd: ch.spd.try_read(truth),
                target: ch.target,
            });
        }
        out
    }

    /// True temperature of one channel (for the DRAM model's input).
    pub fn temperature(&self, channel: ChannelId) -> Celsius {
        self.channels[channel.index()].plant.temperature()
    }

    /// Total simulated time elapsed in seconds.
    pub fn elapsed(&self) -> f64 {
        self.elapsed
    }

    /// Total heater energy switching events across all relays.
    pub fn total_relay_switches(&self) -> u64 {
        self.channels.iter().map(|c| c.relay.switch_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regulates_all_channels_within_one_degree() {
        let mut bed = ThermalTestbed::new(Celsius::new(25.0), 7);
        bed.set_all_targets(Celsius::new(60.0));
        bed.run(3600.0);
        let dev = bed.max_deviation_over(900.0);
        assert!(dev < 1.0, "max deviation {dev} °C");
    }

    #[test]
    fn per_channel_targets_are_independent() {
        let mut bed = ThermalTestbed::new(Celsius::new(25.0), 7);
        bed.set_target(ChannelId::new(0, 0), Celsius::new(50.0));
        bed.set_target(ChannelId::new(3, 1), Celsius::new(60.0));
        bed.run(5400.0);
        let t00 = bed.temperature(ChannelId::new(0, 0)).as_f64();
        let t31 = bed.temperature(ChannelId::new(3, 1)).as_f64();
        let t10 = bed.temperature(ChannelId::new(1, 0)).as_f64();
        assert!((t00 - 50.0).abs() < 1.0, "ch(0,0) {t00}");
        assert!((t31 - 60.0).abs() < 1.0, "ch(3,1) {t31}");
        assert!(t10 < 30.0, "unheated channel {t10}");
    }

    #[test]
    fn self_heating_is_compensated_by_controller() {
        let mut bed = ThermalTestbed::new(Celsius::new(25.0), 7);
        bed.set_all_targets(Celsius::new(50.0));
        bed.set_self_heating(ChannelId::new(1, 0), Watts::new(2.0));
        bed.run(5400.0);
        let dev = bed.max_deviation_over(600.0);
        assert!(dev < 1.0, "deviation with self-heating {dev}");
    }

    #[test]
    fn clear_targets_lets_channels_cool() {
        let mut bed = ThermalTestbed::new(Celsius::new(25.0), 7);
        bed.set_all_targets(Celsius::new(60.0));
        bed.run(3600.0);
        bed.clear_targets();
        bed.run(7200.0);
        for id in ChannelId::all() {
            assert!(bed.temperature(id).as_f64() < 27.0);
        }
    }

    #[test]
    fn readings_cover_all_channels() {
        let mut bed = ThermalTestbed::new(Celsius::new(25.0), 7);
        let r = bed.readings();
        assert_eq!(r.len(), CHANNEL_COUNT);
        assert_eq!(r[0].channel, ChannelId::new(0, 0));
        assert_eq!(r[7].channel, ChannelId::new(3, 1));
    }

    #[test]
    fn regulation_survives_flaky_sensors() {
        let mut bed = ThermalTestbed::new(Celsius::new(25.0), 7);
        bed.inject_sensor_faults(Some(SensorFaultModel::new(0.05, 0.05)));
        bed.set_all_targets(Celsius::new(60.0));
        bed.run(3600.0);
        let dev = bed.max_deviation_over(900.0);
        assert!(dev < 1.5, "deviation with flaky sensors {dev} °C");
        // Healing the sensors restores the paper-grade regulation bound.
        bed.inject_sensor_faults(None);
        bed.run(600.0);
        let healed = bed.max_deviation_over(900.0);
        assert!(healed < 1.0, "deviation after healing {healed} °C");
    }

    #[test]
    fn faulty_bed_reports_dropouts_in_readings() {
        let mut bed = ThermalTestbed::new(Celsius::new(25.0), 11);
        bed.inject_sensor_faults(Some(SensorFaultModel::new(0.0, 1.0)));
        let r = bed.readings();
        assert!(r
            .iter()
            .all(|c| c.thermocouple.is_none() && c.spd.is_none()));
        bed.inject_sensor_faults(None);
        let r = bed.readings();
        assert!(r
            .iter()
            .all(|c| c.thermocouple.is_some() && c.spd.is_some()));
    }

    #[test]
    fn channel_id_index_roundtrip() {
        for (i, id) in ChannelId::all().enumerate() {
            assert_eq!(id.index(), i);
        }
    }

    #[test]
    #[should_panic(expected = "dimm index")]
    fn channel_id_rejects_bad_dimm() {
        let _ = ChannelId::new(4, 0);
    }
}
