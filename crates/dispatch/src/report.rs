//! Dispatch run reports, split the same way every subsystem here splits
//! them: a **chronicle** (pure function of the spec — the byte-identity
//! artifact), an **execution** side (worker count, host-dependent), and
//! the observatory's distillation (deterministic, but serialized
//! separately so the chronicle contract stays minimal).

use control_plane::{DispatchBoardStatus, DispatchStatus};
use observatory::ObservatoryReport;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Latency quantiles of one board's served requests, µs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Median sojourn latency.
    pub p50_us: u64,
    /// 95th percentile.
    pub p95_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// Worst served request.
    pub max_us: u64,
}

impl LatencyStats {
    /// Quantiles of one board's latency log (empty log ⇒ all zero).
    pub fn of(latencies: &[u64]) -> Self {
        if latencies.is_empty() {
            return LatencyStats::default();
        }
        let mut sorted = latencies.to_vec();
        sorted.sort_unstable();
        let at = |q: f64| {
            let idx = (q * (sorted.len() - 1) as f64).round() as usize;
            sorted[idx]
        };
        LatencyStats {
            p50_us: at(0.50),
            p95_us: at(0.95),
            p99_us: at(0.99),
            max_us: *sorted.last().expect("non-empty"),
        }
    }
}

/// One board's line in the chronicle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoardRow {
    /// Fleet-wide board id.
    pub board: u32,
    /// Operating mode at the end of the run (`exploited` | `nominal`).
    pub final_mode: String,
    /// Requests served.
    pub served: u64,
    /// QoS violations among them.
    pub violations: u64,
    /// Total energy drawn over the run, J.
    pub energy_joules: f64,
    /// Busy power of the final operating mode, W.
    pub busy_watts: f64,
    /// Capacity at the end of the run (after any derate).
    pub final_capacity_qps: u64,
    /// Margin decay across the run's epochs, from the versioned
    /// safe-point trend (0 when re-characterization restored it).
    pub margin_decay_mv: i64,
    /// Latency quantiles of the board's served requests.
    pub latency: LatencyStats,
    /// Drain phases entered.
    pub drained: u32,
    /// Maintenance windows entered.
    pub maintained: u32,
    /// Whether a breaker trip backed the board off to nominal.
    pub tripped: bool,
    /// Whether the board was quarantined.
    pub quarantined: bool,
}

/// One epoch boundary's line in the chronicle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochRow {
    /// Epoch index (boundaries start at 1).
    pub epoch: u32,
    /// Boundary time, µs from trace start.
    pub at_us: u64,
    /// `(board, cumulative decay mV)` for every board aged here.
    pub decayed: Vec<(u32, i64)>,
    /// Boards the maintenance planner scheduled at this boundary.
    pub scheduled: Vec<u32>,
}

/// The deterministic measurement side of a dispatch run: everything in
/// here is a pure function of the [`crate::DispatchSpec`], independent
/// of worker count — the byte-identity artifact `BENCH_dispatch.json`
/// gates on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DispatchChronicle {
    /// Fleet size.
    pub boards: u32,
    /// Master seed.
    pub seed: u64,
    /// Whether this is the nominal-only ablation arm.
    pub nominal_only: bool,
    /// The traffic profile dispatched.
    pub profile: control_plane::LoadProfile,
    /// Streaming FNV-1a fingerprint of the routed trace.
    pub trace_fingerprint: u64,
    /// Aging epochs across the trace.
    pub epochs: u32,
    /// QoS latency deadline, µs.
    pub deadline_us: u64,
    /// Admission bound, µs of backlog.
    pub queue_cap_us: u64,
    /// Healthy per-board capacity.
    pub base_capacity_qps: u64,
    /// Offered requests.
    pub requests: u64,
    /// Requests placed and served.
    pub served: u64,
    /// Requests dropped at admission.
    pub rejected: u64,
    /// Served requests that missed the deadline.
    pub qos_violations: u64,
    /// Placements steered around an unroutable preferred board.
    pub reroutes: u64,
    /// Drain phases started.
    pub drains: u64,
    /// Breaker-trip backoffs to nominal.
    pub breaker_backoffs: u64,
    /// Maintenance windows entered.
    pub maintenance_windows: u64,
    /// Fleet-wide energy over the run, J.
    pub energy_joules: f64,
    /// Fleet-wide watts per unit of served QPS (numerically, joules
    /// per served request).
    pub watts_per_qps: f64,
    /// Per-board rows, in board order.
    pub board_rows: Vec<BoardRow>,
    /// Per-epoch aging and maintenance decisions.
    pub epoch_rows: Vec<EpochRow>,
    /// `dispatch_*` telemetry counters.
    pub counters: BTreeMap<String, u64>,
}

/// The host-dependent side: how the run was executed, never what it
/// measured.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DispatchExecution {
    /// Worker threads used for characterization and latency statistics.
    pub workers: usize,
}

/// A full dispatch run: chronicle + execution + observatory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DispatchReport {
    /// The deterministic measurement side.
    pub chronicle: DispatchChronicle,
    /// The execution side (pool-dependent).
    pub execution: DispatchExecution,
    /// Causal timeline, incidents and SLO verdicts — deterministic, but
    /// serialized apart from the chronicle.
    pub observatory: ObservatoryReport,
}

impl DispatchReport {
    /// Canonical JSON of the chronicle — the worker-count byte-identity
    /// artifact.
    pub fn chronicle_json(&self) -> String {
        serde::json::to_string(&self.chronicle)
    }

    /// Canonical JSON of the observatory report (deterministic too,
    /// asserted separately).
    pub fn observatory_json(&self) -> String {
        serde::json::to_string(&self.observatory)
    }

    /// The `GET /v1/dispatch` summary this run publishes.
    pub fn status(&self) -> DispatchStatus {
        DispatchStatus {
            enabled: !self.chronicle.nominal_only,
            requests_routed: self.chronicle.served,
            requests_rejected: self.chronicle.rejected,
            qos_violations: self.chronicle.qos_violations,
            reroutes: self.chronicle.reroutes,
            watts_per_qps: self.chronicle.watts_per_qps,
            boards: self
                .chronicle
                .board_rows
                .iter()
                .map(|row| DispatchBoardStatus {
                    board: row.board,
                    mode: row.final_mode.clone(),
                    capacity_qps: row.final_capacity_qps,
                    busy_watts: row.busy_watts,
                    served: row.served,
                    margin_decay_mv: row.margin_decay_mv,
                })
                .collect(),
        }
    }

    /// Human-readable run summary.
    pub fn render(&self) -> String {
        let c = &self.chronicle;
        let mut out = String::new();
        let arm = if c.nominal_only {
            "nominal-only"
        } else {
            "economic"
        };
        let _ = writeln!(
            out,
            "dispatch ({arm}): {} boards, seed {}, {} requests over {:.0} s",
            c.boards, c.seed, c.requests, c.profile.duration_s
        );
        let _ = writeln!(
            out,
            "  served {} / rejected {} / QoS violations {} / reroutes {}",
            c.served, c.rejected, c.qos_violations, c.reroutes
        );
        let _ = writeln!(
            out,
            "  energy {:.1} J, {:.4} W per QPS; {} drains, {} windows, {} backoffs",
            c.energy_joules, c.watts_per_qps, c.drains, c.maintenance_windows, c.breaker_backoffs
        );
        for row in &c.board_rows {
            let _ = writeln!(
                out,
                "  board {:>3} [{:>9}] served {:>6}  p99 {:>6} µs  {:>7.1} J  cap {:>3} QPS  decay {:>2} mV{}{}",
                row.board,
                row.final_mode,
                row.served,
                row.latency.p99_us,
                row.energy_joules,
                row.final_capacity_qps,
                row.margin_decay_mv,
                if row.tripped { "  TRIPPED" } else { "" },
                if row.quarantined { "  QUARANTINED" } else { "" },
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_are_deterministic_and_ordered() {
        let latencies: Vec<u64> = (1..=100).rev().collect();
        let stats = LatencyStats::of(&latencies);
        assert_eq!(stats.p50_us, 51);
        assert_eq!(stats.p95_us, 95);
        assert_eq!(stats.p99_us, 99);
        assert_eq!(stats.max_us, 100);
        assert_eq!(LatencyStats::of(&[]), LatencyStats::default());
    }
}
