//! Economic dispatch: routing live traffic onto exploited guardbands.
//!
//! The paper's exploitation result (§V: 20.2 % server power reduction
//! at the characterized safe point) prices a *single* board. A fleet
//! that has run the characterization pipeline holds something better:
//! a *heterogeneous* cost surface, where each board's watts-per-request
//! depends on how deep its silicon let the guardband be pushed. This
//! crate closes the loop from measurement to money — it routes a
//! simulated million-user request stream (the control plane's
//! diurnal-plus-flash-crowd load generator) across that surface,
//! co-optimizing energy against QoS:
//!
//! * [`economics`] — the safe-point database priced into per-board
//!   capacity, idle/busy watts and joules-per-request, exploited and
//!   nominal modes both;
//! * [`router`] — the seeded placement pass: weighted by
//!   `headroom² / joules_per_request`, bounded per-board queues, hard
//!   admission control;
//! * [`sim`] — the event loop where aging erodes margins epoch by
//!   epoch, the maintenance planner drains boards ahead of their
//!   re-characterization windows, breaker trips back boards off to
//!   nominal-cost routing, and quarantines remove them;
//! * [`report`] — the chronicle / execution / observatory split, with
//!   the chronicle byte-identical across 1/2/4/8 workers
//!   (`BENCH_dispatch.json` gates on it) and a
//!   [`control_plane::DispatchStatus`] summary for `GET /v1/dispatch`.
//!
//! The headline claim the bench gates on: against a nominal-only
//! ablation (same fleet, same trace, every board priced at
//! manufacturer-nominal), the economic dispatcher serves the same
//! stream at strictly lower watts-per-QPS with no additional QoS
//! violations.
//!
//! # Examples
//!
//! ```
//! use dispatch::{run_dispatch, DispatchSpec};
//!
//! let spec = DispatchSpec::quick(4, 2018);
//! let report = run_dispatch(&spec, 2);
//! assert_eq!(report.chronicle.requests,
//!            report.chronicle.served + report.chronicle.rejected);
//! println!("{}", report.render());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod economics;
pub mod report;
pub mod router;
pub mod sim;

pub use economics::{fleet_economics, BoardEconomics, EconomicsConfig};
pub use report::{
    BoardRow, DispatchChronicle, DispatchExecution, DispatchReport, EpochRow, LatencyStats,
};
pub use router::{BoardPort, Candidate, Placement, PlacementRouter, QueuePolicy};
pub use sim::{run_dispatch, run_dispatch_with_store, DispatchSpec};
