//! Per-board request economics: what a request costs, in watts, on each
//! board of a heterogeneous fleet.
//!
//! The characterization pipeline leaves every board with a
//! [`BoardSafePoint`] — a validated operating point somewhere between
//! manufacturer-nominal and the silicon's true Vmin. Deeply-exploited
//! boards draw less power for the same work, so under the whole-server
//! model ([`ServerPowerModel`]) they are strictly cheaper *per request*.
//! This module turns the safe-point database into the router's cost
//! table: capacity, idle watts, busy watts and joules-per-request for
//! each board, in both its exploited and its nominal-fallback mode.

use guardband_core::safepoint::{BoardSafePoint, SafePointStore};
use power_model::server::{OperatingPoint, ServerLoad, ServerPowerModel};
use power_model::units::Celsius;
use serde::{Deserialize, Serialize};

/// The knobs that turn margins into capacity and cost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EconomicsConfig {
    /// Sustainable request rate of a healthy board.
    pub base_capacity_qps: u64,
    /// Capacity lost per millivolt of margin decay: aged silicon needs
    /// guard cycles (re-execution head-room), modeled as a linear QPS
    /// derate until re-characterization restores the margin.
    pub derate_qps_per_mv: u64,
    /// Floor on the derate: a board never loses more than this fraction
    /// of its base capacity to aging.
    pub max_derate_fraction: f64,
    /// DRAM bandwidth utilization of the serving workload at full load.
    pub busy_utilization: f64,
    /// Board temperature assumed for the power model.
    pub temperature_c: f64,
}

impl Default for EconomicsConfig {
    fn default() -> Self {
        EconomicsConfig {
            base_capacity_qps: 200,
            derate_qps_per_mv: 2,
            max_derate_fraction: 0.3,
            // The paper's jammer-detector deployment: ~10.7 % DRAM
            // bandwidth at 45 °C.
            busy_utilization: ServerLoad::jammer_detector().dram_bandwidth_utilization,
            temperature_c: 45.0,
        }
    }
}

impl EconomicsConfig {
    fn busy_load(&self) -> ServerLoad {
        ServerLoad {
            dram_bandwidth_utilization: self.busy_utilization,
            temperature: Celsius::new(self.temperature_c),
        }
    }

    fn idle_load(&self) -> ServerLoad {
        ServerLoad {
            dram_bandwidth_utilization: 0.0,
            temperature: Celsius::new(self.temperature_c),
        }
    }

    /// Capacity after `decay_mv` of margin erosion, never below one
    /// request per second or the derate floor.
    pub fn derated_capacity(&self, decay_mv: i64) -> u64 {
        let decay = decay_mv.max(0) as u64;
        let cap = (self.base_capacity_qps as f64 * self.max_derate_fraction) as u64;
        let lost = (decay * self.derate_qps_per_mv).min(cap);
        (self.base_capacity_qps - lost).max(1)
    }
}

/// One board's cost card in one operating mode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoardEconomics {
    /// Fleet-wide board id.
    pub board: u32,
    /// Whether this card prices the exploited safe point (vs nominal).
    pub exploited: bool,
    /// Board power with no traffic, W.
    pub idle_watts: f64,
    /// Board power at full serving load, W.
    pub busy_watts: f64,
    /// PMD margin the mode exploits below nominal, mV (0 for nominal).
    pub margin_mv: i64,
}

impl BoardEconomics {
    /// Marginal energy of one request at capacity, J.
    pub fn joules_per_request(&self, capacity_qps: u64) -> f64 {
        self.busy_watts / capacity_qps.max(1) as f64
    }

    /// Prices a board at an explicit operating point.
    pub fn at_point(
        board: u32,
        point: &OperatingPoint,
        exploited: bool,
        model: &ServerPowerModel,
        config: &EconomicsConfig,
    ) -> Self {
        let busy = model.power(point, &config.busy_load()).total().as_f64();
        let idle = model.power(point, &config.idle_load()).total().as_f64();
        let margin = i64::from(power_model::units::Millivolts::XGENE2_NOMINAL.as_u32())
            - i64::from(point.pmd_voltage.as_u32());
        BoardEconomics {
            board,
            exploited,
            idle_watts: idle,
            busy_watts: busy,
            margin_mv: if exploited { margin } else { 0 },
        }
    }

    /// Prices a board at manufacturer nominal — the fallback mode after
    /// a breaker trip, and the whole fleet in the ablation arm.
    pub fn nominal(board: u32, model: &ServerPowerModel, config: &EconomicsConfig) -> Self {
        Self::at_point(board, &OperatingPoint::nominal(), false, model, config)
    }

    /// Prices a board from its characterized safe point; boards whose
    /// characterization failed (no operating point) stay nominal.
    pub fn from_record(
        record: &BoardSafePoint,
        model: &ServerPowerModel,
        config: &EconomicsConfig,
    ) -> Self {
        match &record.operating_point {
            Some(point) => Self::at_point(record.board, point, true, model, config),
            None => Self::nominal(record.board, model, config),
        }
    }
}

/// Cost cards for a whole fleet, derived from the safe-point database.
/// Boards absent from the store serve at nominal.
pub fn fleet_economics(
    boards: u32,
    store: &SafePointStore,
    model: &ServerPowerModel,
    config: &EconomicsConfig,
) -> Vec<BoardEconomics> {
    (0..boards)
        .map(|board| match store.get(board) {
            Some(record) => BoardEconomics::from_record(record, model, config),
            None => BoardEconomics::nominal(board, model, config),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use guardband_core::safepoint::SafePointPolicy;
    use power_model::units::Millivolts;
    use xgene_sim::sigma::SigmaBin;

    fn record(board: u32, rail: u32) -> BoardSafePoint {
        let policy = SafePointPolicy::dsn18();
        BoardSafePoint {
            board,
            attempt: 0,
            bin: SigmaBin::Ttt,
            core_vmin_mv: vec![Some(rail - 5); 8],
            rail_vmin_mv: Some(rail),
            operating_point: Some(policy.derive_from_measured(Millivolts::new(rail), policy.trefp)),
            bank_safe_trefp_ms: vec![2283.0; 8],
            savings_fraction: 0.2,
            savings_watts: 6.0,
        }
    }

    #[test]
    fn exploited_boards_are_cheaper_per_request() {
        let model = ServerPowerModel::xgene2();
        let config = EconomicsConfig::default();
        let exploited = BoardEconomics::from_record(&record(0, 905), &model, &config);
        let nominal = BoardEconomics::nominal(0, &model, &config);
        assert!(exploited.exploited && !nominal.exploited);
        assert!(exploited.busy_watts < nominal.busy_watts);
        assert!(exploited.idle_watts < nominal.idle_watts);
        assert!(
            exploited.joules_per_request(config.base_capacity_qps)
                < nominal.joules_per_request(config.base_capacity_qps)
        );
        assert_eq!(exploited.margin_mv, 50);
        assert_eq!(nominal.margin_mv, 0);
    }

    #[test]
    fn deeper_margins_price_lower() {
        let model = ServerPowerModel::xgene2();
        let config = EconomicsConfig::default();
        let deep = BoardEconomics::from_record(&record(0, 890), &model, &config);
        let shallow = BoardEconomics::from_record(&record(1, 945), &model, &config);
        assert!(deep.margin_mv > shallow.margin_mv);
        assert!(deep.busy_watts < shallow.busy_watts);
    }

    #[test]
    fn decay_derates_capacity_with_a_floor() {
        let config = EconomicsConfig::default();
        assert_eq!(config.derated_capacity(0), 200);
        assert_eq!(config.derated_capacity(5), 190);
        // 0.3 × 200 = 60 QPS is the most aging may take.
        assert_eq!(config.derated_capacity(1000), 140);
        assert_eq!(
            config.derated_capacity(-3),
            200,
            "negative decay is no decay"
        );
    }

    #[test]
    fn failed_characterization_falls_back_to_nominal() {
        let model = ServerPowerModel::xgene2();
        let config = EconomicsConfig::default();
        let mut rec = record(4, 905);
        rec.operating_point = None;
        let econ = BoardEconomics::from_record(&rec, &model, &config);
        assert!(!econ.exploited);
        assert_eq!(econ.margin_mv, 0);
    }

    #[test]
    fn fleet_table_covers_every_board() {
        let model = ServerPowerModel::xgene2();
        let config = EconomicsConfig::default();
        let mut store = SafePointStore::new();
        store.insert(record(1, 905));
        let table = fleet_economics(3, &store, &model, &config);
        assert_eq!(table.len(), 3);
        assert!(!table[0].exploited, "uncharacterized board 0 is nominal");
        assert!(table[1].exploited);
        assert!(!table[2].exploited);
    }
}
