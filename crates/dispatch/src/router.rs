//! Power-aware placement: the seeded, deterministic request router.
//!
//! Placement is weighted-random over the routable boards, with weight
//!
//! ```text
//! w(b) = headroom(b)² / joules_per_request(b)
//! ```
//!
//! so cheap (deeply-exploited) boards attract traffic in proportion to
//! their energy advantage while the quadratic headroom term bleeds load
//! off any board whose bounded queue is filling — the co-optimization of
//! watts-per-request against QoS in one expression. Admission control is
//! a hard bound: a request is only placed on a board whose backlog plus
//! service time fits the queue cap, and rejected outright when no
//! routable board has room. One seeded [`StdRng`] drives every pick in
//! arrival order, so the same seed places the same trace identically —
//! the foundation of the chronicle's byte-identity across worker counts.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Queue discipline shared by every board: one server, bounded backlog.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueuePolicy {
    /// Latency target; a served request beyond it is a QoS violation.
    pub deadline_us: u64,
    /// Admission bound on backlog + service time.
    pub queue_cap_us: u64,
}

impl Default for QueuePolicy {
    fn default() -> Self {
        // Cap below the deadline: an *admitted* request can only violate
        // QoS if capacity was derated after admission, so a well-sized
        // fleet serves with structurally zero violations.
        QueuePolicy {
            deadline_us: 100_000,
            queue_cap_us: 80_000,
        }
    }
}

/// One board's serving queue: a single server draining at capacity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoardPort {
    /// Current sustainable rate (base minus any aging derate).
    pub capacity_qps: u64,
    /// When the queue drains, µs from trace start.
    pub free_at_us: u64,
}

impl BoardPort {
    /// A drained port at the given capacity.
    pub fn idle(capacity_qps: u64) -> Self {
        BoardPort {
            capacity_qps,
            free_at_us: 0,
        }
    }

    /// Service time of one request at the current capacity.
    pub fn service_us(&self) -> u64 {
        1_000_000 / self.capacity_qps.max(1)
    }

    /// Work queued ahead of an arrival at `now`.
    pub fn backlog_us(&self, now_us: u64) -> u64 {
        self.free_at_us.saturating_sub(now_us)
    }

    /// Fractional queue headroom in `[0, 1]`.
    pub fn headroom(&self, now_us: u64, policy: &QueuePolicy) -> f64 {
        let backlog = self.backlog_us(now_us).min(policy.queue_cap_us);
        1.0 - backlog as f64 / policy.queue_cap_us.max(1) as f64
    }

    /// Whether one more request fits under the admission bound.
    pub fn admits(&self, now_us: u64, policy: &QueuePolicy) -> bool {
        self.backlog_us(now_us) + self.service_us() <= policy.queue_cap_us
    }

    /// Enqueues one request, returning its sojourn latency.
    pub fn assign(&mut self, now_us: u64) -> u64 {
        let latency = self.backlog_us(now_us) + self.service_us();
        self.free_at_us = self.free_at_us.max(now_us) + self.service_us();
        latency
    }
}

/// One routable board as the placement pass sees it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// Index into the fleet table.
    pub index: usize,
    /// Marginal energy of a request on this board right now, J.
    pub joules_per_request: f64,
    /// Queue headroom in `[0, 1]`.
    pub headroom: f64,
    /// Whether the board is routable (serving, not draining or down).
    pub routable: bool,
    /// Whether the admission bound has room for one more request.
    pub admits: bool,
}

impl Candidate {
    /// The placement weight: headroom² per joule.
    pub fn weight(&self) -> f64 {
        if !(self.routable && self.admits) {
            return 0.0;
        }
        (self.headroom * self.headroom) / self.joules_per_request.max(1e-9)
    }
}

/// What happened to one arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Placed on the board at this fleet index; `rerouted` marks that
    /// the energy-optimal board was unroutable or full and traffic was
    /// steered around it.
    Placed {
        /// Chosen fleet index.
        index: usize,
        /// True when the preferred board had to be avoided.
        rerouted: bool,
    },
    /// No routable board had admission room: the request is dropped at
    /// the front door rather than queued past the QoS bound.
    Rejected,
}

/// The seeded placement pass.
#[derive(Debug)]
pub struct PlacementRouter {
    rng: StdRng,
}

impl PlacementRouter {
    /// Decorrelates the placement stream from the trace seed.
    pub fn new(seed: u64) -> Self {
        PlacementRouter {
            rng: StdRng::seed_from_u64(seed ^ 0xD15C_0DE5),
        }
    }

    /// Places one arrival over the candidate set. Candidates must be in
    /// fleet order; the pick is a cumulative-weight sample from the
    /// router's own rng, so identical inputs place identically.
    pub fn place(&mut self, candidates: &[Candidate]) -> Placement {
        // The energy-optimal board, ignoring availability: deviation
        // from it is what the reroute counter measures.
        let preferred = candidates
            .iter()
            .max_by(|a, b| {
                let wa = (a.headroom * a.headroom) / a.joules_per_request.max(1e-9);
                let wb = (b.headroom * b.headroom) / b.joules_per_request.max(1e-9);
                wa.partial_cmp(&wb)
                    .expect("weights are finite")
                    .then(b.index.cmp(&a.index))
            })
            .map(|c| c.index);

        let total: f64 = candidates.iter().map(Candidate::weight).sum();
        if total <= 0.0 {
            return Placement::Rejected;
        }
        let mut roll = self.rng.gen_range(0.0..total);
        let mut chosen = None;
        for candidate in candidates {
            let weight = candidate.weight();
            if weight <= 0.0 {
                continue;
            }
            if roll < weight {
                chosen = Some(candidate.index);
                break;
            }
            roll -= weight;
        }
        // Float summation slack can leave the roll a hair past the last
        // positive weight; fall back to it.
        let index = chosen.unwrap_or_else(|| {
            candidates
                .iter()
                .rev()
                .find(|c| c.weight() > 0.0)
                .expect("total > 0 implies a positive weight")
                .index
        });
        let rerouted = preferred.is_some_and(|p| {
            p != index
                && candidates
                    .iter()
                    .find(|c| c.index == p)
                    .is_some_and(|c| !(c.routable && c.admits))
        });
        Placement::Placed { index, rerouted }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidate(index: usize, jpr: f64, headroom: f64) -> Candidate {
        Candidate {
            index,
            joules_per_request: jpr,
            headroom,
            routable: true,
            admits: true,
        }
    }

    #[test]
    fn ports_queue_and_bound_latency() {
        let policy = QueuePolicy {
            deadline_us: 100_000,
            queue_cap_us: 80_000,
        };
        let mut port = BoardPort::idle(200); // 5 ms service
        assert_eq!(port.service_us(), 5_000);
        assert_eq!(port.assign(0), 5_000);
        assert_eq!(port.assign(0), 10_000);
        assert_eq!(port.backlog_us(0), 10_000);
        assert!((port.headroom(0, &policy) - 0.875).abs() < 1e-12);
        // Fill to the cap: 16 requests of 5 ms fit, the 17th does not.
        for _ in 0..14 {
            port.assign(0);
        }
        assert!(!port.admits(0, &policy));
        // Time passing drains the queue.
        assert!(port.admits(80_000, &policy));
    }

    #[test]
    fn same_seed_places_identically() {
        let candidates: Vec<Candidate> = (0..4)
            .map(|i| candidate(i, 0.1 + i as f64 * 0.05, 1.0))
            .collect();
        let picks_a: Vec<Placement> = {
            let mut router = PlacementRouter::new(7);
            (0..64).map(|_| router.place(&candidates)).collect()
        };
        let picks_b: Vec<Placement> = {
            let mut router = PlacementRouter::new(7);
            (0..64).map(|_| router.place(&candidates)).collect()
        };
        assert_eq!(picks_a, picks_b);
        let mut other = PlacementRouter::new(8);
        let picks_c: Vec<Placement> = (0..64).map(|_| other.place(&candidates)).collect();
        assert_ne!(picks_a, picks_c, "a different seed places differently");
    }

    #[test]
    fn cheap_boards_attract_more_traffic() {
        let candidates = vec![candidate(0, 0.05, 1.0), candidate(1, 0.20, 1.0)];
        let mut router = PlacementRouter::new(2018);
        let mut counts = [0u32; 2];
        for _ in 0..2_000 {
            if let Placement::Placed { index, .. } = router.place(&candidates) {
                counts[index] += 1;
            }
        }
        // 4× cheaper ⇒ ~4× the traffic under the weight law.
        assert!(
            counts[0] > counts[1] * 3,
            "cheap board got {} vs {}",
            counts[0],
            counts[1]
        );
    }

    #[test]
    fn vanishing_headroom_bleeds_load_away() {
        let candidates = vec![
            Candidate {
                headroom: 0.1,
                ..candidate(0, 0.05, 0.1)
            },
            candidate(1, 0.20, 1.0),
        ];
        let mut router = PlacementRouter::new(2018);
        let mut counts = [0u32; 2];
        for _ in 0..2_000 {
            if let Placement::Placed { index, .. } = router.place(&candidates) {
                counts[index] += 1;
            }
        }
        // Despite being 4× cheaper, the full board's headroom² ≈ 0.01
        // collapses its weight below the idle expensive board.
        assert!(
            counts[1] > counts[0],
            "full cheap board got {} vs idle {}",
            counts[0],
            counts[1]
        );
    }

    #[test]
    fn unroutable_preferred_board_counts_as_a_reroute() {
        let mut candidates = vec![candidate(0, 0.05, 1.0), candidate(1, 0.20, 1.0)];
        candidates[0].routable = false; // the cheap board is draining
        let mut router = PlacementRouter::new(11);
        for _ in 0..32 {
            match router.place(&candidates) {
                Placement::Placed { index, rerouted } => {
                    assert_eq!(index, 1);
                    assert!(rerouted, "avoiding the preferred board is a reroute");
                }
                Placement::Rejected => panic!("board 1 admits"),
            }
        }
    }

    #[test]
    fn no_admitting_board_rejects() {
        let mut candidates = vec![candidate(0, 0.05, 0.0), candidate(1, 0.20, 0.0)];
        for c in &mut candidates {
            c.admits = false;
        }
        let mut router = PlacementRouter::new(3);
        assert_eq!(router.place(&candidates), Placement::Rejected);
    }
}
