//! The dispatch simulation: a seeded request stream routed across a
//! heterogeneous fleet, with aging, breaker backoff and maintenance
//! drains folded into one deterministic event loop.
//!
//! Three clocks interleave on a single microsecond timeline:
//!
//! 1. **arrivals** — the open-loop [`LoadProfile`] trace (diurnal
//!    sinusoid plus flash crowds), placed by the seeded
//!    [`PlacementRouter`];
//! 2. **epochs** — at every epoch boundary, exploited boards age: a
//!    seeded margin-decay draw erodes each board's rail Vmin, which
//!    re-derives its operating point (power up, margin down) and
//!    derates its capacity;
//! 3. **maintenance** — the boundary also runs
//!    [`fleet::MaintenancePolicy::plan`] over the decayed margins; every
//!    scheduled board gets a drain lead (traffic steered away *before*
//!    the window starts), a powered-down re-characterization window and
//!    a resume with its margin restored.
//!
//! Injected faults ride the same timeline: a breaker trip backs the
//! board off to nominal-cost routing (it keeps serving, expensively); a
//! quarantine removes it outright. Everything downstream of the trace
//! is sequential and seeded, so the chronicle is byte-identical for any
//! worker count — workers only parallelize the up-front fleet
//! characterization and the post-hoc per-board latency statistics, both
//! provably pool-independent.

use crate::economics::{fleet_economics, BoardEconomics, EconomicsConfig};
use crate::report::{
    BoardRow, DispatchChronicle, DispatchExecution, DispatchReport, EpochRow, LatencyStats,
};
use crate::router::{BoardPort, Candidate, Placement, PlacementRouter, QueuePolicy};
use control_plane::loadgen::{LoadProfile, TraceDigest};
use fleet::{
    run_fleet, BoardHealth, FleetCampaign, FleetConfig, FleetSpec, MaintenancePolicy,
    SafePointStore,
};
use guardband_core::epoch::VersionedSafePointStore;
use guardband_core::safepoint::{BoardSafePoint, SafePointPolicy};
use observatory::{Observatory, SloSpec, StreamBuilder};
use power_model::server::ServerPowerModel;
use power_model::units::Millivolts;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;
use telemetry::metrics::Registry;
use telemetry::{counter, gauge, FieldValue, Level, Telemetry};

/// Everything a dispatch run needs, all of it seeded.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DispatchSpec {
    /// Fleet size.
    pub boards: u32,
    /// Master seed: characterization, decay draws and placement all
    /// derive from it.
    pub seed: u64,
    /// The offered traffic.
    pub profile: LoadProfile,
    /// Capacity and cost derivation knobs.
    pub economics: EconomicsConfig,
    /// Queue bounds and the QoS deadline.
    pub queue: QueuePolicy,
    /// Aging epochs across the trace (boundaries at `k/epochs` of the
    /// duration for `k` in `1..epochs`).
    pub epochs: u32,
    /// Upper bound of the per-epoch seeded margin-decay draw, mV.
    pub decay_mv_per_epoch: i64,
    /// The re-characterization scheduler run at every boundary.
    pub maintenance: MaintenancePolicy,
    /// How long before its window a scheduled board stops taking
    /// traffic (must cover the queue cap, so the drain loses nothing).
    pub drain_lead_us: u64,
    /// Length of one re-characterization window.
    pub window_duration_us: u64,
    /// Ablation arm: every board priced and routed at nominal, no
    /// aging, no maintenance.
    pub nominal_only: bool,
    /// Injected breaker trips, `(at_us, board)`: the board backs off to
    /// nominal-cost routing but keeps serving.
    pub breaker_trips: Vec<(u64, u32)>,
    /// Injected quarantines, `(at_us, board)`: the board stops serving.
    pub quarantines: Vec<(u64, u32)>,
}

impl DispatchSpec {
    /// A minute of diurnal traffic over a small fleet — the testing and
    /// example configuration.
    pub fn quick(boards: u32, seed: u64) -> Self {
        DispatchSpec {
            boards,
            seed,
            profile: LoadProfile {
                seed,
                ..LoadProfile::default()
            },
            economics: EconomicsConfig::default(),
            queue: QueuePolicy::default(),
            epochs: 4,
            decay_mv_per_epoch: 3,
            maintenance: MaintenancePolicy {
                margin_threshold_mv: 45,
                ce_cells_threshold: u64::MAX,
                max_epoch_age_months: 1000,
                budget_per_round: 1,
            },
            drain_lead_us: 2_000_000,
            window_duration_us: 3_000_000,
            nominal_only: false,
            breaker_trips: Vec::new(),
            quarantines: Vec::new(),
        }
    }

    /// The same run with dispatch economics switched off — the
    /// nominal-only ablation this dispatcher is benchmarked against.
    pub fn nominal_arm(&self) -> Self {
        DispatchSpec {
            nominal_only: true,
            ..self.clone()
        }
    }

    fn duration_us(&self) -> u64 {
        (self.profile.duration_s * 1e6) as u64
    }

    fn segment_us(&self) -> u64 {
        (self.duration_us() / u64::from(self.epochs.max(1))).max(1)
    }
}

/// Characterizes the fleet, then dispatches the trace across it.
pub fn run_dispatch(spec: &DispatchSpec, workers: usize) -> DispatchReport {
    let fleet = run_fleet(
        &FleetSpec::new(spec.boards, spec.seed),
        &FleetCampaign::quick(),
        &FleetConfig::with_workers(workers),
    );
    run_dispatch_with_store(spec, workers, &fleet.characterization.store)
}

/// Dispatches over an already-characterized fleet (the store is
/// pool-independent, so callers comparing worker counts or ablation
/// arms characterize once and reuse it).
pub fn run_dispatch_with_store(
    spec: &DispatchSpec,
    workers: usize,
    store: &SafePointStore,
) -> DispatchReport {
    assert!(workers > 0, "dispatch needs at least one worker");
    assert!(spec.boards > 0 && spec.epochs > 0);
    let registry = Rc::new(Registry::new());
    let guard = Telemetry::new()
        .with_registry(Rc::clone(&registry))
        .install();

    let mut sim = Sim::new(spec, store);
    sim.run();
    let stats = latency_stats(workers, &sim.latencies);

    counter!("dispatch_requests_total", sim.requests);
    counter!("dispatch_requests_routed_total", sim.served);
    counter!("dispatch_requests_rejected_total", sim.rejected);
    counter!("dispatch_qos_violations_total", sim.violations);
    counter!("dispatch_reroutes_total", sim.reroutes);
    counter!("dispatch_drains_total", sim.drains);
    counter!("dispatch_breaker_backoffs_total", sim.backoffs);
    counter!(
        "dispatch_maintenance_windows_total",
        sim.maintenance_windows
    );
    let watts_per_qps = if sim.served > 0 {
        sim.total_energy() / sim.served as f64
    } else {
        0.0
    };
    gauge!("dispatch_watts_per_qps", watts_per_qps);
    drop(guard);

    let observatory = sim.observe();
    let chronicle = sim.chronicle(stats, watts_per_qps, &registry);
    DispatchReport {
        chronicle,
        execution: DispatchExecution { workers },
        observatory,
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Exploited,
    Nominal,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Avail {
    Serving,
    Draining,
    Maintenance,
    Quarantined,
}

// Control-event kinds on the shared timeline, ordered for deterministic
// same-timestamp processing: capacity returns before it is consumed.
const K_WINDOW_END: u8 = 0;
const K_EPOCH: u8 = 1;
const K_TRIP: u8 = 2;
const K_QUARANTINE: u8 = 3;
const K_DRAIN: u8 = 4;
const K_WINDOW_START: u8 = 5;

struct BoardSim {
    exploited: BoardEconomics,
    nominal: BoardEconomics,
    mode: Mode,
    avail: Avail,
    port: BoardPort,
    orig_rail: Option<u32>,
    decay_mv: i64,
    attempt: u32,
    served: u64,
    violations: u64,
    violation_open: bool,
    energy_j: f64,
    seg_start_us: u64,
    tripped: bool,
    drained: u32,
    maintained: u32,
    quarantined: bool,
}

impl BoardSim {
    fn active(&self) -> &BoardEconomics {
        match self.mode {
            Mode::Exploited => &self.exploited,
            Mode::Nominal => &self.nominal,
        }
    }

    fn idle_watts_now(&self) -> f64 {
        match self.avail {
            Avail::Maintenance | Avail::Quarantined => 0.0,
            Avail::Serving | Avail::Draining => self.active().idle_watts,
        }
    }

    /// Closes the idle-power segment up to `now` — call before any
    /// state change that alters the board's idle draw.
    fn close_segment(&mut self, now_us: u64) {
        let now = now_us.max(self.seg_start_us);
        self.energy_j += self.idle_watts_now() * (now - self.seg_start_us) as f64 / 1e6;
        self.seg_start_us = now;
    }

    fn update_capacity(&mut self, config: &EconomicsConfig) {
        self.port.capacity_qps = match self.mode {
            Mode::Exploited => config.derated_capacity(self.decay_mv),
            Mode::Nominal => config.base_capacity_qps,
        };
    }
}

struct Fact {
    at_us: u64,
    board: u32,
    level: Level,
    name: &'static str,
    fields: Vec<(String, FieldValue)>,
}

struct Sim<'a> {
    spec: &'a DispatchSpec,
    model: ServerPowerModel,
    policy: SafePointPolicy,
    boards: Vec<BoardSim>,
    placement: PlacementRouter,
    versioned: VersionedSafePointStore,
    pending_maintenance: BTreeSet<u32>,
    controls: BTreeSet<(u64, u8, u32)>,
    facts: Vec<Fact>,
    latencies: Vec<Vec<u64>>,
    epoch_rows: Vec<EpochRow>,
    trace_fingerprint: u64,
    requests: u64,
    served: u64,
    rejected: u64,
    violations: u64,
    reroutes: u64,
    drains: u64,
    backoffs: u64,
    maintenance_windows: u64,
}

impl<'a> Sim<'a> {
    fn new(spec: &'a DispatchSpec, store: &SafePointStore) -> Self {
        let model = ServerPowerModel::xgene2();
        let policy = SafePointPolicy::dsn18();
        let exploited_cards = fleet_economics(spec.boards, store, &model, &spec.economics);
        let mut versioned = VersionedSafePointStore::new();
        let mut boards = Vec::with_capacity(spec.boards as usize);
        for card in exploited_cards {
            let record = store.get(card.board);
            let orig_rail = record.and_then(|r| r.rail_vmin_mv);
            if let Some(record) = record {
                versioned.insert(0, record.clone());
            }
            let nominal = BoardEconomics::nominal(card.board, &model, &spec.economics);
            let mode = if spec.nominal_only || !card.exploited {
                Mode::Nominal
            } else {
                Mode::Exploited
            };
            let mut board = BoardSim {
                exploited: card,
                nominal,
                mode,
                avail: Avail::Serving,
                port: BoardPort::idle(spec.economics.base_capacity_qps),
                orig_rail,
                decay_mv: 0,
                attempt: record.map_or(0, |r| r.attempt),
                served: 0,
                violations: 0,
                violation_open: false,
                energy_j: 0.0,
                seg_start_us: 0,
                tripped: false,
                drained: 0,
                maintained: 0,
                quarantined: false,
            };
            board.update_capacity(&spec.economics);
            boards.push(board);
        }

        let mut controls: BTreeSet<(u64, u8, u32)> = BTreeSet::new();
        for k in 1..spec.epochs {
            controls.insert((u64::from(k) * spec.segment_us(), K_EPOCH, k));
        }
        for &(at, board) in &spec.breaker_trips {
            controls.insert((at, K_TRIP, board));
        }
        for &(at, board) in &spec.quarantines {
            controls.insert((at, K_QUARANTINE, board));
        }

        Sim {
            spec,
            model,
            policy,
            latencies: vec![Vec::new(); spec.boards as usize],
            boards,
            placement: PlacementRouter::new(spec.seed),
            versioned,
            pending_maintenance: BTreeSet::new(),
            controls,
            facts: Vec::new(),
            epoch_rows: Vec::new(),
            trace_fingerprint: 0,
            requests: 0,
            served: 0,
            rejected: 0,
            violations: 0,
            reroutes: 0,
            drains: 0,
            backoffs: 0,
            maintenance_windows: 0,
        }
    }

    fn run(&mut self) {
        let trace = self.spec.profile.generate();
        self.requests = trace.events.len() as u64;
        let mut digest = TraceDigest::new();
        for event in &trace.events {
            digest.push(event);
            self.drain_controls(event.at_us);
            self.route(event.at_us);
        }
        self.trace_fingerprint = digest.finish();
        let end = self.spec.duration_us();
        self.drain_controls(end);
        for board in &mut self.boards {
            board.close_segment(end);
        }
    }

    fn drain_controls(&mut self, up_to_us: u64) {
        while let Some(&(at, kind, payload)) = self.controls.iter().next() {
            if at > up_to_us {
                break;
            }
            self.controls.remove(&(at, kind, payload));
            match kind {
                K_EPOCH => self.epoch_boundary(at, payload),
                K_TRIP => self.breaker_trip(at, payload),
                K_QUARANTINE => self.quarantine(at, payload),
                K_DRAIN => self.drain_start(at, payload),
                K_WINDOW_START => self.window_start(at, payload),
                K_WINDOW_END => self.window_end(at, payload),
                _ => unreachable!("unknown control kind"),
            }
        }
    }

    fn route(&mut self, at_us: u64) {
        let candidates: Vec<Candidate> = self
            .boards
            .iter()
            .enumerate()
            .map(|(index, board)| {
                let routable = board.avail == Avail::Serving;
                Candidate {
                    index,
                    joules_per_request: board.active().joules_per_request(board.port.capacity_qps),
                    headroom: board.port.headroom(at_us, &self.spec.queue),
                    routable,
                    admits: board.port.admits(at_us, &self.spec.queue),
                }
            })
            .collect();
        match self.placement.place(&candidates) {
            Placement::Rejected => self.rejected += 1,
            Placement::Placed { index, rerouted } => {
                if rerouted {
                    self.reroutes += 1;
                }
                let deadline = self.spec.queue.deadline_us;
                let board = &mut self.boards[index];
                let latency = board.port.assign(at_us);
                let service_s = board.port.service_us() as f64 / 1e6;
                let (busy, idle) = (board.active().busy_watts, board.active().idle_watts);
                board.energy_j += service_s * (busy - idle);
                board.served += 1;
                self.served += 1;
                self.latencies[index].push(latency);
                if latency > deadline {
                    self.violations += 1;
                    board.violations += 1;
                    if !board.violation_open {
                        board.violation_open = true;
                        let id = board.exploited.board;
                        self.facts.push(Fact {
                            at_us,
                            board: id,
                            level: Level::Error,
                            name: "dispatch_qos_violation",
                            fields: vec![
                                ("latency_us".to_owned(), FieldValue::U64(latency)),
                                ("deadline_us".to_owned(), FieldValue::U64(deadline)),
                            ],
                        });
                    }
                } else if board.violation_open {
                    board.violation_open = false;
                    let id = board.exploited.board;
                    self.facts.push(Fact {
                        at_us,
                        board: id,
                        level: Level::Info,
                        name: "dispatch_qos_recovered",
                        fields: vec![("latency_us".to_owned(), FieldValue::U64(latency))],
                    });
                }
            }
        }
    }

    /// Ages every exploited board by a seeded decay draw, refreshes its
    /// operating point and capacity, then runs the maintenance planner
    /// over the eroded margins.
    fn epoch_boundary(&mut self, at_us: u64, epoch: u32) {
        if self.spec.nominal_only {
            return;
        }
        let mut decayed: Vec<(u32, i64)> = Vec::new();
        for board in &mut self.boards {
            let id = board.exploited.board;
            if board.mode != Mode::Exploited
                || board.avail == Avail::Quarantined
                || board.avail == Avail::Maintenance
            {
                continue;
            }
            let Some(orig_rail) = board.orig_rail else {
                continue;
            };
            let mut rng = StdRng::seed_from_u64(
                self.spec
                    .seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(u64::from(epoch) << 32 | u64::from(id)),
            );
            let delta = rng.gen_range(1..=self.spec.decay_mv_per_epoch.max(1));
            board.close_segment(at_us);
            board.decay_mv += delta;
            let aged_rail = Millivolts::new(orig_rail + board.decay_mv as u32);
            let point = self
                .policy
                .derive_from_measured(aged_rail, self.policy.trefp);
            board.exploited =
                BoardEconomics::at_point(id, &point, true, &self.model, &self.spec.economics);
            board.update_capacity(&self.spec.economics);
            self.versioned
                .insert(epoch, aged_record(id, board.attempt, aged_rail, &point));
            decayed.push((id, board.decay_mv));
        }

        // Plan re-characterization over the eroded margins. Boards
        // already scheduled, draining or down report no margin — the
        // planner only sees silicon it could actually help.
        let healths: Vec<BoardHealth> = self
            .boards
            .iter()
            .map(|board| {
                let id = board.exploited.board;
                let eligible = board.mode == Mode::Exploited
                    && board.avail == Avail::Serving
                    && !self.pending_maintenance.contains(&id);
                BoardHealth {
                    board: id,
                    months_since_characterization: epoch,
                    margin_mv: if eligible {
                        Some(board.exploited.margin_mv)
                    } else {
                        None
                    },
                    failing_cells: 0,
                }
            })
            .collect();
        let plan = self.spec.maintenance.plan(&healths);
        let windows = plan.windows(
            at_us + self.spec.drain_lead_us,
            self.spec.window_duration_us,
            self.spec.window_duration_us,
        );
        let mut scheduled: Vec<u32> = Vec::new();
        for window in &windows {
            self.pending_maintenance.insert(window.board);
            scheduled.push(window.board);
            let drain_at = window.start_us.saturating_sub(self.spec.drain_lead_us);
            self.controls.insert((drain_at, K_DRAIN, window.board));
            self.controls
                .insert((window.start_us, K_WINDOW_START, window.board));
            self.controls
                .insert((window.end_us(), K_WINDOW_END, window.board));
        }
        self.epoch_rows.push(EpochRow {
            epoch,
            at_us,
            decayed,
            scheduled,
        });
    }

    fn breaker_trip(&mut self, at_us: u64, id: u32) {
        let Some(idx) = self.board_index(id) else {
            return;
        };
        let board = &mut self.boards[idx];
        if board.mode != Mode::Exploited || board.avail == Avail::Quarantined {
            return;
        }
        board.close_segment(at_us);
        let lost_margin = board.exploited.margin_mv;
        board.mode = Mode::Nominal;
        board.tripped = true;
        board.update_capacity(&self.spec.economics);
        self.backoffs += 1;
        self.facts.push(Fact {
            at_us,
            board: id,
            level: Level::Warn,
            name: "dispatch_breaker_backoff",
            fields: vec![("lost_margin_mv".to_owned(), FieldValue::I64(lost_margin))],
        });
    }

    fn quarantine(&mut self, at_us: u64, id: u32) {
        let Some(idx) = self.board_index(id) else {
            return;
        };
        let board = &mut self.boards[idx];
        if board.avail == Avail::Quarantined {
            return;
        }
        board.close_segment(at_us);
        board.avail = Avail::Quarantined;
        board.quarantined = true;
        self.facts.push(Fact {
            at_us,
            board: id,
            level: Level::Warn,
            name: "dispatch_quarantine",
            fields: Vec::new(),
        });
    }

    fn drain_start(&mut self, at_us: u64, id: u32) {
        let Some(idx) = self.board_index(id) else {
            return;
        };
        let board = &mut self.boards[idx];
        if board.avail != Avail::Serving {
            return;
        }
        // Idle draw is unchanged while draining — no segment to close;
        // the board just stops being routable so its queue empties
        // before the window starts.
        board.avail = Avail::Draining;
        board.drained += 1;
        let backlog = board.port.backlog_us(at_us);
        self.drains += 1;
        self.facts.push(Fact {
            at_us,
            board: id,
            level: Level::Info,
            name: "dispatch_drain",
            fields: vec![("backlog_us".to_owned(), FieldValue::U64(backlog))],
        });
    }

    fn window_start(&mut self, at_us: u64, id: u32) {
        let Some(idx) = self.board_index(id) else {
            return;
        };
        let board = &mut self.boards[idx];
        if board.avail == Avail::Quarantined {
            return;
        }
        board.close_segment(at_us);
        board.avail = Avail::Maintenance;
        board.maintained += 1;
        self.maintenance_windows += 1;
    }

    /// Re-characterization restores the original (unaged) safe point:
    /// the decay resets, capacity and cost return to day-one values.
    fn window_end(&mut self, at_us: u64, id: u32) {
        let epoch = (at_us / self.spec.segment_us()).min(u64::from(self.spec.epochs) - 1) as u32;
        self.pending_maintenance.remove(&id);
        let Some(idx) = self.board_index(id) else {
            return;
        };
        if self.boards[idx].avail == Avail::Quarantined {
            return;
        }
        let refreshed = {
            let board = &mut self.boards[idx];
            board.close_segment(at_us);
            board.decay_mv = 0;
            let mut record = None;
            if let Some(orig_rail) = board.orig_rail {
                board.attempt += 1;
                let rail = Millivolts::new(orig_rail);
                let point = self.policy.derive_from_measured(rail, self.policy.trefp);
                board.exploited =
                    BoardEconomics::at_point(id, &point, true, &self.model, &self.spec.economics);
                board.mode = Mode::Exploited;
                record = Some(aged_record(id, board.attempt, rail, &point));
            }
            board.avail = Avail::Serving;
            board.update_capacity(&self.spec.economics);
            record
        };
        if let Some(record) = refreshed {
            self.versioned.insert(epoch, record);
        }
        self.facts.push(Fact {
            at_us,
            board: id,
            level: Level::Info,
            name: "dispatch_resumed",
            fields: vec![("epoch".to_owned(), FieldValue::U64(u64::from(epoch)))],
        });
    }

    fn board_index(&self, id: u32) -> Option<usize> {
        self.boards.iter().position(|b| b.exploited.board == id)
    }

    fn total_energy(&self) -> f64 {
        self.boards.iter().map(|b| b.energy_j).sum()
    }

    /// Feeds the run's facts to the observatory: per-(epoch, board)
    /// coordinator streams, a zero-violation SLO observed per epoch, and
    /// incident reconstruction over the merged timeline.
    fn observe(&self) -> observatory::ObservatoryReport {
        let seg = self.spec.segment_us();
        let last_epoch = u64::from(self.spec.epochs) - 1;
        let mut obs = Observatory::new();
        obs.add_slo(SloSpec::zero_escapes("dispatch_qos_violations"));

        let mut streams: BTreeMap<(u64, u32), StreamBuilder> = BTreeMap::new();
        for fact in &self.facts {
            let epoch = (fact.at_us / seg).min(last_epoch);
            streams
                .entry((epoch, fact.board))
                .or_insert_with(|| StreamBuilder::coordinator(epoch, fact.board))
                .push(fact.level, fact.name, fact.fields.clone());
        }
        for (_, builder) in streams {
            obs.ingest_stream(builder.finish());
        }

        let mut violations_per_epoch = vec![0u64; self.spec.epochs as usize];
        for fact in &self.facts {
            if fact.name == "dispatch_qos_violation" {
                let epoch = (fact.at_us / seg).min(last_epoch) as usize;
                violations_per_epoch[epoch] += 1;
            }
        }
        for (epoch, &count) in violations_per_epoch.iter().enumerate() {
            obs.slo_observe("dispatch_qos_violations", epoch as u64, None, count as f64);
        }
        obs.finish()
    }

    fn chronicle(
        &self,
        stats: Vec<LatencyStats>,
        watts_per_qps: f64,
        registry: &Registry,
    ) -> DispatchChronicle {
        let index = self.versioned.latest_index();
        let board_rows: Vec<BoardRow> = self
            .boards
            .iter()
            .zip(&stats)
            .map(|(board, lat)| {
                let id = board.exploited.board;
                BoardRow {
                    board: id,
                    final_mode: match board.mode {
                        Mode::Exploited => "exploited".to_owned(),
                        Mode::Nominal => "nominal".to_owned(),
                    },
                    served: board.served,
                    violations: board.violations,
                    energy_joules: board.energy_j,
                    busy_watts: board.active().busy_watts,
                    final_capacity_qps: board.port.capacity_qps,
                    margin_decay_mv: index.margin_decay_mv(id).unwrap_or(0),
                    latency: *lat,
                    drained: board.drained,
                    maintained: board.maintained,
                    tripped: board.tripped,
                    quarantined: board.quarantined,
                }
            })
            .collect();
        let counters: BTreeMap<String, u64> =
            registry.snapshot().counters.iter().cloned().collect();
        DispatchChronicle {
            boards: self.spec.boards,
            seed: self.spec.seed,
            nominal_only: self.spec.nominal_only,
            profile: self.spec.profile.clone(),
            trace_fingerprint: self.trace_fingerprint,
            epochs: self.spec.epochs,
            deadline_us: self.spec.queue.deadline_us,
            queue_cap_us: self.spec.queue.queue_cap_us,
            base_capacity_qps: self.spec.economics.base_capacity_qps,
            requests: self.requests,
            served: self.served,
            rejected: self.rejected,
            qos_violations: self.violations,
            reroutes: self.reroutes,
            drains: self.drains,
            breaker_backoffs: self.backoffs,
            maintenance_windows: self.maintenance_windows,
            energy_joules: self.total_energy(),
            watts_per_qps,
            board_rows,
            epoch_rows: self.epoch_rows.clone(),
            counters,
        }
    }
}

/// A refreshed safe-point record for the versioned store: same board,
/// aged (or restored) rail, re-derived operating point. The margin
/// trend across these records is what `GET /v1/status` reports as
/// `margin_decay_mv`.
fn aged_record(
    board: u32,
    attempt: u32,
    rail: Millivolts,
    point: &power_model::server::OperatingPoint,
) -> BoardSafePoint {
    BoardSafePoint {
        board,
        attempt,
        bin: xgene_sim::sigma::SigmaBin::Ttt,
        core_vmin_mv: Vec::new(),
        rail_vmin_mv: Some(rail.as_u32()),
        operating_point: Some(*point),
        bank_safe_trefp_ms: Vec::new(),
        savings_fraction: 0.0,
        savings_watts: 0.0,
    }
}

/// Per-board latency quantiles, computed by a claim-by-index worker
/// pool and merged in board order — the same pool-independence pattern
/// as the fleet orchestrator, so any worker count yields identical
/// statistics.
fn latency_stats(workers: usize, latencies: &[Vec<u64>]) -> Vec<LatencyStats> {
    let next = AtomicUsize::new(0);
    let mut collected: Vec<(usize, LatencyStats)> = thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= latencies.len() {
                            break;
                        }
                        local.push((i, LatencyStats::of(&latencies[i])));
                    }
                    local
                })
            })
            .collect();
        let mut all = Vec::new();
        for handle in handles {
            all.extend(handle.join().expect("latency stats worker panicked"));
        }
        all
    });
    collected.sort_by_key(|(i, _)| *i);
    collected.into_iter().map(|(_, s)| s).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(board: u32, rail: u32) -> BoardSafePoint {
        let policy = SafePointPolicy::dsn18();
        BoardSafePoint {
            board,
            attempt: 0,
            bin: xgene_sim::sigma::SigmaBin::Ttt,
            core_vmin_mv: vec![Some(rail - 5); 8],
            rail_vmin_mv: Some(rail),
            operating_point: Some(policy.derive_from_measured(Millivolts::new(rail), policy.trefp)),
            bank_safe_trefp_ms: vec![2283.0; 8],
            savings_fraction: 0.2,
            savings_watts: 6.0,
        }
    }

    /// A hand-built 4-board store: two deep boards, a shallow one and
    /// an uncharacterized one — heterogeneity without the cost of the
    /// fleet characterization pipeline.
    fn store() -> SafePointStore {
        let mut store = SafePointStore::new();
        store.insert(record(0, 890));
        store.insert(record(1, 905));
        store.insert(record(2, 945));
        store
    }

    fn quick_spec(seed: u64) -> DispatchSpec {
        let mut spec = DispatchSpec::quick(4, seed);
        spec.profile.duration_s = 10.0;
        spec.profile.base_qps = 120.0;
        spec.drain_lead_us = 500_000;
        spec.window_duration_us = 1_000_000;
        spec
    }

    #[test]
    fn chronicles_are_identical_across_worker_counts() {
        let spec = quick_spec(2018);
        let store = store();
        let baseline = run_dispatch_with_store(&spec, 1, &store);
        let base_chronicle = baseline.chronicle_json();
        let base_observatory = baseline.observatory_json();
        for workers in [2, 4, 8] {
            let report = run_dispatch_with_store(&spec, workers, &store);
            assert_eq!(
                report.chronicle_json(),
                base_chronicle,
                "{workers}-worker chronicle diverged"
            );
            assert_eq!(
                report.observatory_json(),
                base_observatory,
                "{workers}-worker observatory diverged"
            );
            assert_eq!(report.execution.workers, workers);
        }
    }

    #[test]
    fn different_seeds_dispatch_differently() {
        let store = store();
        let a = run_dispatch_with_store(&quick_spec(2018), 2, &store);
        let b = run_dispatch_with_store(&quick_spec(999), 2, &store);
        assert_ne!(a.chronicle_json(), b.chronicle_json());
    }

    #[test]
    fn economic_dispatch_beats_nominal_per_qps() {
        let spec = quick_spec(2018);
        let store = store();
        let economic = run_dispatch_with_store(&spec, 2, &store);
        let nominal = run_dispatch_with_store(&spec.nominal_arm(), 2, &store);
        assert_eq!(
            economic.chronicle.requests, nominal.chronicle.requests,
            "both arms dispatch the same trace"
        );
        assert!(economic.chronicle.served > 0);
        assert!(
            economic.chronicle.watts_per_qps < nominal.chronicle.watts_per_qps,
            "economic {} vs nominal {}",
            economic.chronicle.watts_per_qps,
            nominal.chronicle.watts_per_qps
        );
        assert!(
            economic.chronicle.qos_violations <= nominal.chronicle.qos_violations,
            "exploiting guardbands must not cost QoS"
        );
    }

    #[test]
    fn traffic_prefers_the_deepest_guardbands() {
        let spec = quick_spec(2018);
        let report = run_dispatch_with_store(&spec, 2, &store());
        let rows = &report.chronicle.board_rows;
        // Board 0 (890 mV rail) is the cheapest; board 3 is nominal.
        assert!(
            rows[0].served > rows[3].served,
            "deep board served {} vs nominal board {}",
            rows[0].served,
            rows[3].served
        );
    }

    #[test]
    fn a_breaker_trip_backs_the_board_off_to_nominal() {
        let mut spec = quick_spec(2018);
        spec.breaker_trips = vec![(2_000_000, 0)];
        // Keep aging out of the picture so the mode flip is the trip's.
        spec.epochs = 1;
        let report = run_dispatch_with_store(&spec, 2, &store());
        let row = &report.chronicle.board_rows[0];
        assert!(row.tripped);
        assert_eq!(row.final_mode, "nominal");
        assert_eq!(report.chronicle.breaker_backoffs, 1);
        assert_eq!(
            report.chronicle.rejected, 0,
            "backoff must not drop traffic"
        );
        // The board keeps serving, at nominal cost.
        let baseline = {
            let mut clean = quick_spec(2018);
            clean.epochs = 1;
            run_dispatch_with_store(&clean, 2, &store())
        };
        assert!(
            report.chronicle.watts_per_qps > baseline.chronicle.watts_per_qps,
            "nominal fallback must cost more"
        );
    }

    #[test]
    fn a_quarantined_board_takes_no_further_traffic() {
        let mut spec = quick_spec(2018);
        spec.quarantines = vec![(0, 1)];
        spec.epochs = 1;
        let report = run_dispatch_with_store(&spec, 2, &store());
        let row = &report.chronicle.board_rows[1];
        assert!(row.quarantined);
        assert_eq!(row.served, 0, "quarantined at t=0, nothing placed");
        assert_eq!(report.chronicle.rejected, 0, "three boards absorb the load");
    }

    #[test]
    fn overload_violates_qos_and_the_observatory_sees_it() {
        let mut spec = quick_spec(2018);
        // Starve the fleet: deep queues admit far past the deadline.
        spec.economics.base_capacity_qps = 25;
        spec.queue.deadline_us = 20_000;
        spec.queue.queue_cap_us = 400_000;
        spec.epochs = 1;
        let report = run_dispatch_with_store(&spec, 2, &store());
        assert!(report.chronicle.qos_violations > 0);
        let qos_incidents = report
            .observatory
            .incidents_of(observatory::IncidentKind::QosViolation)
            .count();
        assert!(qos_incidents > 0, "violations must surface as incidents");
    }

    #[test]
    fn aging_erodes_margin_and_maintenance_restores_it() {
        let mut spec = quick_spec(2018);
        spec.profile.duration_s = 20.0;
        // Trigger on any erosion: margins start at 50+ mV and the
        // per-epoch draw is 1..=3 mV snapped to the 5 mV grid.
        spec.maintenance.margin_threshold_mv = 100;
        let report = run_dispatch_with_store(&spec, 2, &store());
        assert!(
            !report.chronicle.epoch_rows.is_empty(),
            "boundaries must be recorded"
        );
        assert!(
            report
                .chronicle
                .epoch_rows
                .iter()
                .any(|r| !r.decayed.is_empty()),
            "exploited boards must age"
        );
        assert!(
            report.chronicle.drains > 0,
            "the planner must drain a board"
        );
        assert!(report.chronicle.maintenance_windows > 0);
        assert_eq!(report.chronicle.rejected, 0, "drains must not drop traffic");
        let drained = report
            .observatory
            .incidents_of(observatory::IncidentKind::TrafficDrain)
            .count();
        assert!(drained > 0, "drains must surface as incidents");
    }

    #[test]
    fn nominal_arm_never_ages_or_drains() {
        let mut spec = quick_spec(2018);
        spec.maintenance.margin_threshold_mv = 100;
        let report = run_dispatch_with_store(&spec.nominal_arm(), 2, &store());
        assert_eq!(report.chronicle.drains, 0);
        assert_eq!(report.chronicle.maintenance_windows, 0);
        assert!(report.chronicle.epoch_rows.is_empty());
        assert!(report
            .chronicle
            .board_rows
            .iter()
            .all(|r| r.final_mode == "nominal"));
    }

    #[test]
    fn the_status_summary_mirrors_the_chronicle() {
        let spec = quick_spec(2018);
        let report = run_dispatch_with_store(&spec, 2, &store());
        let status = report.status();
        assert!(status.enabled);
        assert_eq!(status.requests_routed, report.chronicle.served);
        assert_eq!(status.boards.len(), 4);
        assert_eq!(status.watts_per_qps, report.chronicle.watts_per_qps);
    }
}
